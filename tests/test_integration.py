"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import TS3Net, TS3NetConfig, Tensor, set_seed
from repro.baselines import build_model
from repro.data import load_dataset
from repro.tasks import (
    ForecastTask, ImputationTask, TrainConfig, run_forecast, run_imputation,
)


@pytest.fixture(scope="module")
def split():
    return load_dataset("ETTh1", n_steps=700)


class TestForecastingPipeline:
    def test_ts3net_end_to_end(self, split):
        set_seed(0)
        model = TS3Net(TS3NetConfig(
            seq_len=24, pred_len=8, c_in=7, d_model=8, num_blocks=1,
            num_scales=4, num_branches=1, d_ff=8, num_kernels=2, dropout=0.0))
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=6, max_eval_batches=2)
        result = run_forecast(model, split, task, TrainConfig(epochs=2, lr=2e-3))
        assert np.isfinite(result.mse)
        assert result.train_losses[-1] <= result.train_losses[0] * 1.5

    def test_ts3net_beats_untrained_self(self, split):
        """Training must improve over the random-init model on the test set."""
        set_seed(1)
        cfg = dict(seq_len=24, pred_len=8, c_in=7, d_model=8, num_blocks=1,
                   num_scales=4, num_branches=1, d_ff=8, num_kernels=2,
                   dropout=0.0)
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=10, max_eval_batches=3)

        from repro.tasks.forecasting import forecast_step
        from repro.tasks.trainer import Trainer

        untrained = TS3Net(TS3NetConfig(**cfg))
        trainer_u = Trainer(untrained, TrainConfig(epochs=1))
        _, _, test_loader = task.loaders(split)
        mse_untrained, _ = trainer_u.evaluate(test_loader, forecast_step(untrained))

        set_seed(1)
        trained = TS3Net(TS3NetConfig(**cfg))
        result = run_forecast(trained, split, task, TrainConfig(epochs=3, lr=2e-3))
        assert result.mse < mse_untrained

    def test_seed_reproducibility(self, split):
        def one_run():
            set_seed(11)
            model = build_model("LightTS", seq_len=24, pred_len=8, c_in=7)
            task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                                max_train_batches=3, max_eval_batches=2, seed=11)
            return run_forecast(model, split, task, TrainConfig(epochs=1)).mse

        assert one_run() == pytest.approx(one_run(), rel=1e-9)


class TestImputationPipeline:
    def test_ts3net_imputation_end_to_end(self, split):
        set_seed(0)
        model = TS3Net(TS3NetConfig(
            seq_len=24, pred_len=24, c_in=7, d_model=8, num_blocks=1,
            num_scales=4, num_branches=1, d_ff=8, num_kernels=2,
            dropout=0.0, task="imputation"))
        task = ImputationTask(seq_len=24, mask_ratio=0.25, batch_size=8,
                              max_train_batches=6, max_eval_batches=2)
        result = run_imputation(model, split, task, TrainConfig(epochs=2, lr=2e-3))
        assert np.isfinite(result.mse)

    def test_higher_mask_ratio_is_harder(self, split):
        """More missing data should not make the problem dramatically easier."""
        def score(ratio):
            set_seed(5)
            model = build_model("DLinear", seq_len=24, pred_len=24, c_in=7,
                                task="imputation")
            task = ImputationTask(seq_len=24, mask_ratio=ratio, batch_size=8,
                                  max_train_batches=8, max_eval_batches=3)
            return run_imputation(model, split, task,
                                  TrainConfig(epochs=2, lr=5e-3)).mse

        easy, hard = score(0.125), score(0.5)
        assert hard > 0.5 * easy


class TestModelComparability:
    def test_shared_protocol_across_models(self, split):
        """Several models run under the identical task and produce sane MSEs."""
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=4, max_eval_batches=2)
        for name in ("DLinear", "PatchTST", "MICN"):
            set_seed(2)
            model = build_model(name, seq_len=24, pred_len=8, c_in=7)
            result = run_forecast(model, split, task, TrainConfig(epochs=1, lr=2e-3))
            assert 0.0 < result.mse < 50.0, name
