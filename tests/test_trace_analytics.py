"""Tests for the trace analytics layer (PR 10).

The load-bearing contracts:

* the rotating store seals footer-indexed segments, and kind-filtered
  reads skip sealed segments without opening their bodies;
* critical-path attribution apportions a request's wall-clock into
  components whose sum self-validates against the measured duration;
* the trainer flamegraph's per-op frames reconcile with the
  GraphProfiler totals the ``trainer.profile`` event recorded;
* the SLO tracker pages on a fast burn (both fast windows), emits
  edge-triggered schema-v1 ``alert`` records, and exposes the error
  budget as labelled gauges — without touching the unlabelled
  ``/metrics`` golden when no tracker is attached;
* ``repro top`` renders a dashboard frame from any of our expositions;
* the Prometheus renderer's corners (NaN/±Inf gauges, empty histograms,
  label escaping) round-trip through the federation parser, and the
  cluster merge takes the max of quantile series while labelling the
  result as an upper bound.
"""

import io
import json
import math
import time
import urllib.error

import numpy as np
import pytest

from repro.obs import analysis as obs_analysis
from repro.obs import report as obs_report
from repro.obs import runtime as obs_runtime
from repro.obs import slo as obs_slo
from repro.obs import store as obs_store
from repro.obs import top as obs_top
from repro.obs.events import JsonlSink, record
from repro.obs.metrics import MetricsRegistry
from repro.obs.store import RotatingJsonlSink, TraceStore
from repro.obs.tracer import Observer
from repro.serving.cluster.metrics import merge_expositions, parse_exposition


class _ListSink:
    def __init__(self):
        self.records = []

    def emit(self, rec):
        self.records.append(rec)

    def close(self):
        pass


# ---------------------------------------------------------------------------
# Rotating store
# ---------------------------------------------------------------------------

def _fill(sink, n, kind="resource", name="proc.sample", **attr_extra):
    for i in range(n):
        sink.emit(record(kind, name, {"i": i, **attr_extra}, ts=float(i)))


class TestRotatingStore:
    def test_seals_segments_with_footers(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        sink = RotatingJsonlSink(path, max_segment_bytes=4096)
        _fill(sink, 200)
        sink.close()
        store = TraceStore(path)
        segments = store.segments()
        assert len(segments) > 2
        footers = store.footers()
        # Every sealed segment carries a footer; the active file does not.
        assert all(f is not None for f in footers[:-1])
        assert footers[-1] is None
        sealed = footers[0]
        assert sealed["kind"] == "segment_footer"
        assert sealed["attrs"]["kinds"] == {"resource": sealed["attrs"]["records"]}
        assert sealed["attrs"]["ts_min"] <= sealed["attrs"]["ts_max"]
        # Footers are an index, not data: never yielded to readers.
        records = store.read_all()
        assert len(records) == 200
        assert all(r["kind"] == "resource" for r in records)

    def test_indexed_read_skips_sealed_segments(self, tmp_path, monkeypatch):
        path = str(tmp_path / "run.jsonl")
        sink = RotatingJsonlSink(path, max_segment_bytes=4096)
        _fill(sink, 150)                      # several resource-only segments
        sink.emit(record("span_end", "http.request", {"status": "ok"},
                         trace="t1", span="s1", dur_s=0.01, ts=200.0))
        sink.close()

        opened = []
        real = obs_store._iter_segment

        def spying(seg, wanted):
            opened.append(seg)
            return real(seg, wanted)

        monkeypatch.setattr(obs_store, "_iter_segment", spying)
        store = TraceStore(path)
        total_segments = len(store.segments())
        spans = list(store.iter_events(kinds=("span_end",)))
        assert [r["name"] for r in spans] == ["http.request"]
        # The footer index must have pruned the resource-only segments.
        assert len(opened) < total_segments
        # ... without changing what a full read filtered down to.
        opened.clear()
        full = [r for r in store.read_all() if r["kind"] == "span_end"]
        assert len(opened) == total_segments
        assert full == spans

    def test_plain_file_is_a_one_segment_chain(self, tmp_path):
        path = str(tmp_path / "plain.jsonl")
        sink = JsonlSink(path)
        _fill(sink, 5)
        sink.emit(record("event", "marker", {}))
        sink.close()
        assert TraceStore(path).segments() == [path]
        assert len(obs_store.load_records(path)) == 6
        assert len(obs_store.load_records(path, kinds=("event",))) == 1

    def test_resume_continues_the_sequence(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        first = RotatingJsonlSink(path, max_segment_bytes=4096)
        _fill(first, 120)
        first.close()
        before = len(TraceStore(path).segments())
        second = RotatingJsonlSink(path, max_segment_bytes=4096)
        _fill(second, 120)
        second.close()
        segments = TraceStore(path).segments()
        assert len(segments) > before
        # A resumed chain stays readable end to end (no seq collisions).
        assert len(obs_store.load_records(path)) == 240

    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(OSError, match="no trace log"):
            TraceStore(str(tmp_path / "absent.jsonl")).segments()

    def test_rejects_tiny_segment_bound(self, tmp_path):
        with pytest.raises(ValueError, match="4096"):
            RotatingJsonlSink(str(tmp_path / "x.jsonl"), max_segment_bytes=10)

    def test_runtime_configure_rotates(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        observer = obs_runtime.configure(path=path, rotate_bytes=4096)
        try:
            assert isinstance(observer.sink, RotatingJsonlSink)
            for i in range(150):
                observer.event("tick", {"i": i})
        finally:
            obs_runtime.shutdown()
        assert len(TraceStore(path).segments()) > 1
        # obs_report.load reads the whole rotated chain transparently.
        ticks = [r for r in obs_report.load(path) if r["name"] == "tick"]
        assert len(ticks) == 150

    def test_rotate_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs_runtime.ROTATE_ENV, "1")
        observer = obs_runtime.configure(path=str(tmp_path / "e.jsonl"))
        try:
            assert isinstance(observer.sink, RotatingJsonlSink)
            assert observer.sink.max_segment_bytes == 1 << 20
        finally:
            obs_runtime.shutdown()


# ---------------------------------------------------------------------------
# Critical-path attribution
# ---------------------------------------------------------------------------

def _cluster_request(base_ts, total_s=0.010, worker_s=0.008, queue_s=0.002,
                     batch_s=0.005, status=200, trace="t1"):
    """Synthetic frontend/worker/batch span triple with exact geometry."""
    f_end = base_ts + total_s
    w_start = base_ts + (total_s - worker_s) / 2
    w_end = w_start + worker_s
    b_start = w_start + queue_s
    b_end = b_start + batch_s
    return [
        record("span_end", "http.request",
               {"method": "POST", "path": "/v1/forecast", "tier": "frontend",
                "status_code": status},
               trace=trace, span=f"{trace}-f", dur_s=total_s, ts=f_end),
        record("span_end", "http.request",
               {"method": "POST", "path": "/v1/forecast",
                "status_code": status},
               trace=trace, span=f"{trace}-w", parent=f"{trace}-f",
               dur_s=worker_s, ts=w_end),
        record("span_end", "batch.execute",
               {"member_spans": [f"{trace}-w"], "batch_size": 1},
               trace=trace, span=f"{trace}-b", dur_s=batch_s, ts=b_end),
    ]


class TestRequestAttribution:
    def test_cluster_components_cover_the_frontend_span(self):
        records = _cluster_request(100.0)
        rows = obs_analysis.request_attributions(records)
        assert len(rows) == 1
        row = rows[0]
        assert row["tier"] == "cluster"
        assert row["status"] == 200
        comp = row["components"]
        assert comp["proxy_hop"] == pytest.approx(0.002, abs=1e-9)
        assert comp["queue_wait"] == pytest.approx(0.002, abs=1e-9)
        assert comp["batch_execute"] == pytest.approx(0.005, abs=1e-9)
        assert comp["postprocess"] == pytest.approx(0.001, abs=1e-9)
        assert row["coverage"] == pytest.approx(1.0, abs=1e-6)

    def test_single_server_request_has_no_proxy_hop(self):
        recs = [
            record("span_end", "http.request",
                   {"method": "POST", "path": "/v1/forecast",
                    "status_code": 200},
                   trace="t2", span="t2-r", dur_s=0.010, ts=50.010),
            record("span_end", "batch.execute",
                   {"member_spans": ["t2-r"]},
                   trace="t2", span="t2-b", dur_s=0.006, ts=50.008),
        ]
        rows = obs_analysis.request_attributions(recs)
        assert len(rows) == 1
        assert rows[0]["tier"] == "single"
        assert rows[0]["components"]["proxy_hop"] == 0.0
        assert rows[0]["coverage"] == pytest.approx(1.0, abs=1e-6)

    def test_lost_worker_trace_attributes_everything_to_the_hop(self):
        recs = [record("span_end", "http.request",
                       {"method": "POST", "path": "/v1/forecast",
                        "tier": "frontend", "status_code": 503},
                       trace="t3", span="t3-f", dur_s=0.004, ts=10.0)]
        rows = obs_analysis.request_attributions(recs)
        assert rows[0]["components"]["proxy_hop"] == pytest.approx(0.004)
        assert rows[0]["coverage"] == pytest.approx(1.0)

    def test_gets_are_not_requests(self):
        recs = [record("span_end", "http.request",
                       {"method": "GET", "path": "/metrics", "status": "ok"},
                       trace="t4", span="t4-g", dur_s=0.001, ts=1.0)]
        assert obs_analysis.request_attributions(recs) == []

    def test_summary_coverage_bounds(self):
        records = (_cluster_request(100.0, trace="a")
                   + _cluster_request(101.0, total_s=0.020, worker_s=0.015,
                                      trace="b"))
        summary = obs_analysis.summarize_attributions(
            obs_analysis.request_attributions(records))
        assert summary["requests"] == 2
        assert 0.99 <= summary["coverage_min"] <= summary["coverage_max"] <= 1.01
        assert sum(summary["component_shares"].values()) == pytest.approx(
            1.0, abs=0.01)


# ---------------------------------------------------------------------------
# Trainer flamegraph: op frames reconcile with GraphProfiler totals
# ---------------------------------------------------------------------------

class TestTrainerFlamegraph:
    @pytest.fixture(scope="class")
    def fit_records(self, tmp_path_factory):
        from repro.autodiff import Tensor, mse_loss
        from repro.baselines import build_model
        from repro.tasks.trainer import TrainConfig, Trainer

        model = build_model("DLinear", seq_len=16, pred_len=4, c_in=2,
                            preset="tiny")
        trainer = Trainer(model, TrainConfig(epochs=1, lr=1e-3, profile=True))
        rng = np.random.default_rng(0)
        batches = [(rng.standard_normal((4, 16, 2)),
                    rng.standard_normal((4, 4, 2))) for _ in range(2)]

        def step_fn(batch):
            x, y = batch
            pred = trainer.model(Tensor(x))
            return mse_loss(pred, y), pred.data, y, None

        path = str(tmp_path_factory.mktemp("fit") / "fit.jsonl")
        with obs_runtime.observe(path=path):
            trainer.fit(batches, batches[:1], step_fn)
        return obs_store.load_records(path)

    def test_fit_attribution_joins_profile_event(self, fit_records):
        fits = obs_analysis.fit_attributions(fit_records)
        assert len(fits) == 1
        fit = fits[0]
        assert fit["fit_s"] > 0
        assert fit["ops"], "profile event carried no op rows"
        assert fit["profiled_s"] == pytest.approx(
            sum(r["seconds"] for r in fit["ops"]))
        assert 0 < fit["profiled_fraction"] <= 1.5
        assert all(r["calls"] > 0 for r in fit["ops"])

    def test_folded_op_frames_reconcile_with_profiler_totals(self, fit_records):
        fit = obs_analysis.fit_attributions(fit_records)[0]
        lines = obs_analysis.folded_stacks(fit_records)
        op_usec = 0
        fit_frames = []
        for line in lines:
            path, _, usec = line.rpartition(" ")
            if ";op:" in path:
                assert "trainer.fit;op:" in path  # grafted under the fit
                op_usec += int(usec)
            elif path.endswith("trainer.fit"):
                fit_frames.append(int(usec))
        profiled_usec = fit["profiled_s"] * 1e6
        # Per-frame integer rounding is the only allowed slack.
        assert op_usec == pytest.approx(profiled_usec, abs=len(lines) + 1)
        # The op time was subtracted from the fit's own self frame (the
        # profiler measured the same wall clock the span did), so the
        # remaining self time is bounded by fit wall minus op time.
        assert sum(fit_frames) <= max(
            0.0, (fit["fit_s"] - fit["profiled_s"]) * 1e6) + len(lines)

    def test_render_analysis_mentions_top_ops(self, fit_records):
        text = obs_analysis.render_analysis(fit_records)
        assert "fit DLinear" in text
        assert "op" in text


# ---------------------------------------------------------------------------
# SLO engine
# ---------------------------------------------------------------------------

class _FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now


@pytest.fixture
def alert_sink():
    """Install an in-memory observer so alert records are capturable."""
    sink = _ListSink()
    previous = obs_runtime.swap(Observer(sink))
    yield sink
    obs_runtime.swap(previous)


class TestSLObjective:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            obs_slo.SLObjective(name="x", kind="throughput")
        with pytest.raises(ValueError, match="target"):
            obs_slo.SLObjective(name="x", target=1.0)
        with pytest.raises(ValueError, match="threshold_s"):
            obs_slo.SLObjective(name="x", kind="latency", target=0.99)

    def test_goodness(self):
        avail = obs_slo.SLObjective(name="a", target=0.999)
        assert avail.is_good(200, None) is True
        assert avail.is_good(503, None) is False
        lat = obs_slo.SLObjective(name="l", kind="latency", target=0.99,
                                  threshold_s=0.25)
        assert lat.is_good(200, 0.1) is True
        assert lat.is_good(200, 0.5) is False
        assert lat.is_good(503, 0.1) is False
        # No measured latency: excluded, not guessed.
        assert lat.is_good(503, None) is None

    def test_load_objectives(self, tmp_path):
        stock = obs_slo.load_objectives("default")
        assert [o.name for o in stock] == ["availability", "latency_p99_250ms"]
        conf = tmp_path / "slo.json"
        conf.write_text(json.dumps([{"name": "avail", "target": 0.99}]))
        loaded = obs_slo.load_objectives(str(conf))
        assert loaded[0].budget == pytest.approx(0.01)
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError, match="non-empty JSON list"):
            obs_slo.load_objectives(str(bad))


class TestBurnRateAlerting:
    def _tracker(self, clock):
        return obs_slo.SLOTracker(
            [obs_slo.SLObjective(name="availability", target=0.999)],
            registry=MetricsRegistry(), clock=clock,
            evaluate_every_s=float("inf"))

    def test_503_burst_pages_and_resolves(self, alert_sink):
        clock = _FakeClock()
        tracker = self._tracker(clock)
        # Healthy baseline, then a hard 503 burst across the fast windows.
        for _ in range(200):
            clock.now += 1.0
            tracker.observe(200)
        for _ in range(60):
            clock.now += 1.0
            tracker.observe(503)
        statuses = tracker.evaluate()
        status = statuses[0]
        assert status.severity == "page"
        assert status.burn_rates["5m"] >= 14.4
        assert status.burn_rates["1h"] >= 14.4
        assert status.budget_remaining < 0          # budget blown
        firing = [r for r in alert_sink.records if r["kind"] == "alert"]
        assert len(firing) == 1
        assert firing[0]["name"] == "slo.availability"
        assert firing[0]["attrs"]["state"] == "firing"
        assert firing[0]["attrs"]["severity"] == "page"
        # Edge-triggered: re-evaluating the same state emits nothing new.
        tracker.evaluate()
        assert len([r for r in alert_sink.records
                    if r["kind"] == "alert"]) == 1
        # Past the slow horizon the burn decays and the alert resolves.
        clock.now += 7 * 3600.0
        tracker.observe(200)
        final = tracker.evaluate()[0]
        assert final.severity is None
        resolved = [r for r in alert_sink.records if r["kind"] == "alert"][-1]
        assert resolved["attrs"]["state"] == "resolved"

    def test_slow_leak_tickets_without_paging(self, alert_sink):
        clock = _FakeClock()
        tracker = self._tracker(clock)
        # ~1% bad spread over 4 hours: burn 6h ≈ 10x (> 6), but each
        # 5m window stays clean most of the time → no page.
        for i in range(4 * 3600 // 10):
            clock.now += 10.0
            tracker.observe(503 if i % 100 == 0 else 200)
        clock.now += 300.0          # clear the 5m window
        tracker.observe(200)
        status = tracker.evaluate()[0]
        assert status.severity == "ticket"
        assert status.burn_rates["6h"] >= 6.0
        assert status.burn_rates["5m"] < 14.4

    def test_gauges_track_the_budget(self):
        clock = _FakeClock()
        registry = MetricsRegistry()
        tracker = obs_slo.SLOTracker(
            [obs_slo.SLObjective(name="availability", target=0.999)],
            registry=registry, clock=clock, evaluate_every_s=float("inf"))
        budget = registry.get(obs_slo.BUDGET_GAUGE)
        assert budget.value(labels={"slo": "availability"}) == 1.0
        for _ in range(100):
            clock.now += 1.0
            tracker.observe(200)
        tracker.evaluate()
        assert budget.value(labels={"slo": "availability"}) == 1.0
        clock.now += 1.0
        tracker.observe(503)
        tracker.evaluate()
        assert budget.value(labels={"slo": "availability"}) < 1.0
        burn = registry.get(obs_slo.BURN_GAUGE)
        assert burn.value(labels={"slo": "availability", "window": "5m"}) > 0
        text = registry.render()
        assert 'repro_slo_error_budget_remaining{slo="availability"}' in text

    def test_quiet_windows_never_alert(self, alert_sink):
        clock = _FakeClock()
        tracker = self._tracker(clock)
        assert tracker.evaluate()[0].severity is None
        assert [r for r in alert_sink.records if r["kind"] == "alert"] == []

    def test_replay_trace_counts_worker_spans_once(self):
        records = (_cluster_request(1000.0, trace="a")
                   + _cluster_request(1001.0, status=503, trace="b"))
        statuses = obs_slo.replay_trace(records)
        avail = {s.objective.name: s for s in statuses}["availability"]
        # One frontend + one worker span per request; only the worker
        # tier (which carries status_code without tier=frontend) counts.
        assert avail.totals["6h"] == 2
        assert avail.bad_fraction["6h"] == pytest.approx(0.5)

    def test_render_slo_table(self):
        records = _cluster_request(1000.0, status=503)
        text = obs_slo.render_slo(records)
        assert "availability" in text
        assert "burn 5m" in text


class TestServerMetricsSLOOptIn:
    def test_metrics_unchanged_until_attached(self):
        from repro.serving.metrics import ServerMetrics
        plain_m = ServerMetrics()
        plain_m.observe_request(200, latency_s=0.01)
        plain = plain_m.render()
        assert "repro_slo" not in plain
        withslo = ServerMetrics()
        withslo.attach_slo(obs_slo.SLOTracker(
            obs_slo.default_objectives(), registry=withslo.registry,
            clock=_FakeClock(), evaluate_every_s=float("inf")))
        withslo.observe_request(200, latency_s=0.01)
        text = withslo.render()
        assert "repro_slo_error_budget_remaining" in text
        # The pre-existing series stay byte-identical: the SLO gauges are
        # strictly appended (registered after the stock metrics), so the
        # golden-compared prefix of the exposition never moves.
        assert text.startswith(plain)


# ---------------------------------------------------------------------------
# repro top
# ---------------------------------------------------------------------------

def _exposition():
    return "\n".join([
        '# HELP repro_requests_total Requests.',
        '# TYPE repro_requests_total counter',
        'repro_requests_total{code="200",class="2xx"} 90',
        'repro_requests_total{code="503",class="5xx"} 10',
        '# HELP repro_request_latency_seconds Latency.',
        '# TYPE repro_request_latency_seconds histogram',
        'repro_request_latency_seconds{quantile="0.5"} 0.010000',
        'repro_request_latency_seconds{quantile="0.99"} 0.120000',
        '# HELP repro_queue_depth Depth.',
        '# TYPE repro_queue_depth gauge',
        'repro_queue_depth 3',
        '# HELP repro_cluster_workers Configured.',
        '# TYPE repro_cluster_workers gauge',
        'repro_cluster_workers 2',
        '# HELP repro_cluster_workers_alive Alive.',
        '# TYPE repro_cluster_workers_alive gauge',
        'repro_cluster_workers_alive 2',
        '# HELP repro_slo_error_budget_remaining Budget.',
        '# TYPE repro_slo_error_budget_remaining gauge',
        'repro_slo_error_budget_remaining{slo="availability"} 0.400000',
        '# HELP repro_slo_burn_rate Burn.',
        '# TYPE repro_slo_burn_rate gauge',
        'repro_slo_burn_rate{slo="availability",window="5m"} 2.500000',
    ]) + "\n"


class TestTopDashboard:
    def test_render_frame_sections(self):
        snap = obs_top.parse_snapshot(_exposition())
        frame = obs_top.render_frame(snap, None, 0.0, "http://x/metrics")
        assert "requests   total      100" in frame
        assert "2xx 90" in frame and "5xx 10" in frame
        assert "p50" in frame and "p99" in frame and "120.0ms" in frame
        assert "queue      depth 3" in frame
        assert "2/2 workers alive" in frame
        assert "slo budget availability   40.0%" in frame
        assert "burn (5m)  availability   2.50x" in frame

    def test_qps_from_counter_delta(self):
        prev = obs_top.parse_snapshot(_exposition())
        text = _exposition().replace(
            'class="2xx"} 90', 'class="2xx"} 140')
        snap = obs_top.parse_snapshot(text)
        frame = obs_top.render_frame(snap, prev, 5.0, "u")
        assert "qps     10.0" in frame

    def test_run_top_polls_and_counts_frames(self, monkeypatch):
        monkeypatch.setattr(obs_top, "fetch_metrics",
                            lambda url, timeout=5.0: _exposition())
        buf = io.StringIO()
        frames = obs_top.run_top("http://x/metrics", interval_s=0.0,
                                 iterations=3, stream=buf, clear=False)
        assert frames == 3
        assert buf.getvalue().count("repro top — http://x/metrics") == 3
        # The clear=True path prepends the ANSI repaint sequence.
        buf2 = io.StringIO()
        obs_top.run_top("http://x/metrics", interval_s=0.0, iterations=1,
                        stream=buf2, clear=True)
        assert buf2.getvalue().startswith(obs_top.CLEAR)

    def test_run_top_reports_scrape_failures(self, monkeypatch):
        def boom(url, timeout=5.0):
            raise urllib.error.URLError("refused")

        monkeypatch.setattr(obs_top, "fetch_metrics", boom)
        buf = io.StringIO()
        frames = obs_top.run_top("http://down/metrics", interval_s=0.0,
                                 iterations=2, stream=buf, clear=False)
        assert frames == 2
        assert "scrape failed" in buf.getvalue()

    def test_against_a_real_registry_render(self):
        from repro.serving.metrics import ServerMetrics
        metrics = ServerMetrics()
        metrics.observe_request(200, latency_s=0.01)
        snap = obs_top.parse_snapshot(metrics.render())
        frame = obs_top.render_frame(snap, None, 0.0, "local")
        assert "requests   total        1" in frame


# ---------------------------------------------------------------------------
# Renderer edge cases (round-tripped through the federation parser)
# ---------------------------------------------------------------------------

class TestRendererEdgeCases:
    def test_nan_and_inf_gauges_round_trip(self):
        registry = MetricsRegistry()
        registry.gauge("repro_nan", "NaN.").set(float("nan"))
        registry.gauge("repro_pinf", "Inf.").set(float("inf"))
        registry.gauge("repro_ninf", "NegInf.").set(float("-inf"))
        text = registry.render()
        assert "repro_nan NaN\n" in text
        assert "repro_pinf +Inf\n" in text
        assert "repro_ninf -Inf\n" in text
        values = {b["name"]: b["samples"][0][2]
                  for b in parse_exposition(text)}
        assert math.isnan(values["repro_nan"])
        assert values["repro_pinf"] == float("inf")
        assert values["repro_ninf"] == float("-inf")

    def test_empty_histograms_render_zero_series(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h_seconds", "H.", buckets=(0.1, 1.0),
                           quantiles=(0.5,))
        registry.size_histogram("repro_sizes", "S.")
        text = registry.render()
        assert 'repro_h_seconds_bucket{le="+Inf"} 0' in text
        assert "repro_h_seconds_count 0" in text
        assert 'repro_h_seconds{quantile="0.5"} 0.000000' in text
        assert 'repro_sizes_bucket{le="+Inf"} 0' in text
        # Still a parseable exposition (and mergeable across workers).
        blocks = {b["name"]: b for b in parse_exposition(text)}
        assert blocks["repro_h_seconds"]["type"] == "histogram"
        merged = merge_expositions([text, text])
        assert "repro_h_seconds_count 0" in merged

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_edge_total", "Edges.")
        nasty = 'quote " backslash \\ newline \n end'
        counter.inc(labels={"path": nasty})
        text = registry.render()
        assert "\n end" not in text.split("# TYPE")[-1].splitlines()[1]
        (block,) = parse_exposition(text)
        (series, labels, value, _raw) = block["samples"][0]
        assert series == "repro_edge_total"
        assert dict(labels)["path"] == nasty
        assert value == 1.0


class TestQuantileMergeSemantics:
    def _worker(self, quantile, count):
        return "\n".join([
            "# HELP repro_request_latency_seconds Request latency.",
            "# TYPE repro_request_latency_seconds histogram",
            f'repro_request_latency_seconds_bucket{{le="+Inf"}} {count}',
            f"repro_request_latency_seconds_count {count}",
            f'repro_request_latency_seconds{{quantile="0.99"}} {quantile:.6f}',
        ]) + "\n"

    def test_quantiles_merge_as_max_and_say_so(self):
        merged = merge_expositions([self._worker(0.100, 4),
                                    self._worker(0.250, 6)])
        # Counts sum; quantiles take the worst worker (an upper bound).
        assert "repro_request_latency_seconds_count 10" in merged
        assert 'repro_request_latency_seconds{quantile="0.99"} 0.250000' in merged
        (block,) = parse_exposition(merged)
        assert "upper bound" in block["help"]
        assert "merged as max across workers" in block["help"]

    def test_blocks_without_quantiles_keep_their_help(self):
        text = ("# HELP repro_requests_total Requests.\n"
                "# TYPE repro_requests_total counter\n"
                "repro_requests_total 5\n")
        merged = merge_expositions([text, text])
        assert "# HELP repro_requests_total Requests.\n" in merged
        assert "upper bound" not in merged
        assert "repro_requests_total 10" in merged


# ---------------------------------------------------------------------------
# Resource sampler cpu_pct (delta-derived)
# ---------------------------------------------------------------------------

class TestResourceCpuPct:
    def test_second_sample_onward_carries_cpu_pct(self):
        from repro.obs.resource import ResourceSampler
        sink = _ListSink()
        sampler = ResourceSampler(sink, interval_s=0.02).start()
        deadline = time.monotonic() + 5.0
        while (len(sink.records) < 3 and time.monotonic() < deadline):
            sum(i * i for i in range(1000))     # keep a core warm
        sampler.stop()
        samples = [r["attrs"] for r in sink.records
                   if r["kind"] == "resource"]
        assert len(samples) >= 3
        assert "cpu_pct" not in samples[0]       # no delta yet
        with_pct = [s for s in samples[1:] if "cpu_pct" in s]
        assert with_pct, "no delta-derived cpu_pct in follow-up samples"
        assert all(s["cpu_pct"] >= 0.0 for s in with_pct)


# ---------------------------------------------------------------------------
# report_data / CLI surfaces
# ---------------------------------------------------------------------------

def _full_trace(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path)
    for rec in _cluster_request(1000.0, trace="a"):
        sink.emit(rec)
    for rec in _cluster_request(1001.0, status=503, trace="b"):
        sink.emit(rec)
    sink.emit(record("resource", "proc.sample",
                     {"rss_bytes": 1 << 20, "cpu_s": 1.0, "cpu_pct": 12.5}))
    sink.close()
    return path


class TestReportDataAndCLI:
    def test_report_data_shape(self, tmp_path):
        records = obs_store.load_records(_full_trace(tmp_path))
        doc = obs_report.report_data(records)
        assert set(doc) >= {"spans", "serving", "resources", "analysis",
                            "slo", "alerts"}
        assert doc["serving"]["requests"] == 4      # 2 tiers x 2 requests
        assert doc["analysis"]["summary"]["requests"] == 2
        assert doc["resources"]["mean_cpu_pct"] == pytest.approx(12.5)
        slos = {s["slo"]: s for s in doc["slo"]}
        assert slos["availability"]["totals"]["6h"] == 2
        json.dumps(doc)                              # JSON-serialisable

    def test_trace_json_cli(self, tmp_path, capsys):
        from repro.cli import main
        path = _full_trace(tmp_path)
        assert main(["trace", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["serving"]["requests"] == 4

    def test_trace_analysis_sections(self, tmp_path, capsys):
        from repro.cli import main
        path = _full_trace(tmp_path)
        assert main(["trace", path, "--analyze", "--slo"]) == 0
        out = capsys.readouterr().out
        assert "== critical path ==" in out
        assert "== slo ==" in out
        assert "availability" in out

    def test_trace_flamegraph_file(self, tmp_path, capsys):
        from repro.cli import main
        path = _full_trace(tmp_path)
        out_path = str(tmp_path / "stacks.folded")
        assert main(["trace", path, "--flamegraph", out_path]) == 0
        capsys.readouterr()
        with open(out_path) as fh:
            lines = [l for l in fh.read().splitlines() if l]
        assert lines
        for line in lines:
            frames, _, usec = line.rpartition(" ")
            assert frames and int(usec) > 0

    def test_top_cli_normalises_url(self, monkeypatch, capsys):
        from repro import cli
        seen = {}

        def fake_run_top(url, interval_s, iterations, clear):
            seen.update(url=url, interval_s=interval_s,
                        iterations=iterations, clear=clear)
            return 1

        monkeypatch.setattr(obs_top, "run_top", fake_run_top)
        assert cli.main(["top", "localhost:8000", "--iterations", "1",
                         "--no-clear"]) == 0
        assert seen["url"] == "http://localhost:8000/metrics"
        assert seen["iterations"] == 1 and seen["clear"] is False
