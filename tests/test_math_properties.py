"""Cross-cutting mathematical properties of the paper's operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, avg_pool1d
from repro.decomposition import chunk_gradient, decompose_trend_array
from repro.spectral import CWTOperator


class TestChunkGradientTelescoping:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.sampled_from([(12, 4), (20, 5), (16, 8)]))
    def test_gradients_telescope_to_last_chunk(self, seed, dims):
        """With S^0 = 0, summing the chunk gradients recovers S^u exactly:
        sum_i Delta^i = sum_i (S^i - S^{i-1}) = S^u."""
        t_len, period = dims
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 2, t_len))
        delta = chunk_gradient(Tensor(x), period).data
        u = t_len // period
        chunks = delta.reshape(1, 2, u, period)
        np.testing.assert_allclose(chunks.sum(axis=2),
                                   x.reshape(1, 2, u, period)[:, :, -1],
                                   rtol=1e-10)

    def test_shifting_input_by_one_period_shifts_gradients(self):
        """Period-aligned translation invariance of the chunk structure."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal(24)
        a = chunk_gradient(Tensor(np.r_[x, x[:8]][None, None, :24]), 8).data
        # chunks of the first 24 samples
        assert a.shape == (1, 1, 24)


class TestTrendLinearity:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_decomposition_is_linear(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((40, 2))
        b = rng.standard_normal((40, 2))
        sa, ta = decompose_trend_array(a)
        sb, tb = decompose_trend_array(b)
        s_sum, t_sum = decompose_trend_array(2 * a - b)
        np.testing.assert_allclose(t_sum, 2 * ta - tb, atol=1e-9)
        np.testing.assert_allclose(s_sum, 2 * sa - sb, atol=1e-9)

    def test_trend_of_trend_is_nearly_trend(self):
        """Moving average is approximately idempotent on smooth input."""
        t = np.arange(60, dtype=float)
        x = (0.1 * t)[:, None]
        _, trend1 = decompose_trend_array(x)
        _, trend2 = decompose_trend_array(trend1)
        assert np.abs(trend2 - trend1).max() < np.abs(x).max() * 0.05


class TestPoolingAgainstNumpy:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=500),
           st.sampled_from([3, 5, 7]))
    def test_same_as_convolve(self, seed, k):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(30)
        pooled = avg_pool1d(Tensor(x[None, None, :]), k, stride=1,
                            padding=(k - 1) // 2, pad_mode="edge").data[0, 0]
        padded = np.pad(x, (k // 2, k // 2), mode="edge")
        expected = np.convolve(padded, np.ones(k) / k, mode="valid")
        np.testing.assert_allclose(pooled, expected, rtol=1e-9)


class TestCWTScalingRelation:
    def test_dilated_signal_peaks_at_dilated_scale(self):
        """CWT covariance: stretching the signal moves energy to larger scales."""
        op = CWTOperator(seq_len=96, num_scales=12)
        t = np.arange(96)
        fast = np.sin(2 * np.pi * t * op.frequencies[8])
        slow = np.sin(2 * np.pi * t * op.frequencies[4])
        peak_fast = int(op.amplitude_array(fast).mean(axis=-1).argmax())
        peak_slow = int(op.amplitude_array(slow).mean(axis=-1).argmax())
        assert peak_fast > peak_slow   # higher frequency -> later scale index

    def test_parseval_like_energy_monotonicity(self):
        """Doubling the signal amplitude quadruples total TF energy."""
        op = CWTOperator(seq_len=48, num_scales=6)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(48)
        e1 = (op.amplitude_array(x) ** 2).sum()
        e2 = (op.amplitude_array(2 * x) ** 2).sum()
        assert e2 == pytest.approx(4 * e1, rel=1e-9)
