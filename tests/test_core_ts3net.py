"""Tests for TS3Net, the TF-Block, and the prediction heads."""

import numpy as np
import pytest

from repro.autodiff import Tensor, mse_loss
from repro.core import (
    AutoregressionHead, PredictionHead, ReplicateBlock, TFBlock, TS3Net,
    TS3NetConfig, WeightLearnedMerge,
)
from repro.optim import Adam


def tiny_config(**overrides) -> TS3NetConfig:
    base = dict(seq_len=32, pred_len=16, c_in=3, d_model=8, num_blocks=1,
                num_scales=4, num_branches=2, d_ff=8, num_kernels=2,
                dropout=0.0)
    base.update(overrides)
    return TS3NetConfig(**base)


class TestHeads:
    def test_prediction_head_shape(self, rng):
        head = PredictionHead(seq_len=20, out_len=7, d_model=8, c_out=3)
        out = head(Tensor(rng.standard_normal((2, 20, 8))))
        assert out.shape == (2, 7, 3)

    def test_autoregression_head_shape(self, rng):
        head = AutoregressionHead(seq_len=20, out_len=9)
        out = head(Tensor(rng.standard_normal((2, 20, 3))))
        assert out.shape == (2, 9, 3)

    def test_heads_trainable(self, rng):
        head = PredictionHead(10, 5, 4, 2, dropout=0.0)
        out = head(Tensor(rng.standard_normal((1, 10, 4))))
        out.sum().backward()
        assert all(p.grad is not None for p in head.parameters())


class TestTFBlock:
    def test_preserves_shape(self, rng):
        block = TFBlock(seq_len=16, d_model=8, num_scales=4, num_branches=2,
                        d_ff=8, num_kernels=2, dropout=0.0)
        x = Tensor(rng.standard_normal((2, 16, 8)))
        assert block(x).shape == (2, 16, 8)

    def test_merge_weights_are_distribution(self):
        merge = WeightLearnedMerge(3)
        from repro.autodiff.ops import softmax
        w = softmax(merge.logits.reshape(1, -1), axis=-1).data
        np.testing.assert_allclose(w.sum(), 1.0)
        np.testing.assert_allclose(w, 1.0 / 3.0)  # uniform at init

    def test_merge_combines(self, rng):
        merge = WeightLearnedMerge(2)
        a = Tensor(np.ones((1, 4, 2)))
        b = Tensor(np.zeros((1, 4, 2)))
        out = merge([a, b])
        np.testing.assert_allclose(out.data, 0.5)

    def test_gradients_reach_all_branches(self, rng):
        block = TFBlock(seq_len=12, d_model=4, num_scales=3, num_branches=2,
                        d_ff=4, num_kernels=2, dropout=0.0)
        x = Tensor(rng.standard_normal((1, 12, 4)), requires_grad=True)
        block(x).sum().backward()
        for name, p in block.named_parameters():
            assert p.grad is not None, name

    def test_replicate_block_shape(self, rng):
        block = ReplicateBlock(seq_len=16, d_model=8, num_scales=4, d_ff=8,
                               num_kernels=2, dropout=0.0)
        x = Tensor(rng.standard_normal((2, 16, 8)))
        assert block(x).shape == (2, 16, 8)


class TestTS3NetForward:
    def test_forecast_shape(self, rng):
        model = TS3Net(tiny_config())
        out = model(Tensor(rng.standard_normal((2, 32, 3))))
        assert out.shape == (2, 16, 3)

    def test_imputation_shape(self, rng):
        model = TS3Net(tiny_config(task="imputation"))
        out = model(Tensor(rng.standard_normal((2, 32, 3))))
        assert out.shape == (2, 32, 3)

    @pytest.mark.parametrize("kw", [
        {"use_td": False},
        {"tf_mode": "replicate"},
        {"use_td": False, "tf_mode": "replicate"},
        {"use_norm": False},
        {"num_branches": 1},
        {"num_blocks": 2},
        {"first_chunk_zero": False},
    ])
    def test_variant_shapes(self, rng, kw):
        model = TS3Net(tiny_config(**kw))
        out = model(Tensor(rng.standard_normal((2, 32, 3))))
        assert out.shape == (2, 16, 3)

    def test_bad_tf_mode(self):
        with pytest.raises(ValueError):
            TS3Net(tiny_config(tf_mode="bogus"))

    def test_config_xor_overrides(self):
        with pytest.raises(ValueError):
            TS3Net(tiny_config(), seq_len=10)

    def test_kwargs_constructor(self, rng):
        model = TS3Net(seq_len=16, pred_len=8, c_in=2, d_model=8,
                       num_blocks=1, num_scales=4, d_ff=8, num_kernels=2)
        out = model(Tensor(rng.standard_normal((1, 16, 2))))
        assert out.shape == (1, 8, 2)

    def test_out_len_property(self):
        assert tiny_config().out_len == 16
        assert tiny_config(task="imputation").out_len == 32


class TestTS3NetTraining:
    def test_all_parameters_receive_gradients(self, rng):
        model = TS3Net(tiny_config())
        x = Tensor(rng.standard_normal((2, 32, 3)))
        loss = mse_loss(model(x), rng.standard_normal((2, 16, 3)))
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no grad for: {missing}"

    def test_overfits_tiny_problem(self, rng):
        """Sanity: the full model can fit a small deterministic mapping."""
        model = TS3Net(tiny_config())
        t = np.arange(48)
        series = np.sin(2 * np.pi * t / 8)[None, :, None] * np.ones((4, 1, 3))
        x, y = series[:, :32], series[:, 32:]
        opt = Adam(model.parameters(), lr=5e-3)
        first = None
        for step in range(30):
            model.zero_grad()
            loss = mse_loss(model(Tensor(x)), y)
            loss.backward()
            opt.step()
            if first is None:
                first = float(loss.data)
        assert float(loss.data) < 0.5 * first

    def test_deterministic_given_seed(self, rng):
        from repro.utils import set_seed
        x = rng.standard_normal((1, 32, 3))
        set_seed(7)
        m1 = TS3Net(tiny_config())
        m1.eval()
        out1 = m1(Tensor(x)).data
        set_seed(7)
        m2 = TS3Net(tiny_config())
        m2.eval()
        out2 = m2(Tensor(x)).data
        np.testing.assert_allclose(out1, out2)

    def test_instance_norm_restores_scale(self, rng):
        """With use_norm, shifting the input shifts the output (roughly)."""
        model = TS3Net(tiny_config())
        model.eval()
        x = rng.standard_normal((1, 32, 3))
        base = model(Tensor(x)).data
        shifted = model(Tensor(x + 100.0)).data
        np.testing.assert_allclose(shifted - base, 100.0, atol=1.0)


class TestDecomposeAPI:
    def test_model_exposes_decomposition(self, rng):
        model = TS3Net(tiny_config())
        x = Tensor(rng.standard_normal((1, 32, 3)))
        res = model.decompose(x)
        np.testing.assert_allclose(
            res.trend.data + res.regular.data + res.delta_1d.data,
            x.data, rtol=1e-8)
