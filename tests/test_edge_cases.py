"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.autodiff import Tensor, concat, mse_loss
from repro.baselines import build_model
from repro.core import TS3Net, TS3NetConfig
from repro.data import DataLoader, ForecastWindows, load_dataset
from repro.optim import Adam, EarlyStopping
from repro.spectral import CWTOperator
from repro.decomposition import SpectrumGradientDecomposition


class TestAutodiffEdges:
    def test_zero_dim_tensor_ops(self):
        a = Tensor(2.0, requires_grad=True)
        out = (a.exp() * a).log()
        out.backward()
        assert np.isfinite(a.grad)

    def test_single_element_reduction(self):
        a = Tensor([[5.0]], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [[1.0]])

    def test_concat_single_tensor(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        out = concat([a], axis=0)
        np.testing.assert_allclose(out.data, a.data)

    def test_very_large_values_stable_softmax(self):
        from repro.autodiff import softmax
        out = softmax(Tensor([[1e6, 1e6 + 1]]))
        assert np.isfinite(out.data).all()

    def test_grad_through_long_concat_chain(self, rng):
        a = Tensor(rng.standard_normal((1, 2)), requires_grad=True)
        pieces = [a * float(i) for i in range(20)]
        concat(pieces, axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((1, 2), sum(range(20))))


class TestSpectralEdges:
    def test_single_scale_operator(self, rng):
        op = CWTOperator(seq_len=16, num_scales=1)
        out = op.amplitude_array(rng.standard_normal(16))
        assert out.shape == (1, 16)

    def test_short_series(self, rng):
        op = CWTOperator(seq_len=4, num_scales=2)
        out = op.amplitude_array(rng.standard_normal((3, 4)))
        assert out.shape == (3, 2, 4)
        assert np.isfinite(out).all()

    def test_sgd_with_period_one(self, rng):
        sgd = SpectrumGradientDecomposition(seq_len=16, num_scales=2, period=1)
        res = sgd(Tensor(rng.standard_normal((1, 16, 2))))
        assert np.isfinite(res.regular.data).all()

    def test_sgd_constant_input(self):
        sgd = SpectrumGradientDecomposition(seq_len=16, num_scales=2)
        res = sgd(Tensor(np.ones((1, 16, 1))))
        assert np.isfinite(res.fluctuant.data).all()


class TestModelEdges:
    def test_single_channel_series(self, rng):
        model = TS3Net(TS3NetConfig(seq_len=16, pred_len=4, c_in=1,
                                    d_model=8, num_blocks=1, num_scales=4,
                                    num_branches=1, d_ff=8, num_kernels=2))
        out = model(Tensor(rng.standard_normal((2, 16, 1))))
        assert out.shape == (2, 4, 1)

    def test_batch_of_one(self, rng):
        model = build_model("TS3Net", 16, 4, 2, num_scales=4)
        out = model(Tensor(rng.standard_normal((1, 16, 2))))
        assert out.shape == (1, 4, 2)

    def test_horizon_longer_than_lookback(self, rng):
        model = build_model("DLinear", seq_len=8, pred_len=32, c_in=2)
        out = model(Tensor(rng.standard_normal((2, 8, 2))))
        assert out.shape == (2, 32, 2)

    def test_constant_input_finite_output(self):
        model = build_model("TS3Net", 16, 4, 2, num_scales=4)
        model.eval()
        out = model(Tensor(np.full((1, 16, 2), 3.0)))
        assert np.isfinite(out.data).all()

    def test_extreme_scale_input(self, rng):
        """Instance norm must keep huge-magnitude inputs stable."""
        model = build_model("TS3Net", 16, 4, 2, num_scales=4)
        model.eval()
        out = model(Tensor(rng.standard_normal((1, 16, 2)) * 1e6))
        assert np.isfinite(out.data).all()

    def test_paper_preset_constructs(self):
        """Table III-sized TS3Net (lambda=100) builds without error."""
        model = build_model("TS3Net", seq_len=96, pred_len=96, c_in=7,
                            preset="paper")
        assert model.config.num_scales == 100
        assert model.config.d_model == 32       # Table III rule for C=7
        assert model.num_parameters() > 100_000


class TestTrainingEdges:
    def test_early_stopping_with_nan_losses(self):
        """NaN validation losses must not crash the stopper."""
        from repro.nn import Linear
        stopper = EarlyStopping(patience=2)
        model = Linear(2, 2)
        stopper.update(float("nan"), model)
        stopper.update(float("nan"), model)
        assert stopper.counter >= 1  # NaN never improves

    def test_optimizer_with_partial_grads(self, rng):
        """Parameters untouched by the loss keep their values."""
        from repro.nn import Linear, Module

        class TwoHeads(Module):
            def __init__(self):
                super().__init__()
                self.used = Linear(2, 2)
                self.unused = Linear(2, 2)

            def forward(self, x):
                return self.used(x)

        model = TwoHeads()
        before = model.unused.weight.data.copy()
        opt = Adam(model.parameters(), lr=0.1)
        loss = mse_loss(model(Tensor(rng.standard_normal((4, 2)))),
                        np.zeros((4, 2)))
        loss.backward()
        opt.step()
        np.testing.assert_array_equal(model.unused.weight.data, before)

    def test_loader_stride_larger_than_data_guard(self):
        fw = ForecastWindows(np.zeros((30, 1)), 10, 5, stride=100)
        assert len(fw) == 1

    def test_dataset_min_length_guard(self):
        with pytest.raises(ValueError):
            load_dataset("ETTh1", n_steps=900).train[:0]  # fine
            ForecastWindows(np.zeros((5, 1)), 48, 24)


class TestNumericalStability:
    def test_deep_ts3net_gradient_magnitude(self, rng):
        """Two stacked blocks: gradients neither vanish nor explode."""
        model = TS3Net(TS3NetConfig(seq_len=24, pred_len=8, c_in=2,
                                    d_model=8, num_blocks=2, num_scales=4,
                                    num_branches=1, d_ff=8, num_kernels=2,
                                    dropout=0.0))
        x = Tensor(rng.standard_normal((2, 24, 2)))
        loss = mse_loss(model(x), rng.standard_normal((2, 8, 2)))
        loss.backward()
        norms = [np.abs(p.grad).max() for p in model.parameters()
                 if p.grad is not None]
        assert max(norms) < 1e4
        assert max(norms) > 1e-12

    def test_repeated_forward_no_state_leak(self, rng):
        model = build_model("TS3Net", 16, 4, 2, num_scales=4)
        model.eval()
        x = Tensor(rng.standard_normal((1, 16, 2)))
        out1 = model(x).data.copy()
        out2 = model(x).data
        np.testing.assert_allclose(out1, out2)
