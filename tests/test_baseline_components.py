"""Component-level tests inside the baseline models."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.baselines.fedformer import FourierBlock
from repro.baselines.informer import DistillLayer
from repro.baselines.lightts import IEBlock
from repro.baselines.micn import ScaleBranch
from repro.baselines.stationary import Projector
from repro.baselines.timesnet import TimesBlock


class TestFourierBlock:
    def test_shape(self, rng):
        block = FourierBlock(seq_len=32, d_model=8, modes=4)
        out = block(Tensor(rng.standard_normal((2, 32, 8))))
        assert out.shape == (2, 32, 8)

    def test_modes_clamped_to_spectrum(self):
        block = FourierBlock(seq_len=10, d_model=4, modes=100)
        assert len(block.mode_idx) == 6     # rfft bins of length-10 signal

    def test_bandlimiting(self, rng):
        """Output lives in the span of the selected modes only."""
        block = FourierBlock(seq_len=64, d_model=2, modes=3, seed=1)
        x = Tensor(rng.standard_normal((1, 64, 2)))
        out = block(x).data[0, :, 0]
        spectrum = np.abs(np.fft.rfft(out))
        keep = np.zeros_like(spectrum, dtype=bool)
        keep[block.mode_idx] = True
        assert spectrum[~keep].max() < 1e-6 * max(spectrum.max(), 1e-12) + 1e-9

    def test_gradients(self, rng):
        block = FourierBlock(seq_len=16, d_model=4, modes=3)
        x = Tensor(rng.standard_normal((1, 16, 4)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert block.w_real.grad is not None
        assert block.w_imag.grad is not None

    def test_different_seeds_select_different_modes(self):
        a = FourierBlock(32, 4, modes=4, seed=0)
        b = FourierBlock(32, 4, modes=4, seed=1)
        assert not np.array_equal(a.mode_idx, b.mode_idx)


class TestDistillLayer:
    def test_halves_length(self, rng):
        layer = DistillLayer(8)
        out = layer(Tensor(rng.standard_normal((2, 10, 8))))
        assert out.shape == (2, 5, 8)

    def test_odd_length(self, rng):
        layer = DistillLayer(8)
        out = layer(Tensor(rng.standard_normal((2, 9, 8))))
        assert out.shape == (2, 5, 8)


class TestIEBlock:
    def test_shape_preserved(self, rng):
        block = IEBlock(inner=4, outer=6, hidden=8)
        x = Tensor(rng.standard_normal((2, 3, 6, 4)))
        assert block(x).shape == (2, 3, 6, 4)


class TestScaleBranch:
    def test_output_length_restored(self, rng):
        branch = ScaleBranch(seq_len=32, d_model=8, scale=4)
        out = branch(Tensor(rng.standard_normal((2, 8, 32))))
        assert out.shape == (2, 8, 32)

    def test_isometric_kernel_spans_downsampled(self):
        branch = ScaleBranch(seq_len=32, d_model=4, scale=4)
        assert branch.down_len == 8
        assert branch.iso.weight.shape[-1] == 8


class TestProjector:
    def test_factor_shape(self, rng):
        proj = Projector(c_in=5, seq_len=24)
        out = proj(rng.standard_normal((3, 24, 5)))
        assert out.shape == (3, 1)

    def test_uses_raw_statistics(self, rng):
        proj = Projector(c_in=2, seq_len=16)
        x = rng.standard_normal((2, 16, 2))
        a = proj(x).data
        b = proj(x * 5.0).data
        assert not np.allclose(a, b)


class TestTimesBlock:
    def test_shape(self, rng):
        block = TimesBlock(seq_len=24, d_model=8, d_ff=8, top_k=2,
                           num_kernels=2)
        out = block(Tensor(rng.standard_normal((2, 24, 8))))
        assert out.shape == (2, 24, 8)

    def test_periodic_input_processes(self, rng):
        t = np.arange(24)
        x = np.sin(2 * np.pi * t / 8)[None, :, None] * np.ones((2, 1, 8))
        x = x + 0.01 * rng.standard_normal((2, 24, 8))
        block = TimesBlock(seq_len=24, d_model=8, d_ff=8, top_k=1,
                           num_kernels=2)
        out = block(Tensor(x))
        assert np.isfinite(out.data).all()

    def test_gradients(self, rng):
        block = TimesBlock(seq_len=12, d_model=4, d_ff=4, top_k=2,
                           num_kernels=2)
        x = Tensor(rng.standard_normal((1, 12, 4)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
