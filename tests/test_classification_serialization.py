"""Tests for cross entropy, checkpoint serialization, and classification."""

import numpy as np
import pytest

from repro import TS3Net, TS3NetConfig, Tensor, set_seed
from repro.autodiff import check_gradients, cross_entropy_loss, log_softmax
from repro.nn import Linear, load_checkpoint, peek_metadata, save_checkpoint
from repro.tasks import (
    SeriesClassifier, make_classification_dataset, run_classification,
)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self, rng):
        from repro.autodiff import softmax
        x = Tensor(rng.standard_normal((3, 5)))
        np.testing.assert_allclose(log_softmax(x).data,
                                   np.log(softmax(x).data), rtol=1e-9)

    def test_stable_for_large_inputs(self):
        out = log_softmax(Tensor([[1e5, 1e5 + 2.0]]))
        assert np.isfinite(out.data).all()

    def test_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        check_gradients(lambda x: log_softmax(x), [x])


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy_loss(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_logits_log_k(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy_loss(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3.0))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy_loss(Tensor(np.zeros((2, 3, 4))), np.zeros(2, int))
        with pytest.raises(ValueError):
            cross_entropy_loss(Tensor(np.zeros((2, 3))), np.zeros(5, int))

    def test_gradcheck(self, rng):
        labels = np.array([0, 2, 1])
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_gradients(lambda x: cross_entropy_loss(x, labels), [x])


class TestSerialization:
    def _model(self):
        return TS3Net(TS3NetConfig(seq_len=16, pred_len=4, c_in=2, d_model=8,
                                   num_blocks=1, num_scales=4, num_branches=1,
                                   d_ff=8, num_kernels=2, dropout=0.0))

    def test_roundtrip(self, tmp_path, rng):
        set_seed(1)
        a = self._model()
        path = str(tmp_path / "model.npz")
        save_checkpoint(a, path, metadata={"epoch": 3, "mse": 0.5})

        set_seed(2)
        b = self._model()
        meta = load_checkpoint(b, path)
        assert meta == {"epoch": 3, "mse": 0.5}
        x = Tensor(rng.standard_normal((1, 16, 2)))
        a.eval(), b.eval()
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_peek_metadata(self, tmp_path):
        path = str(tmp_path / "m.npz")
        save_checkpoint(Linear(2, 3), path, metadata={"note": "hi"})
        assert peek_metadata(path)["note"] == "hi"

    def test_wrong_architecture_rejected(self, tmp_path):
        path = str(tmp_path / "m.npz")
        save_checkpoint(Linear(2, 3), path)
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(Linear(3, 3), path)

    def test_no_metadata_ok(self, tmp_path):
        path = str(tmp_path / "m.npz")
        save_checkpoint(Linear(2, 2), path)
        model = Linear(2, 2)
        assert load_checkpoint(model, path) == {}


class TestClassificationDataset:
    def test_shapes_and_labels(self):
        x, y = make_classification_dataset(num_classes=3, samples_per_class=5,
                                           seq_len=32, channels=2)
        assert x.shape == (15, 32, 2)
        assert set(y) == {0, 1, 2}

    def test_deterministic(self):
        a = make_classification_dataset(seed=7, samples_per_class=3)
        b = make_classification_dataset(seed=7, samples_per_class=3)
        np.testing.assert_array_equal(a[0], b[0])

    def test_classes_spectrally_distinct(self):
        from repro.spectral import dominant_period
        x, y = make_classification_dataset(num_classes=2, samples_per_class=4,
                                           seq_len=64, noise=0.0)
        p0 = dominant_period(x[y == 0][0][:, 0])
        p1 = dominant_period(x[y == 1][0][:, 0])
        assert p0 != p1


class TestSeriesClassifier:
    def test_requires_encode(self):
        with pytest.raises(TypeError):
            SeriesClassifier(Linear(2, 2), d_model=2, num_classes=2)

    def test_logits_shape(self, rng):
        set_seed(0)
        backbone = TS3Net(TS3NetConfig(seq_len=32, pred_len=4, c_in=2,
                                       d_model=8, num_blocks=1, num_scales=4,
                                       num_branches=1, d_ff=8, num_kernels=2,
                                       dropout=0.0))
        clf = SeriesClassifier(backbone, d_model=8, num_classes=3)
        logits = clf(Tensor(rng.standard_normal((4, 32, 2))))
        assert logits.shape == (4, 3)

    def test_learns_separable_classes(self):
        """TS3Net features + linear head beats chance on the synthetic task."""
        set_seed(0)
        x, y = make_classification_dataset(num_classes=2, samples_per_class=20,
                                           seq_len=32, channels=2, noise=0.2,
                                           seed=3)
        backbone = TS3Net(TS3NetConfig(seq_len=32, pred_len=4, c_in=2,
                                       d_model=8, num_blocks=1, num_scales=4,
                                       num_branches=1, d_ff=8, num_kernels=2,
                                       dropout=0.0))
        clf = SeriesClassifier(backbone, d_model=8, num_classes=2)
        result = run_classification(clf, x, y, epochs=4, batch_size=8,
                                    lr=2e-3)
        assert result.accuracy > 0.6
        assert result.train_losses[-1] < result.train_losses[0]
