"""Tests for trend, spectrum-gradient, and triple decomposition invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.decomposition import (
    SeriesDecomposition, SpectrumGradientDecomposition, TripleDecomposition,
    chunk_gradient, decompose_array, decompose_trend_array,
)


class TestTrendDecomposition:
    def test_exact_additivity(self, tiny_series):
        decomp = SeriesDecomposition((13,))
        seasonal, trend = decomp(Tensor(tiny_series))
        np.testing.assert_allclose(seasonal.data + trend.data, tiny_series,
                                   rtol=1e-10)

    def test_constant_series_is_pure_trend(self):
        x = np.full((1, 30, 2), 5.0)
        seasonal, trend = SeriesDecomposition((5,))(Tensor(x))
        np.testing.assert_allclose(trend.data, x, rtol=1e-10)
        np.testing.assert_allclose(seasonal.data, 0.0, atol=1e-10)

    def test_linear_series_trend_captures_slope(self):
        t = np.arange(40, dtype=float)
        x = t[None, :, None].copy()
        seasonal, trend = SeriesDecomposition((5,))(Tensor(x))
        # Away from the edges, the moving average of a line is the line.
        np.testing.assert_allclose(trend.data[0, 5:-5, 0], t[5:-5], rtol=1e-8)

    def test_trend_smoother_than_input(self, tiny_series):
        seasonal, trend = SeriesDecomposition((13,))(Tensor(tiny_series))
        tv_x = np.abs(np.diff(tiny_series, axis=1)).mean()
        tv_t = np.abs(np.diff(trend.data, axis=1)).mean()
        assert tv_t < tv_x

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            SeriesDecomposition((4,))

    def test_multi_kernel_average(self, tiny_series):
        single_a = SeriesDecomposition((9,))(Tensor(tiny_series))[1].data
        single_b = SeriesDecomposition((13,))(Tensor(tiny_series))[1].data
        multi = SeriesDecomposition((9, 13))(Tensor(tiny_series))[1].data
        np.testing.assert_allclose(multi, (single_a + single_b) / 2, rtol=1e-9)

    def test_array_path_matches_tensor_path(self, tiny_series):
        s_a, t_a = decompose_trend_array(tiny_series, (9, 13))
        s_t, t_t = SeriesDecomposition((9, 13))(Tensor(tiny_series))
        np.testing.assert_allclose(t_a, t_t.data, atol=1e-9)
        np.testing.assert_allclose(s_a, s_t.data, atol=1e-9)

    def test_array_path_rank_flexibility(self):
        x = np.sin(np.arange(30) / 3.0)
        s1, t1 = decompose_trend_array(x)
        assert s1.shape == (30,)
        s2, t2 = decompose_trend_array(x[:, None])
        assert s2.shape == (30, 1)


class TestChunkGradient:
    def test_matches_manual_diff(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 12)))
        out = chunk_gradient(x, period=4).data
        chunks = x.data.reshape(2, 3, 3, 4)
        np.testing.assert_allclose(out[..., :4], chunks[..., 0, :])
        np.testing.assert_allclose(out[..., 4:8],
                                   chunks[..., 1, :] - chunks[..., 0, :])
        np.testing.assert_allclose(out[..., 8:],
                                   chunks[..., 2, :] - chunks[..., 1, :])

    def test_first_chunk_zero_option(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 12)))
        out = chunk_gradient(x, period=4, first_chunk_zero=False).data
        np.testing.assert_allclose(out[..., :4], 0.0)

    def test_non_divisible_period_keeps_length(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 13)))
        out = chunk_gradient(x, period=5)
        assert out.shape == (1, 2, 13)

    def test_period_longer_than_series(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8)))
        out = chunk_gradient(x, period=100)
        np.testing.assert_allclose(out.data, x.data)  # single chunk = itself

    def test_periodic_signal_has_small_gradient(self):
        # A perfectly periodic sequence has near-zero chunk differences
        # (after the first chunk).
        t = np.arange(48)
        x = Tensor(np.tile(np.sin(2 * np.pi * np.arange(12) / 12), 4)[None, None, :])
        out = chunk_gradient(x, period=12).data
        np.testing.assert_allclose(out[..., 12:], 0.0, atol=1e-12)

    def test_gradient_flows(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 12)), requires_grad=True)
        chunk_gradient(x, 4).sum().backward()
        assert x.grad is not None


class TestSpectrumGradientDecomposition:
    def test_exact_reconstruction_invariant(self, tiny_series):
        sgd = SpectrumGradientDecomposition(seq_len=48, num_scales=6)
        res = sgd(Tensor(tiny_series))
        np.testing.assert_allclose(res.regular.data + res.delta_1d.data,
                                   tiny_series, rtol=1e-9)

    def test_shapes(self, tiny_series):
        sgd = SpectrumGradientDecomposition(seq_len=48, num_scales=6)
        res = sgd(Tensor(tiny_series))
        assert res.regular.shape == (2, 48, 3)
        assert res.fluctuant.shape == (2, 3, 6, 48)
        assert res.tf_distribution.shape == (2, 3, 6, 48)
        assert res.delta_1d.shape == (2, 48, 3)

    def test_period_override(self, tiny_series):
        sgd = SpectrumGradientDecomposition(seq_len=48, num_scales=4)
        res = sgd(Tensor(tiny_series), period=6)
        assert res.period == 6

    def test_fixed_period_configuration(self, tiny_series):
        sgd = SpectrumGradientDecomposition(seq_len=48, num_scales=4, period=8)
        assert sgd(Tensor(tiny_series)).period == 8

    def test_wrong_length_raises(self, rng):
        sgd = SpectrumGradientDecomposition(seq_len=48, num_scales=4)
        with pytest.raises(ValueError):
            sgd(Tensor(rng.standard_normal((1, 32, 2))))

    def test_stationary_vs_modulated_fluctuation(self):
        """The fluctuant part should be larger for amplitude-modulated series —
        the defining behaviour of the spectrum gradient."""
        t = np.arange(96)
        stationary = np.sin(2 * np.pi * t / 12)
        modulated = (1.0 + 0.8 * np.sin(2 * np.pi * t / 48)) * np.sin(2 * np.pi * t / 12)
        sgd = SpectrumGradientDecomposition(seq_len=96, num_scales=8, period=12)
        res_s = sgd(Tensor(stationary[None, :, None]))
        res_m = sgd(Tensor(modulated[None, :, None]))
        # Compare gradients beyond the first chunk (which is the raw spectrum).
        tail_s = np.abs(res_s.fluctuant.data[..., 12:]).mean()
        tail_m = np.abs(res_m.fluctuant.data[..., 12:]).mean()
        assert tail_m > 2.0 * tail_s


class TestTripleDecomposition:
    def test_full_invariants(self, tiny_series):
        td = TripleDecomposition(seq_len=48, num_scales=6)
        res = td(Tensor(tiny_series))
        np.testing.assert_allclose(res.trend.data + res.seasonal.data,
                                   tiny_series, rtol=1e-9)
        np.testing.assert_allclose(res.regular.data + res.delta_1d.data,
                                   res.seasonal.data, rtol=1e-9)

    def test_detected_period_recorded(self, tiny_series):
        td = TripleDecomposition(seq_len=48, num_scales=6)
        res = td(Tensor(tiny_series))
        assert res.period in (12, 24)   # planted periods of the fixture

    def test_decompose_array_entry_point(self):
        x = np.sin(np.arange(64) / 4.0)
        res = decompose_array(x, num_scales=4)
        assert res.trend.shape == (1, 64, 1)
        assert res.fluctuant.shape == (1, 1, 4, 64)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_reconstruction_property_random_series(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 32, 2))
        res = decompose_array(x, num_scales=4)
        total = res.trend.data + res.regular.data + res.delta_1d.data
        np.testing.assert_allclose(total, x, rtol=1e-8, atol=1e-8)

    def test_differentiable_end_to_end(self, rng):
        x = Tensor(rng.standard_normal((1, 24, 2)), requires_grad=True)
        td = TripleDecomposition(seq_len=24, num_scales=4, period=6)
        res = td(x)
        (res.regular.sum() + res.fluctuant.sum() + res.trend.sum()).backward()
        assert x.grad is not None
        assert np.abs(x.grad).max() > 0
