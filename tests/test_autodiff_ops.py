"""Unit tests for functional ops: joins, padding, conv, pooling, losses."""

import numpy as np
import pytest
from scipy.signal import correlate2d

from repro.autodiff import (
    Tensor, avg_pool1d, avg_pool2d, check_gradients, concat, conv1d, conv2d,
    dropout, gelu, leaky_relu, mae_loss, masked_mse_loss, max_pool2d,
    mse_loss, pad, relu, sigmoid, softmax, stack, where,
)
from repro.autodiff.ops import fold2d, unfold2d, window_view


class TestJoin:
    def test_concat_values(self):
        out = concat([Tensor([1.0]), Tensor([2.0, 3.0])])
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])

    def test_concat_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        check_gradients(lambda a, b: concat([a, b], axis=1) * 2, [a, b])

    def test_stack_values_and_grad(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        check_gradients(lambda a, b: stack([a, b], axis=1), [a, b])


class TestPad:
    def test_constant_values(self):
        out = pad(Tensor([[1.0]]), ((1, 1), (0, 2)), value=7.0)
        assert out.shape == (3, 3)
        assert out.data[0, 0] == 7.0

    @pytest.mark.parametrize("mode", ["constant", "edge", "reflect"])
    def test_grad_all_modes(self, rng, mode):
        a = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        check_gradients(lambda a: pad(a, ((2, 1), (1, 2)), mode=mode), [a])

    def test_edge_matches_numpy(self, rng):
        x = rng.standard_normal((3, 4))
        out = pad(Tensor(x), ((1, 1), (2, 2)), mode="edge")
        np.testing.assert_allclose(out.data, np.pad(x, ((1, 1), (2, 2)), mode="edge"))

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            a = Tensor(np.zeros((2, 2)), requires_grad=True)
            out = pad(a, ((1, 1), (0, 0)), mode="wrap")
            out.sum().backward()


class TestNonlinearities:
    def test_relu_values(self):
        np.testing.assert_allclose(relu(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    @pytest.mark.parametrize("fn", [relu, gelu, sigmoid,
                                    lambda x: leaky_relu(x, 0.1),
                                    lambda x: softmax(x, axis=-1)])
    def test_grads(self, rng, fn):
        a = Tensor(rng.standard_normal((3, 5)) + 0.1, requires_grad=True)
        check_gradients(fn, [a])

    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.standard_normal((4, 6))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), rtol=1e-12)

    def test_softmax_shift_invariant(self, rng):
        x = rng.standard_normal((2, 5))
        np.testing.assert_allclose(softmax(Tensor(x)).data,
                                   softmax(Tensor(x + 100.0)).data, rtol=1e-9)

    def test_gelu_near_identity_for_large_positive(self):
        out = gelu(Tensor([10.0]))
        np.testing.assert_allclose(out.data, [10.0], atol=1e-4)

    def test_where_grad_routes(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        cond = np.array([True, False, True])
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestDropout:
    def test_eval_is_identity(self, rng):
        x = Tensor(rng.standard_normal((10, 10)))
        out = dropout(x, 0.5, training=False)
        assert out is x

    def test_training_scales(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        # Inverted dropout preserves the expectation.
        assert abs(out.data.mean() - 1.0) < 0.05
        kept = out.data != 0
        assert abs(kept.mean() - 0.5) < 0.05

    def test_grad_matches_mask(self, rng):
        x = Tensor(rng.standard_normal(100), requires_grad=True)
        out = dropout(x, 0.3, training=True, rng=np.random.default_rng(1))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data / np.where(
            x.data != 0, x.data, 1.0), rtol=1e-9)


class TestConv:
    def test_conv2d_matches_scipy(self, rng):
        x = rng.standard_normal((1, 1, 6, 7))
        w = rng.standard_normal((1, 1, 3, 3))
        out = conv2d(Tensor(x), Tensor(w))
        ref = correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(out.data[0, 0], ref, rtol=1e-10)

    def test_conv2d_shapes(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        w = Tensor(rng.standard_normal((5, 3, 3, 3)))
        assert conv2d(x, w, padding=1).shape == (2, 5, 8, 8)
        assert conv2d(x, w, stride=2).shape == (2, 5, 3, 3)

    def test_conv2d_channel_mismatch(self, rng):
        with pytest.raises(ValueError):
            conv2d(Tensor(rng.standard_normal((1, 2, 4, 4))),
                   Tensor(rng.standard_normal((1, 3, 3, 3))))

    def test_conv2d_grad_with_stride_and_pad(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        check_gradients(lambda x, w, b: conv2d(x, w, b, stride=2, padding=1),
                        [x, w, b])

    def test_conv1d_shape_and_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 10)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3, 3)), requires_grad=True)
        out = conv1d(x, w, padding=1)
        assert out.shape == (2, 4, 10)
        check_gradients(lambda x, w: conv1d(x, w, padding=1), [x, w])

    def test_unfold_fold_adjoint(self, rng):
        # fold is the adjoint of unfold: <unfold(x), y> == <x, fold(y)>
        x = rng.standard_normal((1, 2, 5, 5))
        y = rng.standard_normal((1, 2 * 3 * 3, 9))
        lhs = float((unfold2d(x, 3, 3) * y).sum())
        rhs = float((x * fold2d(y, x.shape, 3, 3)).sum())
        assert abs(lhs - rhs) < 1e-9

    def test_window_view_is_view(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        v = window_view(x, 2, 2)
        assert v.shape == (1, 1, 3, 3, 2, 2)
        np.testing.assert_allclose(v[0, 0, 1, 1], x[0, 0, 1:3, 1:3])


class TestPooling:
    def test_avg_pool1d_values(self):
        x = Tensor(np.arange(6, dtype=float).reshape(1, 1, 6))
        out = avg_pool1d(x, 2)
        np.testing.assert_allclose(out.data, [[[0.5, 2.5, 4.5]]])

    def test_avg_pool1d_same_length_edge(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 11)))
        out = avg_pool1d(x, 5, stride=1, padding=2, pad_mode="edge")
        assert out.shape == (2, 3, 11)

    def test_avg_pool1d_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 8)), requires_grad=True)
        check_gradients(lambda x: avg_pool1d(x, 3, stride=1, padding=1,
                                             pad_mode="edge"), [x])

    def test_avg_pool2d(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)), requires_grad=True)
        out = avg_pool2d(x, 2)
        assert out.shape == (1, 2, 2, 2)
        np.testing.assert_allclose(out.data[0, 0, 0, 0],
                                   x.data[0, 0, :2, :2].mean())
        check_gradients(lambda x: avg_pool2d(x, 2), [x])

    def test_max_pool2d_values_and_grad(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 4, 4)), requires_grad=True)
        out = max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0, 0, 0], x.data[0, 0, :2, :2].max())
        check_gradients(lambda x: max_pool2d(x, 2), [x])


class TestLosses:
    def test_mse_value(self):
        pred = Tensor([1.0, 2.0])
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_mae_value(self):
        pred = Tensor([1.0, -2.0])
        assert mae_loss(pred, np.zeros(2)).item() == pytest.approx(1.5)

    def test_masked_mse_only_masked(self):
        pred = Tensor([[1.0, 5.0]])
        target = np.array([[0.0, 0.0]])
        mask = np.array([[True, False]])
        assert masked_mse_loss(pred, target, mask).item() == pytest.approx(1.0)

    def test_masked_mse_empty_mask_is_zero(self):
        pred = Tensor([[1.0]])
        assert masked_mse_loss(pred, np.zeros((1, 1)),
                               np.zeros((1, 1), bool)).item() == 0.0

    def test_loss_grads(self, rng):
        pred = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        target = rng.standard_normal((3, 4))
        mask = rng.random((3, 4)) > 0.5
        check_gradients(lambda p: mse_loss(p, target), [pred])
        check_gradients(lambda p: mae_loss(p, target + 10), [pred])
        check_gradients(lambda p: masked_mse_loss(p, target, mask), [pred])

    def test_target_never_gets_grad(self):
        pred = Tensor([1.0], requires_grad=True)
        target = Tensor([2.0], requires_grad=True)
        mse_loss(pred, target).backward()
        assert target.grad is None
