"""Tests for the observability layer: spans, sinks, metrics, reports.

The load-bearing contracts:

* span nesting follows the thread-local context stack, and a captured
  ``SpanRef`` lets a worker thread parent its spans into the submitting
  thread's trace;
* JSONL records round-trip bit-for-bit through ``read_events`` and the
  reader refuses unknown schema versions/kinds;
* the Prometheus renderer escapes label values per the text exposition
  format;
* the ``/proc`` resource sampler starts and stops cleanly (idempotent,
  no thread leak);
* library code emits no bare ``print()`` (the lint_ops guard).
"""

import json
import os
import sys
import threading
import time

import numpy as np
import pytest

from repro.obs import (
    ConsoleSink, JsonlSink, MetricsRegistry, Observer, ResourceSampler,
    SpanRef, escape_label_value, read_events, record, sample_process,
)
from repro.obs import context as obs_context
from repro.obs import report as obs_report
from repro.obs import runtime as obs_runtime
from repro.obs.console import format_record

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "scripts"))
import lint_ops  # noqa: E402


class _ListSink:
    """Collects records in memory for assertions."""

    def __init__(self):
        self.records = []

    def emit(self, rec):
        self.records.append(rec)

    def close(self):
        pass


@pytest.fixture
def sink():
    return _ListSink()


@pytest.fixture
def observer(sink):
    ob = Observer(sink)
    yield ob
    ob.close()


def _spans(sink, name=None):
    return [r for r in sink.records if r["kind"] == "span_end"
            and (name is None or r["name"] == name)]


# ---------------------------------------------------------------------------
# Span context and nesting
# ---------------------------------------------------------------------------

class TestSpans:
    def test_nesting_same_thread(self, observer, sink):
        with observer.span("outer") as outer:
            with observer.span("inner") as inner:
                assert obs_context.current() == inner.ref
            assert obs_context.current() == outer.ref
        assert obs_context.current() is None

        outer_end = _spans(sink, "outer")[0]
        inner_end = _spans(sink, "inner")[0]
        assert inner_end["trace"] == outer_end["trace"]
        assert inner_end["parent"] == outer_end["span"]
        assert outer_end["parent"] is None
        assert outer_end["attrs"]["status"] == "ok"
        assert outer_end["dur_s"] >= inner_end["dur_s"]

    def test_cross_thread_linking(self, observer, sink):
        """A captured SpanRef parents a worker thread into the same trace."""
        refs = {}

        def worker(parent_ref):
            # Fresh thread: its own context stack starts empty ...
            assert obs_context.current() is None
            # ... unlinked spans start a new trace,
            with observer.span("detached"):
                refs["detached"] = obs_context.current()
            # ... but an explicit parent= joins the submitter's trace.
            with observer.span("linked", parent=parent_ref):
                refs["linked"] = obs_context.current()

        with observer.span("root") as root:
            thread = threading.Thread(target=worker, args=(root.ref,))
            thread.start()
            thread.join()
            # the worker's pushes never touched this thread's stack
            assert obs_context.current() == root.ref

        root_end = _spans(sink, "root")[0]
        assert refs["linked"].trace_id == root_end["trace"]
        assert refs["detached"].trace_id != root_end["trace"]
        linked_end = _spans(sink, "linked")[0]
        assert linked_end["parent"] == root_end["span"]

    def test_error_status(self, observer, sink):
        with pytest.raises(ValueError, match="boom"):
            with observer.span("failing"):
                raise ValueError("boom")
        end = _spans(sink, "failing")[0]
        assert end["attrs"]["status"] == "error"
        assert "ValueError: boom" in end["attrs"]["error"]
        assert obs_context.current() is None  # popped despite the raise

    def test_retroactive_span(self, observer, sink):
        with observer.span("parent"):
            rec = observer.emit_span("cell", 1.5, {"mse": 0.25})
        assert rec["dur_s"] == 1.5
        assert rec["attrs"]["status"] == "ok"
        end = _spans(sink, "cell")[0]
        assert end["parent"] == _spans(sink, "parent")[0]["span"]

    def test_event_carries_current_span(self, observer, sink):
        with observer.span("scope") as span:
            observer.event("note", {"k": 1})
        ev = [r for r in sink.records if r["kind"] == "event"][0]
        assert ev["span"] == span.ref.span_id
        assert ev["trace"] == span.ref.trace_id

    def test_span_attrs_set_after_open(self, observer, sink):
        with observer.span("fit") as span:
            span.set(epochs_run=3)
        assert _spans(sink, "fit")[0]["attrs"]["epochs_run"] == 3


# ---------------------------------------------------------------------------
# JSONL schema round-trip
# ---------------------------------------------------------------------------

class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        sink = JsonlSink(path)
        ref = SpanRef(obs_context.new_trace_id(), obs_context.new_span_id())
        written = [
            record("run_start", "run", {"pid": 1}),
            record("span_end", "trainer.epoch",
                   {"epoch": 1, "loss": np.float64(0.5)},
                   trace=ref.trace_id, span=ref.span_id, dur_s=0.25),
            record("resource", "proc", {"rss_bytes": 1 << 20}),
        ]
        for rec in written:
            sink.emit(rec)
        sink.close()

        back = read_events(path)
        assert len(back) == 3
        for orig, rec in zip(written, back):
            assert rec["kind"] == orig["kind"]
            assert rec["name"] == orig["name"]
            assert rec["ts"] == orig["ts"]
        # the numpy scalar serialised to a plain JSON number
        assert back[1]["attrs"]["loss"] == 0.5
        assert isinstance(back[1]["attrs"]["loss"], float)
        assert back[1]["dur_s"] == 0.25
        assert back[1]["trace"] == ref.trace_id

    def test_rejects_unknown_schema_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        rec = record("event", "x")
        rec["v"] = 999
        path.write_text(json.dumps(rec) + "\n")
        with pytest.raises(ValueError, match="schema version"):
            read_events(str(path))

    def test_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        rec = record("event", "x")
        rec["kind"] = "mystery"
        path.write_text(json.dumps(rec) + "\n")
        with pytest.raises(ValueError, match="unknown record kind"):
            read_events(str(path))

    def test_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="malformed"):
            read_events(str(path))

    def test_emit_after_close_is_noop(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "run.jsonl"))
        sink.close()
        sink.emit(record("event", "late"))  # must not raise
        assert read_events(str(tmp_path / "run.jsonl")) == []


# ---------------------------------------------------------------------------
# Metrics registry + Prometheus renderer
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_label_escaping(self):
        assert escape_label_value('say "hi"\\now\n') == 'say \\"hi\\"\\\\now\\n'
        registry = MetricsRegistry()
        registry.counter("odd_total", "Odd labels.").inc(
            labels={"path": 'a"b\\c\nd'})
        assert 'odd_total{path="a\\"b\\\\c\\nd"} 1' in registry.render()

    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "Hits.")
        first.inc(amount=2)
        registry.counter("hits_total", "Hits.").inc()
        (labels, value), = first.samples()
        assert labels == {} and value == 3

    def test_render_order_and_headers(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "Second registered.").inc()
        registry.gauge("a_gauge", "First by name, second stays first.").set(2)
        text = registry.render()
        # registration order, not alphabetical
        assert text.index("b_total") < text.index("a_gauge")
        assert "# HELP b_total Second registered." in text
        assert "# TYPE a_gauge gauge" in text
        assert text.endswith("\n")

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "Latency.",
                                  buckets=(0.1, 1.0), quantiles=(0.5,))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text


# ---------------------------------------------------------------------------
# Resource sampler lifecycle
# ---------------------------------------------------------------------------

class TestResourceSampler:
    def test_sample_process_reads_proc(self):
        sample = sample_process()
        assert sample["rss_bytes"] > 0
        assert sample["cpu_s"] >= 0.0

    def test_start_stop_lifecycle(self, sink):
        sampler = ResourceSampler(sink, interval_s=0.01)
        assert not sampler.running
        sampler.start()
        sampler.start()            # idempotent
        assert sampler.running
        deadline = time.monotonic() + 5.0
        while not sink.records and time.monotonic() < deadline:
            time.sleep(0.01)
        sampler.stop()
        assert not sampler.running
        count = len(sink.records)
        assert count >= 1
        assert all(r["kind"] == "resource" for r in sink.records)
        sampler.stop()             # idempotent
        time.sleep(0.05)
        assert len(sink.records) == count  # thread really stopped


# ---------------------------------------------------------------------------
# Runtime slot + console formatter + report
# ---------------------------------------------------------------------------

class TestRuntime:
    def test_disabled_fast_path_is_none(self):
        before = obs_runtime.swap(None)
        try:
            assert obs_runtime.active() is None
        finally:
            obs_runtime.swap(before)

    def test_configure_and_shutdown(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        observer = obs_runtime.configure(path=path)
        assert obs_runtime.active() is observer
        with observer.span("work"):
            pass
        obs_runtime.shutdown()
        assert obs_runtime.active() is None
        kinds = [r["kind"] for r in read_events(path)]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert "span_end" in kinds

    def test_observe_scope(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with obs_runtime.observe(path=path) as observer:
            assert obs_runtime.active() is observer
        assert obs_runtime.active() is None


class TestConsoleFormatter:
    def test_trainer_epoch_line_matches_legacy_format(self):
        rec = record("span_end", "trainer.epoch",
                     {"epoch": 3, "train_loss": 0.123456, "val_loss": 0.5},
                     dur_s=1.0)
        assert format_record(rec) == "  epoch 3: train 0.1235 val 0.5000"

    def test_grid_cell_line_matches_legacy_format(self):
        rec = record("span_end", "grid.cell",
                     {"cell": "TS3Net ETTh1 24", "mse": 0.456, "cached": False,
                      "done": 2, "total": 10, "eta_s": 12.3}, dur_s=6.63)
        line = format_record(rec)
        assert line == (f"[ 2/10] {'TS3Net ETTh1 24':<44s} "
                        "mse=0.456 (6.63s, ETA  12.3s)")
        rec["attrs"]["cached"] = True
        assert "(cache," in format_record(rec)

    def test_quiet_kinds_return_none(self):
        assert format_record(record("span_start", "x")) is None
        assert format_record(record("resource", "proc")) is None
        assert format_record(record("run_start", "run")) is None

    def test_console_sink_writes_stream(self):
        import io
        stream = io.StringIO()
        ConsoleSink(stream).emit(record(
            "span_end", "trainer.epoch",
            {"epoch": 1, "train_loss": 1.0, "val_loss": 2.0}, dur_s=0.1))
        assert stream.getvalue() == "  epoch 1: train 1.0000 val 2.0000\n"


class TestReport:
    def _synthetic_run(self):
        t_root = obs_context.new_trace_id()
        fit_id = obs_context.new_span_id()
        recs = [record("run_start", "run", {"pid": 7})]
        recs.append(record("span_end", "trainer.fit", {"status": "ok"},
                           trace=t_root, span=fit_id, dur_s=2.0))
        for epoch in (1, 2):
            recs.append(record(
                "span_end", "trainer.epoch",
                {"epoch": epoch, "train_loss": 1.0 / epoch,
                 "val_loss": 2.0 / epoch, "status": "ok"},
                trace=t_root, span=obs_context.new_span_id(),
                parent=fit_id, dur_s=1.0))
        recs.append(record(
            "span_end", "grid.cell",
            {"cell": "TS3Net ETTh1 24", "cached": False, "mse": 0.4,
             "worker_pid": 99, "status": "ok"},
            trace=t_root, span=obs_context.new_span_id(), dur_s=3.0))
        recs.append(record(
            "span_end", "http.request",
            {"method": "POST", "status_code": 200, "status": "ok"},
            trace=t_root, span=obs_context.new_span_id(), dur_s=0.004))
        recs.append(record(
            "span_end", "batch.execute", {"size": 4, "status": "ok"},
            trace=t_root, span=obs_context.new_span_id(), dur_s=0.001))
        recs.append(record("resource", "proc",
                           {"rss_bytes": 64 << 20, "cpu_s": 1.5}))
        recs.append(record("run_end", "run", {}))
        return recs

    def test_span_tree_nests_epochs_under_fit(self):
        tree = obs_report.render_span_tree(self._synthetic_run())
        lines = tree.splitlines()
        fit_line = next(l for l in lines if l.startswith("trainer.fit"))
        epoch_line = next(l for l in lines if "trainer.epoch" in l)
        assert epoch_line.startswith("  trainer.epoch")  # indented child
        assert " 2 " in epoch_line                       # aggregated count
        assert fit_line is not None

    def test_full_report_sections(self):
        out = obs_report.render_report(self._synthetic_run())
        assert "== span tree ==" in out
        assert "== epochs ==" in out
        assert "== grid cells ==" in out
        assert "== serving ==" in out
        assert "== resources ==" in out
        assert "1 requests (200: 1)" in out
        assert "peak RSS 64.0 MiB" in out
        assert "(pid 99)" in out

    def test_empty_log_renders_placeholder(self):
        assert obs_report.render_report([]) == "(empty run log)"

    def test_orphan_spans_become_roots(self):
        recs = [record("span_end", "lonely", {"status": "ok"},
                       trace="t", span="s", parent="never-seen", dur_s=0.1)]
        tree = obs_report.render_span_tree(recs)
        assert tree.splitlines()[1].startswith("lonely")


# ---------------------------------------------------------------------------
# Instrumented trainer end-to-end + lint guard
# ---------------------------------------------------------------------------

class TestTrainerIntegration:
    def test_fit_emits_epoch_spans(self, tmp_path):
        from repro.autodiff import Tensor, mse_loss
        from repro.baselines import build_model
        from repro.tasks.trainer import TrainConfig, Trainer

        model = build_model("DLinear", seq_len=16, pred_len=4, c_in=2,
                            preset="tiny")
        trainer = Trainer(model, TrainConfig(epochs=2, lr=1e-3))
        rng = np.random.default_rng(0)
        batches = [(rng.standard_normal((4, 16, 2)),
                    rng.standard_normal((4, 4, 2))) for _ in range(2)]

        def step_fn(batch):
            x, y = batch
            pred = trainer.model(Tensor(x))
            return mse_loss(pred, y), pred.data, y, None

        path = str(tmp_path / "fit.jsonl")
        with obs_runtime.observe(path=path) as observer:
            trainer.fit(batches, batches[:1], step_fn)
            counters = observer.metrics_text()
        recs = read_events(path)
        fits = [r for r in recs
                if r["kind"] == "span_end" and r["name"] == "trainer.fit"]
        epochs = [r for r in recs
                  if r["kind"] == "span_end" and r["name"] == "trainer.epoch"]
        assert len(fits) == 1 and fits[0]["attrs"]["epochs_run"] == 2
        assert len(epochs) == 2
        assert all(e["parent"] == fits[0]["span"] for e in epochs)
        assert all("train_loss" in e["attrs"] for e in epochs)
        assert "repro_train_epochs_total 2" in counters


def test_no_bare_prints_in_library_code():
    """Library output goes through the event sink; lint_ops enforces it."""
    violations = lint_ops.find_print_violations()
    assert violations == [], "\n".join(
        f"{path}:{line}: {reason}: {text}"
        for path, line, reason, text in violations)
