"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "TS3Net"
        assert args.task == "forecast"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "M5"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--checkpoint", "m.npz"])
        assert args.checkpoint == ["m.npz"]
        assert args.port == 8321 and args.max_batch_size == 16

    def test_serve_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "TS3Net" in out and "ETTh1" in out

    def test_train_forecast_and_reload(self, tmp_path, capsys):
        ckpt = str(tmp_path / "m.npz")
        rc = main(["train", "--model", "DLinear", "--dataset", "ETTh2",
                   "--seq-len", "24", "--pred-len", "8", "--n-steps", "600",
                   "--epochs", "1", "--max-batches", "3", "--save", ckpt])
        assert rc == 0
        out = capsys.readouterr().out
        assert "test MSE=" in out

        rc = main(["forecast", "--checkpoint", ckpt, "--n-steps", "600"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Prediction" in out

    def test_train_imputation(self, capsys):
        rc = main(["train", "--model", "DLinear", "--dataset", "Weather",
                   "--task", "imputation", "--seq-len", "24",
                   "--n-steps", "600", "--epochs", "1", "--max-batches", "3"])
        assert rc == 0
        assert "test MSE=" in capsys.readouterr().out

    def test_forecast_without_metadata_fails(self, tmp_path, capsys):
        from repro.nn import Linear
        import numpy as _np
        path = str(tmp_path / "bare.npz")
        _np.savez(path, **{"weight": _np.zeros((2, 2))})
        assert main(["forecast", "--checkpoint", path]) == 1

    def test_forecast_rejects_imputation_checkpoint(self, tmp_path, capsys):
        from repro.baselines import build_model
        from repro.nn import save_checkpoint
        model = build_model("DLinear", seq_len=24, pred_len=24, c_in=3,
                            task="imputation", preset="tiny")
        path = str(tmp_path / "imp.npz")
        save_checkpoint(model, path, metadata={
            "model": "DLinear", "dataset": "ETTh1", "task": "imputation",
            "seq_len": 24, "pred_len": 24, "c_in": 3, "preset": "tiny"})
        assert main(["forecast", "--checkpoint", path]) == 1
        err = capsys.readouterr().err
        assert "imputation" in err and "forecast" in err

    def test_train_trace_and_report(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        rc = main(["train", "--model", "DLinear", "--dataset", "ETTh2",
                   "--seq-len", "24", "--pred-len", "8", "--n-steps", "600",
                   "--epochs", "2", "--max-batches", "3", "--trace", trace])
        assert rc == 0
        assert "test MSE=" in capsys.readouterr().out

        from repro.obs import runtime as obs_runtime
        assert obs_runtime.active() is None  # shut down after the command

        rc = main(["trace", trace])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== span tree ==" in out
        assert "trainer.fit" in out
        assert "== epochs ==" in out

    def test_trace_missing_file(self, capsys):
        assert main(["trace", "/nonexistent/run.jsonl"]) == 1
        assert "error" in capsys.readouterr().err

    def test_decompose(self, capsys):
        rc = main(["decompose", "--dataset", "ETTh1", "--window", "64",
                   "--num-scales", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TF distribution" in out


class TestRegistryDerivedParser:
    def test_train_task_choices_from_registry(self):
        from repro.tasks import task_names
        for name in task_names():
            args = build_parser().parse_args(["train", "--task", name])
            assert args.task == name
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--task", "nonsense"])

    def test_infer_subcommand_per_task(self):
        from repro.tasks import task_specs
        for spec in task_specs():
            args = build_parser().parse_args(
                [spec.infer_command, "--checkpoint", "m.npz"])
            assert args.checkpoint == "m.npz"

    def test_serve_task_choices(self):
        args = build_parser().parse_args(["serve", "--checkpoint", "m.npz"])
        assert args.task is None
        args = build_parser().parse_args(
            ["serve", "--checkpoint", "m.npz", "--task", "anomaly"])
        assert args.task == "anomaly"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--checkpoint", "m.npz", "--task", "nonsense"])

    def test_list_names_tasks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "classification" in out and "anomaly" in out


class TestTaskCommands:
    def test_train_anomaly_and_detect(self, tmp_path, capsys):
        ckpt = str(tmp_path / "anom.npz")
        rc = main(["train", "--model", "DLinear", "--dataset", "ETTh2",
                   "--task", "anomaly", "--seq-len", "24", "--n-steps", "600",
                   "--epochs", "1", "--max-batches", "3",
                   "--anomaly-ratio", "0.05", "--save", ckpt])
        assert rc == 0
        out = capsys.readouterr().out
        assert "test MSE=" in out and "detection_rate=" in out

        rc = main(["detect", "--checkpoint", ckpt, "--n-steps", "600"])
        assert rc == 0
        assert "flagged" in capsys.readouterr().out

    def test_train_classification_and_classify(self, tmp_path, capsys):
        ckpt = str(tmp_path / "clf.npz")
        rc = main(["train", "--model", "TS3Net", "--task", "classification",
                   "--seq-len", "32", "--epochs", "1", "--max-batches", "4",
                   "--num-classes", "3", "--save", ckpt])
        assert rc == 0
        assert "accuracy=" in capsys.readouterr().out

        rc = main(["classify", "--checkpoint", ckpt, "--n-samples", "9"])
        assert rc == 0
        assert "accuracy" in capsys.readouterr().out

    def test_impute_from_checkpoint(self, tmp_path, capsys):
        ckpt = str(tmp_path / "imp.npz")
        rc = main(["train", "--model", "DLinear", "--dataset", "Weather",
                   "--task", "imputation", "--seq-len", "24",
                   "--n-steps", "600", "--epochs", "1", "--max-batches", "3",
                   "--save", ckpt])
        assert rc == 0
        capsys.readouterr()

        rc = main(["impute", "--checkpoint", ckpt, "--n-steps", "600"])
        assert rc == 0
        assert "masked-position MSE=" in capsys.readouterr().out

    def test_detect_rejects_forecast_checkpoint(self, tmp_path, capsys):
        from repro.baselines import build_model
        from repro.nn import save_checkpoint
        model = build_model("DLinear", seq_len=24, pred_len=8, c_in=3,
                            task="forecast", preset="tiny")
        path = str(tmp_path / "fc.npz")
        save_checkpoint(model, path, metadata={
            "model": "DLinear", "dataset": "ETTh1", "task": "forecast",
            "seq_len": 24, "pred_len": 8, "c_in": 3, "preset": "tiny"})
        assert main(["detect", "--checkpoint", path]) == 1
        err = capsys.readouterr().err
        assert "forecast" in err and "anomaly" in err

    def test_infer_unknown_task_checkpoint_names_known(self, tmp_path,
                                                       capsys):
        from repro.baselines import build_model
        from repro.nn import save_checkpoint
        model = build_model("DLinear", seq_len=24, pred_len=8, c_in=3,
                            task="forecast", preset="tiny")
        path = str(tmp_path / "odd.npz")
        save_checkpoint(model, path, metadata={
            "model": "DLinear", "dataset": "ETTh1", "task": "nonsense",
            "seq_len": 24, "pred_len": 8, "c_in": 3, "preset": "tiny"})
        assert main(["forecast", "--checkpoint", path]) == 1
        err = capsys.readouterr().err
        assert "unknown task 'nonsense'" in err
        assert "classification" in err
