"""FFT spectral engine vs the dense reference, plus precision & cache APIs.

The FFT engine must be *numerically interchangeable* with the dense matmul
form: the zero-padded circular convolution is exact (not approximate), so
the two paths are held to tight float64 tolerances across shapes and
wavelets.  The fused differentiable amplitude op is grad-checked against
finite differences, and the float32 precision mode is smoke-tested through
a full TS3Net train step.
"""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor, check_gradients, get_default_dtype, mse_loss, precision,
)
from repro.spectral import CWTOperator
from repro.spectral.engine import (
    DenseSpectralEngine, FFTSpectralEngine, make_engine,
)

COMBOS = [
    (32, 8, "cgau1"),
    (48, 16, "cgau2"),
    (64, 12, "morlet"),
    (96, 100, "cgau1"),   # the paper-scale shape the benchmark times
]


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Isolate the operator LRU so tests cannot leak state into each other."""
    CWTOperator.clear_cache()
    CWTOperator.set_cache_limit(8)
    yield
    CWTOperator.clear_cache()
    CWTOperator.set_cache_limit(8)


def _pair(seq_len, num_scales, wavelet):
    fft = CWTOperator.cached(seq_len, num_scales, wavelet, engine="fft")
    dense = CWTOperator.cached(seq_len, num_scales, wavelet, engine="dense")
    return fft, dense


class TestFFTDenseEquivalence:
    @pytest.mark.parametrize("seq_len,num_scales,wavelet", COMBOS)
    def test_transform_array(self, rng, seq_len, num_scales, wavelet):
        fft, dense = _pair(seq_len, num_scales, wavelet)
        x = rng.standard_normal((3, seq_len))
        np.testing.assert_allclose(fft.transform_array(x),
                                   dense.transform_array(x),
                                   rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("seq_len,num_scales,wavelet", COMBOS)
    def test_amplitude_array(self, rng, seq_len, num_scales, wavelet):
        fft, dense = _pair(seq_len, num_scales, wavelet)
        x = rng.standard_normal((2, 3, seq_len))     # extra batch dims
        np.testing.assert_allclose(fft.amplitude_array(x),
                                   dense.amplitude_array(x),
                                   rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("seq_len,num_scales,wavelet", COMBOS)
    def test_rotated_real_and_inverse(self, rng, seq_len, num_scales, wavelet):
        fft, dense = _pair(seq_len, num_scales, wavelet)
        x = rng.standard_normal((4, seq_len))
        np.testing.assert_allclose(fft.rotated_real_array(x),
                                   dense.rotated_real_array(x),
                                   rtol=1e-9, atol=1e-12)
        # Calibration runs through each operator's own engine, so matching
        # inverse weights means the whole fit pipeline agrees too.
        np.testing.assert_allclose(fft._iwt_weights, dense._iwt_weights,
                                   rtol=1e-9, atol=1e-12)
        coeffs = fft.rotated_real_array(x)
        np.testing.assert_allclose(fft.inverse_array(coeffs),
                                   dense.inverse_array(coeffs),
                                   rtol=1e-9, atol=1e-12)

    def test_adjoint_matches_dense(self, rng):
        fft = make_engine("fft", 48, CWTOperator.cached(48, 10).scales,
                          CWTOperator.cached(48, 10).wavelet)
        dense = make_engine("dense", 48, CWTOperator.cached(48, 10).scales,
                            CWTOperator.cached(48, 10).wavelet)
        g = (rng.standard_normal((3, 10, 48))
             + 1j * rng.standard_normal((3, 10, 48)))
        np.testing.assert_allclose(fft.adjoint(g), dense.adjoint(g),
                                   rtol=1e-9, atol=1e-12)

    def test_adjoint_is_true_adjoint(self, rng):
        """<L x, g> == <x, L^H g> under the real inner product."""
        op = CWTOperator.cached(32, 6, engine="fft")
        x = rng.standard_normal(32)
        g = rng.standard_normal((6, 32)) + 1j * rng.standard_normal((6, 32))
        lhs = np.sum((op.transform_array(x) * np.conj(g)).real)
        rhs = np.sum(x * op._engine.adjoint(g))
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)

    def test_fft_bank_much_smaller_than_dense(self):
        fft, dense = _pair(96, 100, "cgau1")
        assert fft.nbytes * 10 < dense.nbytes

    def test_scratch_reuse_does_not_alias_results(self, rng):
        op = CWTOperator.cached(48, 8, engine="fft")
        a = op.transform_array(rng.standard_normal((2, 48)))
        snapshot = a.copy()
        op.transform_array(rng.standard_normal((2, 48)))
        np.testing.assert_array_equal(a, snapshot)


class TestFusedAmplitudeGrad:
    def test_grad_check_fft(self, rng):
        op = CWTOperator.cached(24, 6, engine="fft")
        x = Tensor(rng.standard_normal((2, 24)), requires_grad=True)
        check_gradients(lambda t: op.amplitude(t), [x])

    def test_grad_check_dense(self, rng):
        op = CWTOperator.cached(24, 6, engine="dense")
        x = Tensor(rng.standard_normal((2, 24)), requires_grad=True)
        check_gradients(lambda t: op.amplitude(t), [x])

    def test_fft_grad_matches_dense_grad(self, rng):
        data = rng.standard_normal((3, 40))
        grads = []
        for engine in ("fft", "dense"):
            op = CWTOperator.cached(40, 12, engine=engine)
            x = Tensor(data.copy(), requires_grad=True)
            (op.amplitude(x) ** 2).sum().backward()
            grads.append(x.grad)
        np.testing.assert_allclose(grads[0], grads[1], rtol=1e-8, atol=1e-10)

    def test_amplitude_tape_is_single_node(self, rng):
        op = CWTOperator.cached(24, 6, engine="fft")
        x = Tensor(rng.standard_normal((2, 24)), requires_grad=True)
        out = op.amplitude(x)
        assert out._node is not None
        assert out._node.op == "cwt_amplitude"
        assert out._node.parents == (x,)   # fused: one hop back to the input


class TestPrecisionMode:
    def test_float32_arrays_stay_float32(self, rng):
        op = CWTOperator.cached(48, 8, engine="fft")
        x32 = rng.standard_normal((2, 48)).astype(np.float32)
        amp = op.amplitude_array(x32)
        assert amp.dtype == np.float32
        ref = op.amplitude_array(x32.astype(np.float64))
        np.testing.assert_allclose(amp, ref, rtol=1e-4, atol=1e-4)

    def test_precision_context_restores_default(self):
        before = get_default_dtype()
        with precision("float32"):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0]).data.dtype == np.float32
        assert get_default_dtype() == before

    def test_ts3net_float32_train_step(self, rng):
        from repro.baselines import build_model
        model = build_model("TS3Net", seq_len=24, pred_len=12, c_in=3,
                            preset="tiny")
        model.to("float32")
        x = rng.standard_normal((2, 24, 3)).astype(np.float32)
        y = rng.standard_normal((2, 12, 3)).astype(np.float32)
        with precision("float32"):
            model.zero_grad()
            pred = model(Tensor(x))
            assert pred.data.dtype == np.float32
            mse_loss(pred, y).backward()
        for name, p in model.named_parameters():
            assert p.data.dtype == np.float32, name
            assert p.grad is None or p.grad.dtype == np.float32, name


class TestOperatorLRUCache:
    def test_hits_misses_and_size(self):
        CWTOperator.cached(24, 4)
        CWTOperator.cached(24, 4)
        info = CWTOperator.cache_info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)
        assert info.maxsize == 8
        assert info.bank_bytes > 0

    def test_eviction_is_least_recently_used(self):
        CWTOperator.set_cache_limit(2)
        a = CWTOperator.cached(24, 4)
        CWTOperator.cached(24, 5)
        CWTOperator.cached(24, 4)          # refresh a
        CWTOperator.cached(24, 6)          # evicts (24, 5)
        assert CWTOperator.cached(24, 4) is a          # still cached
        assert CWTOperator.cache_info().size == 2

    def test_shrinking_limit_evicts(self):
        for lam in (4, 5, 6):
            CWTOperator.cached(24, lam)
        CWTOperator.set_cache_limit(1)
        info = CWTOperator.cache_info()
        assert info.size == 1 and info.maxsize == 1
        with pytest.raises(ValueError):
            CWTOperator.set_cache_limit(0)

    def test_clear_resets_counters(self):
        CWTOperator.cached(24, 4)
        CWTOperator.clear_cache()
        info = CWTOperator.cache_info()
        assert (info.hits, info.misses, info.size, info.bank_bytes) == (0, 0, 0, 0)

    def test_engine_distinguishes_cache_entries(self):
        f = CWTOperator.cached(24, 4, engine="fft")
        d = CWTOperator.cached(24, 4, engine="dense")
        assert f is not d
        assert isinstance(f._engine, FFTSpectralEngine)
        assert isinstance(d._engine, DenseSpectralEngine)

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown spectral engine"):
            CWTOperator(24, 4, engine="toeplitz")
