"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.obs import runtime as obs_runtime
from repro.utils import set_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    """Make weight init / dropout / shuffling deterministic per test."""
    set_seed(1234)
    yield


@pytest.fixture(scope="session", autouse=True)
def _session_trace():
    """Trace the whole test session when REPRO_TRACE is set.

    CI exports ``REPRO_TRACE=artifacts/pytest-trace.jsonl`` so a failing
    run uploads the spans every instrumented layer emitted on the way to
    the failure (see .github/workflows/ci.yml).
    """
    path = os.environ.get("REPRO_TRACE")
    if not path:
        yield None
        return
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    observer = obs_runtime.configure(path=path)
    yield observer
    obs_runtime.shutdown()


@pytest.fixture(autouse=True)
def _restore_observer():
    """Undo observer churn a test leaves behind.

    Tests that call ``obs.configure``/``shutdown`` (or CLI paths that do)
    replace the process-global slot; restore whatever was installed before
    the test so the session-level trace observer — or the default
    disabled state — survives.
    """
    before = obs_runtime.active()
    yield
    after = obs_runtime.active()
    if after is not before:
        if after is not None:
            after.close()
        obs_runtime.swap(before)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def tiny_series(rng):
    """A (B, T, C) batch with planted periodicity for decomposition tests."""
    t = np.arange(48)
    base = (np.sin(2 * np.pi * t / 12)[None, :, None]
            + 0.4 * np.sin(2 * np.pi * t / 24)[None, :, None]
            + 0.02 * t[None, :, None])
    return base + 0.05 * rng.standard_normal((2, 48, 3))
