"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.utils import set_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    """Make weight init / dropout / shuffling deterministic per test."""
    set_seed(1234)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def tiny_series(rng):
    """A (B, T, C) batch with planted periodicity for decomposition tests."""
    t = np.arange(48)
    base = (np.sin(2 * np.pi * t / 12)[None, :, None]
            + 0.4 * np.sin(2 * np.pi * t / 24)[None, :, None]
            + 0.02 * t[None, :, None])
    return base + 0.05 * rng.standard_normal((2, 48, 3))
