"""Tests for concrete layers: Linear, Conv, norms, dropout, RevIN, embeddings."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.nn import (
    BatchNorm2d, Conv1d, Conv2d, DataEmbedding, Dropout, GELU, Identity,
    LayerNorm, Linear, LinearEmbedding, PositionalEmbedding, ReLU, RevIN,
    Sigmoid, Tanh, TokenEmbedding, sinusoidal_position_encoding,
)
from repro.nn.inception import ConvBackbone2d, InceptionBlock2d


class TestLinear:
    def test_shape(self, rng):
        layer = Linear(4, 7)
        assert layer(Tensor(rng.standard_normal((5, 4)))).shape == (5, 7)

    def test_batched_leading_dims(self, rng):
        layer = Linear(4, 7)
        assert layer(Tensor(rng.standard_normal((2, 3, 4)))).shape == (2, 3, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 7, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(out.data, np.zeros((1, 7)))

    def test_gradcheck(self, rng):
        layer = Linear(3, 2)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_gradients(lambda x: layer(x), [x])
        out = layer(x).sum()
        out.backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None


class TestConvLayers:
    def test_conv1d_same_length(self, rng):
        layer = Conv1d(3, 5, kernel_size=3, padding=1)
        out = layer(Tensor(rng.standard_normal((2, 3, 10))))
        assert out.shape == (2, 5, 10)

    def test_conv2d_shapes(self, rng):
        layer = Conv2d(3, 4, kernel_size=(3, 5), padding=(1, 2))
        out = layer(Tensor(rng.standard_normal((2, 3, 6, 8))))
        assert out.shape == (2, 4, 6, 8)

    def test_conv_params_trainable(self, rng):
        layer = Conv2d(2, 3, 3)
        out = layer(Tensor(rng.standard_normal((1, 2, 5, 5))))
        out.sum().backward()
        assert layer.weight.grad is not None


class TestNorms:
    def test_layernorm_normalises(self, rng):
        layer = LayerNorm(16)
        out = layer(Tensor(rng.standard_normal((4, 16)) * 10 + 3))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_grad(self, rng):
        layer = LayerNorm(5)
        x = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        check_gradients(lambda x: layer(x), [x])

    def test_batchnorm_train_stats(self, rng):
        layer = BatchNorm2d(3)
        x = Tensor(rng.standard_normal((8, 3, 4, 4)) * 2 + 5)
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-9)
        assert layer.running_mean.max() > 0  # updated toward the batch mean

    def test_batchnorm_eval_uses_running(self, rng):
        layer = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)))
        layer(x)
        layer.eval()
        out1 = layer(x)
        out2 = layer(x)
        np.testing.assert_allclose(out1.data, out2.data)

    def test_revin_roundtrip(self, rng):
        layer = RevIN(3)
        x = Tensor(rng.standard_normal((2, 10, 3)) * 4 + 7)
        normed = layer.normalize(x)
        back = layer.denormalize(normed)
        np.testing.assert_allclose(back.data, x.data, rtol=1e-6)

    def test_revin_denorm_before_norm_raises(self):
        with pytest.raises(RuntimeError):
            RevIN(2).denormalize(Tensor(np.zeros((1, 2, 2))))


class TestActivationsAndDropout:
    @pytest.mark.parametrize("mod,fn", [
        (ReLU(), lambda x: np.maximum(x, 0)),
        (Tanh(), np.tanh),
        (Identity(), lambda x: x),
    ])
    def test_module_matches_numpy(self, rng, mod, fn):
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(mod(Tensor(x)).data, fn(x), rtol=1e-9)

    def test_sigmoid_range(self, rng):
        out = Sigmoid()(Tensor(rng.standard_normal((10,)) * 5))
        assert (out.data > 0).all() and (out.data < 1).all()

    def test_gelu_zero_at_zero(self):
        assert GELU()(Tensor([0.0])).data[0] == 0.0

    def test_dropout_off_in_eval(self, rng):
        layer = Dropout(0.9)
        layer.eval()
        x = Tensor(rng.standard_normal((5, 5)))
        np.testing.assert_allclose(layer(x).data, x.data)


class TestEmbeddings:
    def test_positional_table_shape_and_range(self):
        table = sinusoidal_position_encoding(20, 8)
        assert table.shape == (20, 8)
        assert np.abs(table).max() <= 1.0

    def test_positional_module_slices(self, rng):
        emb = PositionalEmbedding(8, max_len=100)
        out = emb(Tensor(rng.standard_normal((2, 13, 8))))
        assert out.shape == (1, 13, 8)

    def test_token_embedding_shape(self, rng):
        emb = TokenEmbedding(3, 16)
        out = emb(Tensor(rng.standard_normal((2, 10, 3))))
        assert out.shape == (2, 10, 16)

    def test_data_embedding_shape_and_grad(self, rng):
        emb = DataEmbedding(3, 8, dropout=0.0)
        x = Tensor(rng.standard_normal((2, 10, 3)), requires_grad=True)
        out = emb(x)
        assert out.shape == (2, 10, 8)
        out.sum().backward()
        assert x.grad is not None

    def test_linear_embedding(self, rng):
        emb = LinearEmbedding(3, 8)
        assert emb(Tensor(rng.standard_normal((2, 5, 3)))).shape == (2, 5, 8)


class TestInception:
    def test_requires_at_least_one_kernel(self):
        with pytest.raises(ValueError):
            InceptionBlock2d(2, 2, num_kernels=0)

    def test_preserves_spatial_dims(self, rng):
        block = InceptionBlock2d(3, 5, num_kernels=3)
        out = block(Tensor(rng.standard_normal((2, 3, 7, 9))))
        assert out.shape == (2, 5, 7, 9)

    def test_backbone_roundtrip_channels(self, rng):
        bb = ConvBackbone2d(4, 8, num_kernels=2)
        out = bb(Tensor(rng.standard_normal((1, 4, 5, 6))))
        assert out.shape == (1, 4, 5, 6)

    def test_grad_flows(self, rng):
        block = InceptionBlock2d(2, 2, num_kernels=2)
        x = Tensor(rng.standard_normal((1, 2, 4, 4)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())
