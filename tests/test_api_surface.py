"""Public-API surface checks: exports, versioning, CLI help of every module."""

import subprocess
import sys

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", [
        "repro.autodiff", "repro.nn", "repro.optim", "repro.spectral",
        "repro.decomposition", "repro.core", "repro.baselines", "repro.data",
        "repro.tasks", "repro.experiments",
    ])
    def test_subpackage_all_resolves(self, module):
        import importlib
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestExperimentCLIs:
    @pytest.mark.parametrize("module", [
        "repro.experiments.table2", "repro.experiments.table4",
        "repro.experiments.table5", "repro.experiments.table6",
        "repro.experiments.table7", "repro.experiments.table8",
        "repro.experiments.table9", "repro.experiments.figures",
        "repro.experiments.sensitivity",
    ])
    def test_help_exits_cleanly(self, module):
        proc = subprocess.run([sys.executable, "-m", module, "--help"],
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert "usage" in proc.stdout.lower()

    def test_repro_main_help(self):
        proc = subprocess.run([sys.executable, "-m", "repro", "--help"],
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0


class TestDocstringsPresent:
    @pytest.mark.parametrize("obj", [
        repro.TS3Net, repro.TS3NetConfig, repro.Tensor,
        repro.TripleDecomposition, repro.decompose_array, repro.set_seed,
    ])
    def test_public_objects_documented(self, obj):
        assert obj.__doc__ and len(obj.__doc__.strip()) > 10
