"""Registry-driven tests for the explicit op-graph IR.

Three layers of guarantees:

1. **Gradient sweep** — every entry in the op registry is gradient-checked
   through its own ``sample``; registering an op without a sample (or with
   a wrong backward) fails CI by construction.
2. **Bit-identity** — a fixed-seed TS3Net forecasting fit reproduces the
   loss trajectory recorded on the pre-refactor closure tape, bit for bit.
3. **Graph lifecycle** — activation freeing after backward, the
   ``retain_graph`` escape hatch, hooks, and the ``GraphProfiler``
   (including the freeing-policy memory win on a TF-Block step).
"""

import sys
from pathlib import Path

import numpy as np
import pytest

import repro.spectral.cwt  # noqa: F401 -- registers cwt_amplitude / iwt
from repro.autodiff import (
    GraphProfiler, Tensor, add_op_backward_hook, add_op_forward_hook,
    check_registered_op, format_profile, registered_ops,
)
from repro.core.tf_block import TFBlock

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
from lint_ops import find_violations  # noqa: E402

OP_NAMES = sorted(registered_ops())


# ---------------------------------------------------------------------------
# 1. Registry-wide gradient sweep
# ---------------------------------------------------------------------------

class TestRegistrySweep:
    def test_registry_covers_the_substrate(self):
        expected = {
            "add", "sub", "mul", "div", "neg", "pow", "matmul", "reshape",
            "transpose", "getitem", "squeeze", "unsqueeze", "sum", "mean",
            "max", "exp", "log", "sqrt", "abs", "tanh", "sin", "cos", "clip",
            "concat", "stack", "pad", "where", "relu", "leaky_relu", "gelu",
            "sigmoid", "softmax", "dropout", "conv2d", "max_pool2d",
            "log_softmax", "cwt_amplitude", "iwt",
        }
        assert expected <= set(OP_NAMES)

    def test_every_op_has_a_sample(self):
        missing = [n for n, spec in registered_ops().items()
                   if spec.sample is None]
        assert not missing, f"ops without grad-check samples: {missing}"

    @pytest.mark.parametrize("name", OP_NAMES)
    def test_grad_check(self, name):
        check_registered_op(name, np.random.default_rng(0))


# ---------------------------------------------------------------------------
# 2. Bit-identity with the pre-refactor closure tape
# ---------------------------------------------------------------------------

class TestBitIdentity:
    # Recorded on the closure-based tape immediately before the IR refactor
    # (same seed/recipe); repr-exact floats, not approximations.
    GOLDEN_TRAIN = [1.2476584778602362, 1.119118254141464, 1.0221905211103794]
    GOLDEN_VAL = [1.905923943047305, 1.8018306557895618, 1.7543303957001748]
    GOLDEN_MSE = 0.7023576225695288
    GOLDEN_MAE = 0.7083627841471343

    def test_ts3net_fit_loss_trajectory(self):
        from repro.baselines.registry import build_model
        from repro.data.dataset import load_dataset
        from repro.tasks import ForecastTask, TrainConfig, run_forecast
        from repro.utils import set_seed

        set_seed(0)
        split = load_dataset("ETTh1", n_steps=400, seed=0)
        model = build_model("TS3Net", seq_len=32, pred_len=8,
                            c_in=split.train.shape[1], preset="tiny")
        task = ForecastTask(seq_len=32, pred_len=8, batch_size=8,
                            max_train_batches=4, max_eval_batches=2)
        result = run_forecast(model, split, task, TrainConfig(epochs=3, lr=2e-3))
        assert result.train_losses == self.GOLDEN_TRAIN
        assert result.val_losses == self.GOLDEN_VAL
        assert result.mse == self.GOLDEN_MSE
        assert result.mae == self.GOLDEN_MAE


# ---------------------------------------------------------------------------
# 3. Node lifecycle: freeing, retain_graph, hooks, profiler
# ---------------------------------------------------------------------------

def _small_graph():
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((4, 4)), requires_grad=True)
    y = Tensor(rng.standard_normal((4, 4)), requires_grad=True)
    out = ((x @ y).tanh() * x).sum()
    return x, y, out


class TestNodeLifecycle:
    def test_backward_frees_saved_activations(self):
        x, y, out = _small_graph()
        node = out._node
        out.backward()
        assert node.freed
        assert node.saved == ()
        assert node.parents == ()
        assert node.saved_bytes == 0

    def test_second_backward_raises_after_free(self):
        x, y, out = _small_graph()
        out.backward()
        with pytest.raises(RuntimeError, match="retain_graph"):
            out.backward()

    def test_retain_graph_allows_second_backward(self):
        x, y, out = _small_graph()
        out.backward(retain_graph=True)
        first = x.grad.copy()
        out.backward(retain_graph=True)
        # x takes two sink contributions per pass, so the second pass adds
        # them sequentially — equal to 2*first only up to association order.
        np.testing.assert_allclose(x.grad, 2.0 * first, rtol=1e-14)

    def test_gradients_match_closure_semantics(self):
        # Shared subexpression: b is consumed by two downstream ops, so its
        # gradient buffer takes two contributions (the in-place accumulation
        # path) before flowing back to a.
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = a * a
        out = (b.exp() + b * 2.0).sum()
        out.backward()
        expected = (np.exp(a.data ** 2) * 2 * a.data) + 4.0 * a.data
        np.testing.assert_allclose(a.grad, expected, rtol=1e-12)

    def test_op_hooks_fire_and_remove(self):
        fwd, bwd = [], []
        h1 = add_op_forward_hook(lambda name, s, b: fwd.append((name, b)))
        h2 = add_op_backward_hook(lambda name, s, b: bwd.append((name, b)))
        try:
            x = Tensor(np.ones((2, 2)), requires_grad=True)
            (x * x).sum().backward()
        finally:
            h1.remove()
            h2.remove()
        assert [name for name, _ in fwd] == ["mul", "sum"]
        assert sorted(name for name, _ in bwd) == ["mul", "sum"]
        # x*x saves the same 2x2 float64 buffer twice; the byte accounting
        # dedups per node, so created == freed == 32 bytes, not 64.
        assert dict(fwd)["mul"] == 32
        assert dict(bwd)["mul"] == 32
        before = len(fwd)
        (Tensor(np.ones(2), requires_grad=True) * 2).sum().backward()
        assert len(fwd) == before  # removed hooks stay silent


class TestGraphProfiler:
    def _tf_block_step(self, block, x, retain_graph):
        block.zero_grad()
        x.zero_grad()
        block(x).sum().backward(retain_graph=retain_graph)

    @pytest.fixture(scope="class")
    def block_and_input(self):
        rng = np.random.default_rng(0)
        block = TFBlock(seq_len=32, d_model=8, num_scales=6, num_branches=2,
                        d_ff=16)
        x = Tensor(rng.standard_normal((4, 32, 8)), requires_grad=True)
        return block, x

    def test_profile_lists_per_op_time_and_saved_bytes(self, block_and_input):
        block, x = block_and_input
        profiler = GraphProfiler().attach(block)
        with profiler:
            self._tf_block_step(block, x, retain_graph=False)
        profiler.detach()
        summary = profiler.summary()
        for op in ("matmul", "conv2d", "cwt_amplitude", "gelu"):
            assert op in summary["ops"], f"{op} missing from profile"
            stats = summary["ops"][op]
            assert stats["calls"] >= 1
            assert stats["forward_s"] >= 0.0
            assert stats["backward_s"] >= 0.0
        assert summary["ops"]["matmul"]["saved_bytes"] > 0
        assert summary["peak_saved_bytes"] > 0
        # The default policy freed every node: nothing stays retained.
        assert summary["live_saved_bytes"] == 0
        table = format_profile(summary)
        assert "matmul" in table and "peak" in table
        # attach() collected per-module forward timings through named_modules.
        assert any("TFBranch" in label for label in summary["modules"])

    def test_freeing_reduces_peak_vs_retain_graph(self, block_and_input):
        block, x = block_and_input
        # Two steps per policy: with freeing, step 1's activations are gone
        # before step 2 builds; with retain_graph the graphs pile up.
        freeing = GraphProfiler()
        with freeing:
            for _ in range(2):
                self._tf_block_step(block, x, retain_graph=False)

        retaining = GraphProfiler()
        kept = []
        with retaining:
            for _ in range(2):
                block.zero_grad()
                x.zero_grad()
                out = block(x).sum()
                kept.append(out)  # hold the graphs alive, as retain use would
                out.backward(retain_graph=True)

        assert freeing.live_saved_bytes == 0
        assert retaining.live_saved_bytes > 0
        assert freeing.peak_saved_bytes < retaining.peak_saved_bytes
        # Steady-state peak with freeing is ~one step's activations; the
        # retaining run holds both.
        assert freeing.peak_saved_bytes <= 0.75 * retaining.peak_saved_bytes


class TestTrainerProfileWiring:
    def test_fit_records_profile_on_result(self):
        from repro.baselines.registry import build_model
        from repro.data.dataset import load_dataset
        from repro.tasks import ForecastTask, TrainConfig, run_forecast
        from repro.utils import set_seed

        set_seed(0)
        split = load_dataset("ETTh1", n_steps=300, seed=0)
        model = build_model("TS3Net", seq_len=32, pred_len=8,
                            c_in=split.train.shape[1], preset="tiny")
        task = ForecastTask(seq_len=32, pred_len=8, batch_size=8,
                            max_train_batches=2, max_eval_batches=1)
        result = run_forecast(model, split, task,
                              TrainConfig(epochs=1, lr=2e-3, profile=True))
        assert result.profile is not None
        assert "matmul" in result.profile["ops"]
        assert result.profile["peak_saved_bytes"] > 0
        assert result.profile["modules"]  # named_modules hooks collected
        assert "matmul" in format_profile(result.profile)

    def test_fit_without_profile_flag_records_nothing(self):
        from repro.tasks import TrainConfig
        assert TrainConfig().profile is False


# ---------------------------------------------------------------------------
# Static guard: registry is the single door into the tape
# ---------------------------------------------------------------------------

class TestLintOps:
    def test_no_tape_construction_outside_autodiff(self):
        violations = find_violations()
        assert not violations, "\n".join(
            f"{p}:{n}: {reason}: {line}" for p, n, reason, line in violations)
