"""Tests for the experiment-grid engine: determinism across worker counts,
content-addressed result caching, the shared dataset cache, and the
trainer's timing capture."""

import json
import os

import numpy as np
import pytest

from repro.data.cache import DatasetCache
from repro.data.dataset import DataLoader, ForecastWindows, ImputationWindows
from repro.experiments.engine import (
    CellSpec, cell_key, execute_cell, forecast_cell, imputation_cell,
    run_grid,
)
from repro.experiments.runner import run_forecast_cell
from repro.experiments.store import ResultStore, code_fingerprint


def micro_grid(models=("DLinear", "LightTS"), datasets=("ETTh1", "ETTh2")):
    return [forecast_cell(m, d, 8, scale="micro")
            for m in models for d in datasets]


class TestCellKeys:
    def test_key_stable(self):
        spec = forecast_cell("TS3Net", "ETTh1", 12)
        assert cell_key(spec) == cell_key(forecast_cell("TS3Net", "ETTh1", 12))

    def test_key_depends_on_each_field(self):
        base = forecast_cell("TS3Net", "ETTh1", 12, scale="tiny", seed=0)
        variants = [
            forecast_cell("DLinear", "ETTh1", 12),
            forecast_cell("TS3Net", "ETTh2", 12),
            forecast_cell("TS3Net", "ETTh1", 24),
            forecast_cell("TS3Net", "ETTh1", 12, scale="micro"),
            forecast_cell("TS3Net", "ETTh1", 12, seed=1),
            forecast_cell("TS3Net", "ETTh1", 12, overrides={"num_scales": 3}),
            imputation_cell("TS3Net", "ETTh1", 0.25),
        ]
        keys = {cell_key(s) for s in variants}
        assert cell_key(base) not in keys
        assert len(keys) == len(variants)

    def test_noise_cells_never_collide_with_clean_cells(self):
        # Table VIII (noisy) vs Table IV (clean) of the same configuration.
        clean = forecast_cell("TS3Net", "ETTh1", 12)
        noisy = forecast_cell("TS3Net", "ETTh1", 12, noise_rho=0.05)
        assert cell_key(clean) != cell_key(noisy)
        assert cell_key(noisy) != cell_key(
            forecast_cell("TS3Net", "ETTh1", 12, noise_rho=0.10))

    def test_code_fingerprint_stable_in_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestResultStore:
    def test_roundtrip_and_len(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("abc", {"mse": 1.0, "epoch_seconds": [0.1, 0.2]})
        assert "abc" in store
        assert store.get("abc")["epoch_seconds"] == [0.1, 0.2]
        assert len(store) == 1

    def test_missing_and_corrupt_are_misses(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get("nope") is None
        (tmp_path / "bad.json").write_text("{not json")
        assert store.get("bad") is None

    def test_clear(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("a", {"mse": 1.0})
        store.put("b", {"mse": 2.0})
        assert store.clear() == 2
        assert len(store) == 0


class TestDatasetCache:
    def test_memory_bound_is_enforced(self):
        cache = DatasetCache(max_items=2)
        for seed in range(4):
            cache.load("ETTh1", n_steps=400, seed=seed)
        assert cache.cache_info()["in_memory"] == 2

    def test_disk_roundtrip_identical(self, tmp_path):
        cache = DatasetCache(cache_dir=str(tmp_path), max_items=2)
        a = cache.load("ETTh2", n_steps=400, seed=3)
        cache.clear()                       # drop memory, keep .npz files
        b = cache.load("ETTh2", n_steps=400, seed=3)
        assert cache.hits == 1
        np.testing.assert_array_equal(a.train, b.train)
        np.testing.assert_array_equal(a.test, b.test)
        np.testing.assert_array_equal(a.scaler.mean, b.scaler.mean)

    def test_clear_disk(self, tmp_path):
        cache = DatasetCache(cache_dir=str(tmp_path))
        cache.load("ETTh1", n_steps=400, seed=0)
        assert any(f.endswith(".npz") for f in os.listdir(tmp_path))
        cache.clear(disk=True)
        assert not any(f.endswith(".npz") for f in os.listdir(tmp_path))


class TestGridEngine:
    def test_results_align_with_specs(self):
        specs = micro_grid()
        run = run_grid(specs, workers=1)
        assert run.cells == len(specs)
        for spec, metrics in zip(specs, run.results):
            direct = execute_cell(spec)
            assert metrics["mse"] == pytest.approx(direct["mse"], rel=1e-12)

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError):
            execute_cell(CellSpec(task="nonsense", model="DLinear",
                                  dataset="ETTh1", setting=8))

    def test_parallel_matches_serial_tiny_grid(self):
        # The ISSUE contract: 2 models x 2 datasets x 2 horizons at
        # scale="tiny", workers=1 vs workers=4, identical {mse, mae}.
        specs = [forecast_cell(m, d, h, scale="tiny")
                 for m in ("DLinear", "LightTS")
                 for d in ("ETTh1", "ETTh2")
                 for h in (12, 24)]
        serial = run_grid(specs, workers=1)
        parallel = run_grid(specs, workers=4)
        assert serial.executed == parallel.executed == len(specs)
        for s, p in zip(serial.results, parallel.results):
            assert s["mse"] == p["mse"]
            assert s["mae"] == p["mae"]

    def test_second_run_executes_zero_cells(self, tmp_path):
        specs = micro_grid()
        cold = run_grid(specs, workers=1, cache_dir=str(tmp_path))
        assert cold.executed == len(specs) and cold.cache_hits == 0
        warm = run_grid(specs, workers=1, cache_dir=str(tmp_path))
        assert warm.executed == 0
        assert warm.cache_hits == len(specs)
        for c, w in zip(cold.results, warm.results):
            assert c["mse"] == w["mse"]
            assert w["cached"] is True

    def test_invalidation_reexecutes_exactly_changed_cells(self, tmp_path):
        specs = micro_grid()
        run_grid(specs, workers=1, cache_dir=str(tmp_path))
        # Change the config of the last two cells only (different seed).
        changed = specs[:2] + [
            CellSpec(task=s.task, model=s.model, dataset=s.dataset,
                     setting=s.setting, scale=s.scale, seed=s.seed + 1)
            for s in specs[2:]]
        rerun = run_grid(changed, workers=1, cache_dir=str(tmp_path))
        assert rerun.cache_hits == 2
        assert rerun.executed == 2
        assert [r["cached"] for r in rerun.results] == [True, True, False, False]

    def test_parallel_with_cache_matches_and_hits(self, tmp_path):
        specs = micro_grid()
        cold = run_grid(specs, workers=2, cache_dir=str(tmp_path))
        warm = run_grid(specs, workers=2, cache_dir=str(tmp_path))
        assert warm.executed == 0 and warm.cache_hits == len(specs)
        for c, w in zip(cold.results, warm.results):
            assert c["mse"] == w["mse"]

    def test_cache_store_is_json_on_disk(self, tmp_path):
        run_grid(micro_grid()[:1], workers=1, cache_dir=str(tmp_path))
        results_dir = tmp_path / "results"
        entries = list(results_dir.glob("*.json"))
        assert len(entries) == 1
        payload = json.loads(entries[0].read_text())
        assert np.isfinite(payload["mse"])
        assert "cached" not in payload      # runtime flag never persisted

    def test_timing_summary(self, tmp_path):
        run = run_grid(micro_grid(), workers=1, cache_dir=str(tmp_path))
        summary = run.timing_summary()
        assert summary["executed"] == 4
        assert summary["cell_seconds_total"] > 0
        assert summary["cell_seconds_max"] <= summary["cell_seconds_total"]


class TestTimingCapture:
    def test_cell_reports_phase_timings(self):
        out = run_forecast_cell("DLinear", "ETTh1", 8, scale="micro")
        assert len(out["epoch_seconds"]) == out["epochs"]
        assert out["train_seconds"] > 0
        assert out["eval_seconds"] > 0
        # train + eval is a decomposition of (most of) the total wall time;
        # the final test evaluation happens after fit, so it can exceed
        # `seconds` slightly — just check the pieces are sane.
        assert out["train_seconds"] < out["seconds"] + out["eval_seconds"]


class TestVectorisedLoader:
    def test_forecast_gather_matches_item_path(self):
        data = np.arange(120, dtype=float).reshape(40, 3)
        fw = ForecastWindows(data, seq_len=6, pred_len=2)
        idx = np.array([0, 5, 17])
        x_fast, y_fast = fw.gather(idx)
        for k, i in enumerate(idx):
            x_ref, y_ref = fw[i]
            np.testing.assert_array_equal(x_fast[k], x_ref)
            np.testing.assert_array_equal(y_fast[k], y_ref)

    def test_imputation_gather_matches_item_path(self):
        data = np.arange(60, dtype=float).reshape(30, 2)
        iw = ImputationWindows(data, seq_len=7)
        idx = np.array([2, 11])
        fast = iw.gather(idx)
        for k, i in enumerate(idx):
            np.testing.assert_array_equal(fast[k], iw[i])

    def test_gather_respects_stride(self):
        data = np.arange(50, dtype=float)[:, None]
        fw = ForecastWindows(data, seq_len=4, pred_len=2, stride=3)
        x, y = fw.gather(np.array([1, 2]))
        np.testing.assert_array_equal(x[0][:, 0], np.arange(3, 7))
        np.testing.assert_array_equal(y[1][:, 0], np.arange(10, 12))

    def test_reused_buffers_do_not_change_values(self):
        data = np.arange(300, dtype=float).reshape(100, 3)
        fw = ForecastWindows(data, seq_len=8, pred_len=4)
        plain = [(x.copy(), y.copy())
                 for x, y in DataLoader(fw, batch_size=16)]
        reused = DataLoader(fw, batch_size=16, reuse_buffers=True)
        for (x_ref, y_ref), (x, y) in zip(plain, reused):
            np.testing.assert_array_equal(x, x_ref)
            np.testing.assert_array_equal(y, y_ref)

    def test_reuse_buffer_handles_short_last_batch(self):
        data = np.arange(60, dtype=float)[:, None]
        fw = ForecastWindows(data, seq_len=5, pred_len=1)
        sizes = [x.shape[0]
                 for x, _ in DataLoader(fw, batch_size=16, reuse_buffers=True)]
        assert sizes == [16, 16, 16, 7]
