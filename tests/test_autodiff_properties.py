"""Property-based tests (hypothesis) for autodiff invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff import Tensor, concat, relu, softmax, unbroadcast

_floats = st.floats(min_value=-10, max_value=10, allow_nan=False,
                    allow_infinity=False, width=64)


def small_arrays(max_dims=3, max_side=5):
    return arrays(np.float64,
                  array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
                  elements=_floats)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_mean_gradient_is_uniform(x):
    t = Tensor(x, requires_grad=True)
    t.mean().backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, 1.0 / x.size))


@settings(max_examples=30, deadline=None)
@given(small_arrays(), st.floats(min_value=-3, max_value=3,
                                 allow_nan=False, width=64))
def test_addition_gradient_independent_of_constant(x, c):
    t = Tensor(x, requires_grad=True)
    (t + c).sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=30, deadline=None)
@given(small_arrays(), st.floats(min_value=-4, max_value=4,
                                 allow_nan=False, width=64))
def test_scaling_scales_gradient(x, c):
    t = Tensor(x, requires_grad=True)
    (t * c).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, c))


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2))
def test_relu_output_nonnegative_and_idempotent(x):
    out = relu(Tensor(x))
    assert (out.data >= 0).all()
    np.testing.assert_allclose(relu(out).data, out.data)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, array_shapes(min_dims=2, max_dims=2, min_side=2,
                                       max_side=6), elements=_floats))
def test_softmax_is_distribution(x):
    out = softmax(Tensor(x), axis=-1).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[0]),
                               rtol=1e-9)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2), small_arrays(max_dims=2))
def test_concat_preserves_content(a, b):
    if a.ndim != b.ndim or a.shape[1:] != b.shape[1:]:
        a = a.reshape(-1)
        b = b.reshape(-1)
    out = concat([Tensor(a), Tensor(b)], axis=0)
    np.testing.assert_allclose(out.data, np.concatenate([a, b], axis=0))


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=3))
def test_unbroadcast_roundtrip(x):
    # Broadcasting to a bigger shape then unbroadcasting a ones-gradient
    # yields the multiplicity of each element.
    big = np.broadcast_to(x, (4,) + x.shape)
    grad = unbroadcast(np.ones_like(big), x.shape)
    np.testing.assert_allclose(grad, np.full_like(x, 4.0))


@settings(max_examples=20, deadline=None)
@given(small_arrays(max_dims=2))
def test_double_backward_chain_linearity(x):
    # d/dx of (2x + 3x) == 5 everywhere, regardless of x.
    t = Tensor(x, requires_grad=True)
    (2.0 * t + 3.0 * t).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, 5.0))


@settings(max_examples=20, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(2, 5), st.integers(2, 5)),
              elements=_floats))
def test_transpose_involution(x):
    t = Tensor(x, requires_grad=True)
    out = t.transpose(1, 0).transpose(1, 0)
    np.testing.assert_allclose(out.data, x)
    out.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))
