"""Tests for the pre-fork serving cluster (repro.serving.cluster).

Covers the spool's copy-on-write weight blobs, consistent-hash routing,
exposition merging, worker supervision (crash -> respawn), cluster-wide
hot reload atomicity, drain semantics, adaptive 503 Retry-After, and
cross-process trace propagation.  The end-to-end tests boot real worker
processes (fork) against ephemeral ports.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.baselines import build_model
from repro.nn import read_checkpoint, save_checkpoint
from repro.serving import (
    MicroBatcher, ModelRegistry, ServingConfig, single_forward,
)
from repro.serving.cluster import (
    BlobFormatError, ClusterConfig, ExpositionError, HashRing,
    NoWorkerAvailable, Router, SharedWeights, WeightStore, build_cluster,
    merge_expositions, parse_exposition, stable_hash,
)
from repro.serving.metrics import ServerMetrics
from repro.utils import set_seed

SEQ, PRED, CIN = 32, 8, 3


def make_ckpt(path, model_name="DLinear", task="forecast", seed=0):
    set_seed(seed)
    model = build_model(model_name, seq_len=SEQ, pred_len=PRED, c_in=CIN,
                        task=task, preset="tiny")
    meta = {"model": model_name, "dataset": "unit", "task": task,
            "seq_len": SEQ, "pred_len": PRED, "c_in": CIN, "preset": "tiny"}
    save_checkpoint(model, str(path), metadata=meta)
    return str(path)


def periodic_window(period, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(SEQ)[:, None]
    return (np.sin(2 * np.pi * t / period) * 3.0
            + 0.01 * rng.standard_normal((SEQ, CIN)))


# ----------------------------------------------------------------------
class TestSharedWeights:
    def test_publish_attach_roundtrip_bitwise(self, tmp_path):
        ckpt = make_ckpt(tmp_path / "m.npz")
        store = WeightStore(str(tmp_path / "spool"))
        version, blob = store.publish("m", ckpt)
        assert version == 1 and store.current_version("m") == 1
        assert store.names() == ["m"]

        state, meta = read_checkpoint(ckpt)
        shared = store.attach("m")
        assert shared.version == 1
        assert shared.meta["model"] == "DLinear"
        assert set(shared.arrays) == set(state)
        for name, arr in state.items():
            assert shared.arrays[name].dtype == arr.dtype
            np.testing.assert_array_equal(shared.arrays[name], arr)

    def test_copy_on_write_isolation(self, tmp_path):
        ckpt = make_ckpt(tmp_path / "m.npz")
        store = WeightStore(str(tmp_path / "spool"))
        store.publish("m", ckpt)
        a, b = store.attach("m"), store.attach("m")
        name = next(iter(a.arrays))
        before = b.arrays[name].copy()
        # a stray in-place write in one attachment must not leak into a
        # sibling (private COW page) nor into the blob on disk
        a.arrays[name][...] = 123.0
        np.testing.assert_array_equal(b.arrays[name], before)
        np.testing.assert_array_equal(store.attach("m").arrays[name], before)

    def test_attached_forward_matches_checkpoint_load(self, tmp_path):
        ckpt = make_ckpt(tmp_path / "m.npz")
        store = WeightStore(str(tmp_path / "spool"))
        version, _ = store.publish("m", ckpt)

        plain = ModelRegistry()
        plain.load("m", ckpt)
        attached = ModelRegistry()
        entry = attached.load_attached("m", store.attach("m"),
                                       version=version)
        assert entry.version == version
        window = periodic_window(6)
        assert repr(single_forward(entry, window)) == \
            repr(single_forward(plain.get("m"), window))

    def test_version_bumps_and_pointer_swap(self, tmp_path):
        store = WeightStore(str(tmp_path / "spool"))
        store.publish("m", make_ckpt(tmp_path / "a.npz", seed=0))
        version, _ = store.publish("m", make_ckpt(tmp_path / "b.npz", seed=9))
        assert version == 2 and store.current_version("m") == 2
        # older versions stay attachable for in-flight consumers
        assert store.attach("m", 1).version == 1

    def test_bad_blob_rejected(self, tmp_path):
        bad = tmp_path / "bad.blob"
        bad.write_bytes(b"definitely not a blob header")
        with pytest.raises(BlobFormatError, match="magic"):
            SharedWeights(str(bad))

    def test_registry_version_counter_stays_monotonic(self, tmp_path):
        ckpt = make_ckpt(tmp_path / "m.npz")
        store = WeightStore(str(tmp_path / "spool"))
        store.publish("m", ckpt)
        store.publish("m", ckpt)
        registry = ModelRegistry()
        registry.load_attached("m", store.attach("m"))   # version 2
        entry = registry.reload("m", ckpt)               # plain reload
        assert entry.version == 3


# ----------------------------------------------------------------------
class TestRouting:
    def test_stable_hash_is_process_independent(self):
        # sha256-derived: the same literal must hash identically in every
        # process/run (unlike hash() under PYTHONHASHSEED)
        assert stable_hash("dlinear") == stable_hash("dlinear")
        assert stable_hash("dlinear") != stable_hash("ts3net")
        assert 0 <= stable_hash("x") < 2 ** 64

    def test_preference_is_deterministic_and_distinct(self):
        ring = HashRing([0, 1, 2, 3])
        order = ring.preference("dlinear")
        assert sorted(order) == [0, 1, 2, 3]
        assert order == HashRing([0, 1, 2, 3]).preference("dlinear")

    def test_lookup_spills_over_dead_workers_deterministically(self):
        ring = HashRing([0, 1, 2, 3])
        order = ring.preference("m")
        home = order[0]
        assert ring.lookup("m") == home
        assert ring.lookup("m", alive=[w for w in order if w != home]) \
            == order[1]
        with pytest.raises(NoWorkerAvailable):
            ring.lookup("m", alive=[])

    def test_route_rotates_warm_set_over_all_alive(self):
        router = Router(HashRing([0, 1, 2, 3]), spread=0)
        first_choices = {router.route("m", [0, 1, 2, 3])[0]
                         for _ in range(16)}
        assert first_choices == {0, 1, 2, 3}

    def test_route_with_spread_keeps_warm_set_then_spills(self):
        ring = HashRing([0, 1, 2, 3])
        router = Router(ring, spread=2)
        warm = ring.preference("m")[:2]
        for _ in range(8):
            order = router.route("m", [0, 1, 2, 3])
            assert set(order[:2]) == set(warm)
            assert order[2:] == ring.preference("m")[2:]

    def test_route_raises_when_everyone_is_dead(self):
        router = Router(HashRing([0, 1]))
        with pytest.raises(NoWorkerAvailable):
            router.route("m", [])


# ----------------------------------------------------------------------
class TestExpositionMerge:
    def _render(self, codes):
        metrics = ServerMetrics()
        for code, lat in codes:
            metrics.observe_request(code, lat)
        metrics.observe_batch(2)
        metrics.set_queue_depth_fn(lambda: 1)
        return metrics.render()

    def test_merge_sums_counters_and_maxes_quantiles(self):
        a = self._render([(200, 0.01), (503, None)])
        b = self._render([(200, 0.30)])
        merged = parse_exposition(merge_expositions([a, b]))
        by_series = {(s, labels): value
                     for block in merged
                     for s, labels, value, _ in block["samples"]}
        assert by_series[("repro_requests_total",
                          (("code", "200"), ("class", "2xx")))] == 2
        assert by_series[("repro_requests_total",
                          (("code", "503"), ("class", "5xx")))] == 1
        assert by_series[("repro_queue_depth", ())] == 2
        assert by_series[("repro_batch_size_count", ())] == 2
        # quantiles take the worst worker, not a (meaningless) sum
        assert by_series[("repro_request_latency_seconds",
                          (("quantile", "0.99"),))] == pytest.approx(0.30)

    def test_merge_is_byte_stable_golden(self):
        """Identical worker registries merge into a predictable text."""
        metrics = ServerMetrics(
            registry=__import__("repro.obs.metrics",
                                fromlist=["MetricsRegistry"]).MetricsRegistry())
        metrics.observe_request(200, 0.01)
        metrics.set_queue_depth_fn(lambda: 0)
        text = metrics.render()
        merged_once = merge_expositions([text, text])
        assert merged_once == merge_expositions([text, text])
        assert 'repro_requests_total{code="200",class="2xx"} 2' in merged_once
        assert merged_once.endswith("\n")
        # int-rendered sources stay int-rendered after summation
        assert "repro_requests_total{" in merged_once
        assert " 2.000000" not in merged_once.split("quantile")[0]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ExpositionError):
            parse_exposition("repro_x{le=} 1")
        with pytest.raises(ExpositionError):
            parse_exposition("# HELP m h\n# TYPE m counter\nm not_a_number")
        with pytest.raises(ExpositionError):
            parse_exposition("orphan_sample 1")


# ----------------------------------------------------------------------
class _Client:
    def __init__(self, host, port, timeout=30):
        self.conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(self, method, path, payload=None, raw=None):
        body = raw if raw is not None else (
            json.dumps(payload).encode() if payload is not None else None)
        self.conn.request(method, path, body,
                          {"Content-Type": "application/json"})
        resp = self.conn.getresponse()
        data = resp.read()
        try:
            parsed = json.loads(data)
        except (ValueError, UnicodeDecodeError):
            parsed = data.decode("utf-8", "replace")
        return resp.status, parsed, dict(resp.getheaders())


def start_cluster(tmp_path, checkpoints, workers=2, **cfg_kwargs):
    serving = cfg_kwargs.pop("serving", None) or ServingConfig(
        port=0, max_batch_size=4, max_wait_ms=1.0, queue_size=64,
        default_timeout_ms=10000.0)
    config = ClusterConfig(workers=workers, port=0,
                           spool_dir=str(tmp_path / "spool"),
                           serving=serving, **cfg_kwargs)
    server = build_cluster(config, checkpoints)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    return server, thread


def stop_cluster(server, thread):
    server.shutdown()
    thread.join(timeout=10)
    server.drain()


@pytest.fixture
def cluster(tmp_path):
    ckpt = make_ckpt(tmp_path / "dlinear.npz")
    server, thread = start_cluster(tmp_path, {"dlinear": ckpt})
    yield server, ckpt
    stop_cluster(server, thread)


class TestClusterEndToEnd:
    def test_proxied_forecast_bitwise_matches_single_forward(self, cluster):
        server, ckpt = cluster
        host, port = server.server_address[:2]
        reference = ModelRegistry()
        entry = reference.load("dlinear", ckpt)

        client = _Client(host, port)
        for seed in range(6):
            window = periodic_window(4 + seed, seed=seed)
            status, body, headers = client.request(
                "POST", "/v1/forecast", {"model": "dlinear",
                                         "window": window.tolist()})
            assert status == 200
            got = np.asarray(body["prediction"], dtype=np.float64)
            # JSON float64 round-trips exactly and the front end relays
            # worker bytes verbatim: bit-identity survives the extra hop
            assert repr(got) == repr(single_forward(entry, window))

    def test_client_batch_and_models_proxy(self, cluster):
        server, ckpt = cluster
        host, port = server.server_address[:2]
        client = _Client(host, port)
        windows = [periodic_window(4, seed=i).tolist() for i in range(5)]
        status, body, _ = client.request(
            "POST", "/v1/forecast", {"windows": windows})
        assert status == 200 and len(body["predictions"]) == 5

        status, body, _ = client.request("GET", "/v1/models")
        assert status == 200
        assert body["models"][0]["name"] == "dlinear"
        assert body["models"][0]["checkpoint"].startswith("shm://")

        status, body, _ = client.request("GET", "/healthz")
        assert status == 200 and body["alive"] == [0, 1]

    def test_aggregated_metrics_scrape(self, cluster):
        server, _ = cluster
        host, port = server.server_address[:2]
        client = _Client(host, port)
        for i in range(4):
            client.request("POST", "/v1/forecast",
                           {"window": periodic_window(5, seed=i).tolist()})
        status, text, headers = client.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_cluster_workers 2" in text
        assert "repro_cluster_workers_alive 2" in text
        # worker-side series, merged across the pool
        assert 'repro_requests_total{code="200",class="2xx"} 4' in text
        assert "repro_batch_size_count" in text
        # the merged section must equal a local merge of the worker
        # side-door scrapes (quiesced: no traffic between the reads)
        worker_texts = []
        for worker_id in server.pool.alive_ids():
            wport = server.pool.endpoint(worker_id)
            wstatus, wtext, _ = _Client(host, wport).request(
                "GET", "/admin/metrics")
            assert wstatus == 200
            worker_texts.append(wtext)
        assert text.endswith(merge_expositions(worker_texts))

    def test_admin_scrape_is_uncounted(self, cluster):
        server, _ = cluster
        host, _ = server.server_address[:2]
        wport = server.pool.endpoint(server.pool.alive_ids()[0])
        client = _Client(host, wport)
        _, first, _ = client.request("GET", "/admin/metrics")
        _, second, _ = client.request("GET", "/admin/metrics")
        assert first == second          # scraping does not perturb


class TestSupervision:
    def test_crash_respawn_resumes_correct_answers(self, tmp_path):
        ckpt = make_ckpt(tmp_path / "dlinear.npz")
        server, thread = start_cluster(tmp_path, {"dlinear": ckpt},
                                       supervise_interval_s=0.05)
        try:
            host, port = server.server_address[:2]
            victim = server.pool.alive_ids()[0]
            old_pid = server.pool.handles[victim].pid
            wport = server.pool.endpoint(victim)
            crasher = http.client.HTTPConnection(host, wport, timeout=5)
            with pytest.raises((http.client.HTTPException, OSError)):
                crasher.request("POST", "/admin/crash", b"{}")
                crasher.getresponse().read()

            deadline = time.monotonic() + 30
            handle = server.pool.handles[victim]
            while time.monotonic() < deadline:
                if handle.alive and handle.pid != old_pid:
                    break
                time.sleep(0.05)
            assert handle.alive and handle.pid != old_pid, \
                "supervisor must respawn the crashed worker"

            entry = ModelRegistry().load("dlinear", ckpt)
            window = periodic_window(7)
            status, body, _ = _Client(host, port).request(
                "POST", "/v1/forecast", {"window": window.tolist()})
            assert status == 200
            assert repr(np.asarray(body["prediction"])) == \
                repr(single_forward(entry, window))

            _, text, _ = _Client(host, port).request("GET", "/metrics")
            assert f'repro_cluster_worker_restarts_total{{worker="{victim}"}}' \
                in text
        finally:
            stop_cluster(server, thread)

    def test_hot_reload_mid_traffic_never_mixes_versions(self, tmp_path):
        old_ckpt = make_ckpt(tmp_path / "v1.npz", seed=0)
        new_ckpt = make_ckpt(tmp_path / "v2.npz", seed=9)
        server, thread = start_cluster(tmp_path, {"dlinear": old_ckpt})
        try:
            host, port = server.server_address[:2]
            window = periodic_window(8)
            want_old = repr(single_forward(
                ModelRegistry().load("m", old_ckpt), window))
            want_new = repr(single_forward(
                ModelRegistry().load("m", new_ckpt), window))
            assert want_old != want_new

            results, stop = [], threading.Event()

            def hammer():
                client = _Client(host, port)
                while not stop.is_set():
                    status, body, _ = client.request(
                        "POST", "/v1/forecast",
                        {"window": window.tolist()})
                    results.append((status, body))

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for t in threads:
                t.start()
            time.sleep(0.2)
            status, body, _ = _Client(host, port).request(
                "POST", "/admin/reload",
                {"name": "dlinear", "checkpoint": new_ckpt})
            assert status == 200 and body["version"] == 2
            time.sleep(0.2)
            stop.set()
            for t in threads:
                t.join(timeout=10)

            assert results
            seen = set()
            for status, body in results:
                assert status == 200
                seen.add(repr(np.asarray(body["prediction"])))
            # a torn swap (mixed weight versions in one batch) would
            # produce a third repr; atomicity allows exactly old and new
            assert seen <= {want_old, want_new}

            status, body, _ = _Client(host, port).request(
                "POST", "/v1/forecast", {"window": window.tolist()})
            assert status == 200 and body["version"] == 2
            assert repr(np.asarray(body["prediction"])) == want_new
        finally:
            stop_cluster(server, thread)

    def test_drain_completes_in_flight_requests(self, tmp_path):
        ckpt = make_ckpt(tmp_path / "dlinear.npz")
        server, thread = start_cluster(tmp_path, {"dlinear": ckpt})
        host, port = server.server_address[:2]
        windows = [periodic_window(4, seed=i).tolist() for i in range(24)]
        outcomes = []

        def post():
            status, body, _ = _Client(host, port).request(
                "POST", "/v1/forecast", {"windows": windows})
            outcomes.append((status, body))

        posters = [threading.Thread(target=post) for _ in range(4)]
        for t in posters:
            t.start()
        time.sleep(0.05)
        # cluster-wide drain: front end finishes its in-flight proxies,
        # then workers drain their batchers before exiting
        stop_cluster(server, thread)
        for t in posters:
            t.join(timeout=30)
        assert len(outcomes) == 4
        entry = ModelRegistry().load("dlinear", ckpt)
        refs = [repr(single_forward(entry, np.asarray(w))) for w in windows]
        for status, body in outcomes:
            assert status == 200
            got = [repr(np.asarray(p)) for p in body["predictions"]]
            assert got == refs


# ----------------------------------------------------------------------
class TestAdaptiveRetryAfter:
    def test_cold_start_fallback(self, tmp_path):
        registry = ModelRegistry()
        registry.load("m", make_ckpt(tmp_path / "m.npz"))
        batcher = MicroBatcher(registry, start=False)
        assert batcher.drain_rate() == 0.0
        assert batcher.retry_after_s() == 1.0

    def test_estimate_tracks_queue_and_rate(self, tmp_path):
        registry = ModelRegistry()
        registry.load("m", make_ckpt(tmp_path / "m.npz"))
        batcher = MicroBatcher(registry, queue_size=8, start=False)
        now = time.monotonic()
        with batcher._drain_lock:
            batcher._drained.extend([(now - 1.0, 5), (now, 5)])
        for i in range(2):
            batcher.submit("m", periodic_window(4, seed=i))
        # ~10 req/s drain rate, 2 queued + the shed one => ~0.3s
        assert batcher.retry_after_s() == pytest.approx(0.3, rel=0.35)

    def test_clamped_to_bounds(self, tmp_path):
        registry = ModelRegistry()
        registry.load("m", make_ckpt(tmp_path / "m.npz"))
        batcher = MicroBatcher(registry, start=False)
        now = time.monotonic()
        with batcher._drain_lock:
            batcher._drained.extend([(now - 0.001, 10000), (now, 10000)])
        assert batcher.retry_after_s() == 0.05   # huge rate -> floor
        with batcher._drain_lock:
            batcher._drained.clear()
            batcher._drained.extend([(now - 4.0, 1), (now, 1)])
        assert batcher.retry_after_s() <= 5.0    # trickle -> ceiling

    def test_overload_sheds_cleanly_with_retry_after(self, tmp_path):
        ckpt = make_ckpt(tmp_path / "dlinear.npz")
        serving = ServingConfig(port=0, max_batch_size=2, max_wait_ms=5.0,
                                queue_size=4, default_timeout_ms=10000.0)
        server, thread = start_cluster(tmp_path, {"dlinear": ckpt},
                                       serving=serving)
        try:
            host, port = server.server_address[:2]
            window = periodic_window(5).tolist()
            outcomes = []
            lock = threading.Lock()

            def burst():
                client = _Client(host, port)
                for _ in range(6):
                    status, _, headers = client.request(
                        "POST", "/v1/forecast", {"window": window})
                    with lock:
                        outcomes.append((status, headers.get("Retry-After")))

            threads = [threading.Thread(target=burst) for _ in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)

            statuses = {status for status, _ in outcomes}
            assert statuses <= {200, 503}, \
                "overload must shed with 503s, never errors or hangs"
            assert 200 in statuses
            for status, retry_after in outcomes:
                if status == 503:
                    assert retry_after is not None
                    assert 0.05 <= float(retry_after) <= 5.0
        finally:
            stop_cluster(server, thread)


# ----------------------------------------------------------------------
class TestClusterTrace:
    def test_worker_spans_nest_under_frontend_request(self, tmp_path):
        from repro.obs import runtime as obs_runtime
        from repro.obs.events import read_events

        trace_path = str(tmp_path / "cluster.jsonl")
        obs_runtime.configure(path=trace_path)
        ckpt = make_ckpt(tmp_path / "dlinear.npz")
        server, thread = start_cluster(tmp_path, {"dlinear": ckpt},
                                       trace_path=trace_path)
        try:
            host, port = server.server_address[:2]
            status, _, headers = _Client(host, port).request(
                "POST", "/v1/forecast",
                {"window": periodic_window(6).tolist()})
            assert status == 200
            trace_id = headers["X-Trace-Id"]
        finally:
            stop_cluster(server, thread)   # workers flush their sinks
            obs_runtime.shutdown()

        recs = read_events(trace_path)
        ends = [r for r in recs if r["kind"] == "span_end"]
        frontend = [r for r in ends if r["name"] == "http.request"
                    and r["attrs"].get("tier") == "frontend"
                    and r["trace"] == trace_id]
        assert frontend, "front end must record the originating span"
        worker = [r for r in ends if r["name"] == "http.request"
                  and r["attrs"].get("tier") != "frontend"
                  and r["trace"] == trace_id]
        assert worker, "worker must continue the front end's trace"
        assert worker[0]["parent"] == frontend[0]["span"], \
            "the worker span must parent to the front-end span"
        batches = [r for r in ends if r["name"] == "batch.execute"
                   and r["trace"] == trace_id]
        assert batches, "batch.execute must land in the same trace"
        assert trace_id in batches[0]["attrs"]["member_traces"]
        assert worker[0]["span"] in batches[0]["attrs"]["member_spans"]

        starts = [r for r in recs if r["kind"] == "event"
                  and r["name"] == "worker.start"]
        assert len(starts) >= 2, "worker lifecycle events must be traced"
