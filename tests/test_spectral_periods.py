"""Tests for FFT-based period detection (Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral import detect_periods, dominant_period


def sine(period: int, t_len: int = 96, amp: float = 1.0) -> np.ndarray:
    t = np.arange(t_len)
    return amp * np.sin(2 * np.pi * t / period)


class TestDetectPeriods:
    def test_single_period(self):
        periods, _ = detect_periods(sine(24), k=1)
        assert periods[0] == 24

    def test_topk_order_by_energy(self):
        x = sine(24, amp=2.0) + sine(12, amp=0.5)
        periods, weights = detect_periods(x, k=2)
        assert periods[0] == 24
        assert periods[1] == 12
        assert weights[0] > weights[1]

    def test_dc_component_ignored(self):
        periods, _ = detect_periods(sine(16) + 100.0, k=1)
        assert periods[0] == 16

    def test_input_rank_flexibility(self):
        x = sine(12)
        p1, _ = detect_periods(x, k=1)
        p2, _ = detect_periods(x[:, None], k=1)
        p3, _ = detect_periods(x[None, :, None], k=1)
        assert p1[0] == p2[0] == p3[0]

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            detect_periods(np.zeros((2, 2, 2, 2)))

    def test_min_period_filters_fast_frequencies(self):
        x = sine(3, amp=5.0) + sine(24, amp=1.0)
        periods, _ = detect_periods(x, k=1, min_period=8)
        assert periods[0] == 24

    def test_flat_input_falls_back_to_length(self):
        periods, weights = detect_periods(np.zeros(50), k=3)
        assert periods[0] == 50
        assert weights[0] == 1.0

    def test_k_larger_than_spectrum(self):
        periods, _ = detect_periods(sine(8, t_len=16), k=100)
        assert len(periods) >= 1

    def test_batch_averaging(self, rng):
        batch = np.stack([sine(24) + 0.1 * rng.standard_normal(96)
                          for _ in range(4)])[..., None]
        periods, _ = detect_periods(batch, k=1)
        assert periods[0] == 24


class TestDominantPeriod:
    def test_matches_topk_first(self):
        x = sine(24) + 0.3 * sine(8)
        assert dominant_period(x) == detect_periods(x, k=1)[0][0]

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from([6, 8, 12, 16, 24, 32]))
    def test_recovers_planted_period(self, period):
        assert dominant_period(sine(period)) == period

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=20, max_value=200))
    def test_always_within_bounds(self, t_len):
        rng = np.random.default_rng(t_len)
        x = rng.standard_normal(t_len)
        p = dominant_period(x)
        assert 2 <= p <= t_len
