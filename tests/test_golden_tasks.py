"""Golden-trajectory guard for the task layer.

Fixed-seed forecast and imputation runs must stay *bitwise* identical —
every train/val loss and the final test MSE/MAE compare equal as exact
float64 values — in eager and ``--compiled`` mode.  Any refactor of the
task registry, trainer, loaders, or compiler that perturbs a single bit
of these trajectories fails here first, with an exact diff.
"""

import pytest

from repro.baselines import build_model
from repro.data import load_dataset
from repro.tasks import (
    ForecastTask, ImputationTask, TrainConfig, run_forecast, run_imputation,
)
from repro.utils import set_seed


@pytest.fixture(scope="module")
def split():
    return load_dataset("ETTh1", n_steps=600, seed=0)


def _config(compiled):
    return TrainConfig(epochs=3, lr=1e-2, compiled=compiled)


def _assert_trajectory(result, train, val, mse, mae):
    # Exact float64 equality: literals round-trip bit-exactly, so these
    # assertions are bitwise, not approximate.
    assert result.train_losses == train
    assert result.val_losses == val
    assert result.mse == mse
    assert result.mae == mae


@pytest.mark.parametrize("compiled", [False, True],
                         ids=["eager", "compiled"])
class TestDLinearGoldens:
    def test_forecast_trajectory(self, split, compiled):
        set_seed(0)
        model = build_model("DLinear", seq_len=24, pred_len=8, c_in=7,
                            task="forecast")
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=4, max_eval_batches=2, seed=0)
        result = run_forecast(model, split, task, _config(compiled))
        _assert_trajectory(
            result,
            train=[0.8768350916355978, 0.5434552004279922,
                   0.511051574119264],
            val=[0.727731879219409, 0.5817072977103077,
                 0.5210758946150658],
            mse=0.35833348159127054, mae=0.47357133762551207)

    def test_imputation_trajectory(self, split, compiled):
        set_seed(0)
        model = build_model("DLinear", seq_len=24, pred_len=24, c_in=7,
                            task="imputation")
        task = ImputationTask(seq_len=24, mask_ratio=0.25, batch_size=8,
                              max_train_batches=4, max_eval_batches=2,
                              seed=0)
        result = run_imputation(model, split, task, _config(compiled))
        _assert_trajectory(
            result,
            train=[0.9151605505785878, 0.5839310715809114,
                   0.46209889562808404],
            val=[0.6617248327021011, 0.5520900259831283,
                 0.4799333640031168],
            mse=0.4385794249096801, mae=0.5187513243000864)


@pytest.mark.parametrize("compiled", [False, True],
                         ids=["eager", "compiled"])
class TestTS3NetGoldens:
    def test_forecast_trajectory(self, split, compiled):
        set_seed(0)
        model = build_model("TS3Net", seq_len=24, pred_len=8, c_in=7,
                            task="forecast", preset="tiny", num_scales=4)
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=3, max_eval_batches=2, seed=0)
        cfg = TrainConfig(epochs=2, lr=1e-2, compiled=compiled)
        result = run_forecast(model, split, task, cfg)
        _assert_trajectory(
            result,
            train=[0.8352836300458075, 0.6939607587840896],
            val=[0.9388711017925332, 0.8176983603338479],
            mse=0.6006219009948636, mae=0.6348438838665971)

    def test_imputation_trajectory(self, split, compiled):
        set_seed(0)
        model = build_model("TS3Net", seq_len=24, pred_len=24, c_in=7,
                            task="imputation", preset="tiny", num_scales=4)
        task = ImputationTask(seq_len=24, mask_ratio=0.25, batch_size=8,
                              max_train_batches=3, max_eval_batches=2,
                              seed=0)
        cfg = TrainConfig(epochs=2, lr=1e-2, compiled=compiled)
        result = run_imputation(model, split, task, cfg)
        _assert_trajectory(
            result,
            train=[0.8883726940608011, 0.7296850209451012],
            val=[0.7932669056782506, 0.7054514913598549],
            mse=0.6627288132646454, mae=0.6677938141162134)
