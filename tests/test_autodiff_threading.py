"""Thread-locality of the autodiff engine mode state.

The serving batcher runs ``no_grad``/``precision`` forwards on a worker
thread while a training loop may be recording gradients on another; the
mode flags must never leak across threads.  Fresh threads always start
from the boot defaults (grad enabled, float64), regardless of what any
context manager has done on the spawning thread.
"""

import threading

import numpy as np

from repro.autodiff import (
    Tensor, get_default_dtype, is_grad_enabled, no_grad, precision,
    set_default_dtype,
)


def run_in_thread(fn):
    """Run ``fn`` on a fresh thread; re-raise its exception, return result."""
    box = {}

    def target():
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            box["error"] = exc

    thread = threading.Thread(target=target)
    thread.start()
    thread.join(timeout=30)
    assert not thread.is_alive(), "worker thread hung"
    if "error" in box:
        raise box["error"]
    return box["result"]


class TestGradModeIsThreadLocal:
    def test_fresh_thread_starts_with_boot_defaults(self):
        with no_grad(), precision(np.float32):
            assert not is_grad_enabled()
            modes = run_in_thread(
                lambda: (is_grad_enabled(), get_default_dtype()))
        assert modes == (True, np.dtype(np.float64))

    def test_worker_no_grad_does_not_leak_to_main(self):
        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def worker():
            with no_grad():
                observed["inside"] = is_grad_enabled()
                entered.set()
                release.wait(timeout=30)
            observed["after"] = is_grad_enabled()

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=30)
        # the worker is inside no_grad *right now*; this thread is not
        assert is_grad_enabled()
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).sum()
        y.backward()
        np.testing.assert_array_equal(x.grad, np.full(3, 2.0))
        release.set()
        thread.join(timeout=30)
        assert observed == {"inside": False, "after": True}

    def test_thread_records_gradients_under_main_no_grad(self):
        def worker():
            x = Tensor(np.ones(4), requires_grad=True)
            (x * 3.0).sum().backward()
            return x.grad

        with no_grad():
            grad = run_in_thread(worker)
        np.testing.assert_array_equal(grad, np.full(4, 3.0))

    def test_mixed_modes_interleaved(self):
        """Two threads flip modes in lockstep; each sees only its own."""
        barrier = threading.Barrier(2, timeout=30)
        seen = {}

        def recorder(name, use_no_grad):
            ctx = no_grad() if use_no_grad else precision(np.float32)
            with ctx:
                barrier.wait()   # both threads are inside their contexts
                seen[name] = (is_grad_enabled(), get_default_dtype())
                barrier.wait()

        threads = [
            threading.Thread(target=recorder, args=("silent", True)),
            threading.Thread(target=recorder, args=("single", False)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert seen["silent"] == (False, np.dtype(np.float64))
        assert seen["single"] == (True, np.dtype(np.float32))


class TestDtypeIsThreadLocal:
    def test_set_default_dtype_stays_on_its_thread(self):
        assert get_default_dtype() == np.dtype(np.float64)

        def worker():
            set_default_dtype(np.float32)
            return Tensor(np.ones(2)).data.dtype

        try:
            assert run_in_thread(worker) == np.dtype(np.float32)
            # the worker's override never reaches this thread
            assert get_default_dtype() == np.dtype(np.float64)
            assert Tensor(np.ones(2)).data.dtype == np.dtype(np.float64)
        finally:
            set_default_dtype(np.float64)

    def test_precision_scope_is_per_thread(self):
        with precision(np.float32):
            assert Tensor(np.ones(2)).data.dtype == np.dtype(np.float32)
            other = run_in_thread(lambda: Tensor(np.ones(2)).data.dtype)
        assert other == np.dtype(np.float64)
        assert Tensor(np.ones(2)).data.dtype == np.dtype(np.float64)
