"""Remaining small-surface coverage: plotting edges, tensor copy semantics."""

import numpy as np

from repro.autodiff import Tensor
from repro.experiments.plotting import ascii_heatmap, ascii_lineplot, save_csv


class TestTensorCopySemantics:
    def test_copy_is_independent(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0
        assert b.requires_grad

    def test_detach_shares_data(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = a.detach()
        b.data[0] = 7.0
        assert a.data[0] == 7.0      # view semantics, like torch.detach
        assert not b.requires_grad

    def test_numpy_returns_underlying(self):
        a = Tensor(np.arange(3.0))
        assert a.numpy() is a.data


class TestPlottingEdges:
    def test_heatmap_constant_matrix(self):
        text = ascii_heatmap(np.zeros((5, 5)), label="flat")
        assert "flat" in text

    def test_heatmap_small_matrix_upscales(self):
        text = ascii_heatmap(np.eye(2), width=10, height=4)
        assert len(text.splitlines()) == 4

    def test_lineplot_short_series(self):
        text = ascii_lineplot({"s": np.array([1.0, 2.0])}, width=20, height=5)
        assert "s = s" in text

    def test_save_csv_unequal_lengths(self, tmp_path):
        path = tmp_path / "mixed.csv"
        save_csv(str(path), {"long": [1.0, 2.0, 3.0], "short": [9.0]})
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "long,short"
        assert len(lines) == 4
        assert lines[2].endswith(",")   # padded empty cell

    def test_save_csv_2d_column_flattened(self, tmp_path):
        path = tmp_path / "flat.csv"
        save_csv(str(path), {"m": np.ones((2, 2))})
        assert len(path.read_text().strip().splitlines()) == 5
