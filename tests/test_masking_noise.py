"""Tests for imputation masking and robustness noise injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    MASK_RATIOS, NOISE_RATIOS, apply_mask, inject_noise, mask_batch,
    random_mask,
)


class TestRandomMask:
    def test_ratio_approximate(self):
        rng = np.random.default_rng(0)
        mask = random_mask((100, 100), 0.25, rng)
        assert abs(mask.mean() - 0.25) < 0.02

    def test_zero_ratio_empty(self):
        mask = random_mask((50, 50), 0.0, np.random.default_rng(0))
        assert not mask.any()

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            random_mask((5,), 1.5)
        with pytest.raises(ValueError):
            random_mask((5,), -0.1)

    def test_paper_ratios_constant(self):
        assert MASK_RATIOS == (0.125, 0.25, 0.375, 0.5)


class TestApplyMask:
    def test_masked_positions_filled(self, rng):
        x = rng.standard_normal((10, 3)) + 10
        mask = random_mask(x.shape, 0.5, rng)
        out = apply_mask(x, mask)
        assert (out[mask] == 0).all()
        np.testing.assert_allclose(out[~mask], x[~mask])

    def test_original_untouched(self, rng):
        x = np.ones((5, 2))
        apply_mask(x, np.ones((5, 2), dtype=bool))
        assert (x == 1).all()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_mask(np.zeros((2, 2)), np.zeros((3, 3), dtype=bool))


class TestMaskBatch:
    def test_zero_fill(self, rng):
        x = rng.standard_normal((4, 20, 3)) + 5
        masked, mask = mask_batch(x, 0.3, rng, fill="zero")
        assert (masked[mask] == 0).all()

    def test_mean_fill_uses_observed_mean(self, rng):
        x = rng.standard_normal((2, 50, 3)) + 5
        masked, mask = mask_batch(x, 0.3, rng, fill="mean")
        for b in range(2):
            for c in range(3):
                obs = x[b, ~mask[b, :, c], c]
                filled_vals = masked[b, mask[b, :, c], c]
                if filled_vals.size:
                    np.testing.assert_allclose(filled_vals, obs.mean(),
                                               rtol=1e-9)

    def test_unknown_fill(self, rng):
        with pytest.raises(ValueError):
            mask_batch(np.zeros((1, 4, 1)), 0.2, rng, fill="interp")

    def test_observed_values_preserved(self, rng):
        x = rng.standard_normal((2, 10, 2))
        masked, mask = mask_batch(x, 0.4, rng, fill="mean")
        np.testing.assert_allclose(masked[~mask], x[~mask])


class TestNoiseInjection:
    def test_zero_rho_identity(self, rng):
        x = rng.standard_normal((20, 3))
        out = inject_noise(x, 0.0, rng)
        np.testing.assert_array_equal(out, x)
        assert out is not x  # copy, not alias

    def test_fraction_perturbed(self, rng):
        x = rng.standard_normal((200, 50))
        out = inject_noise(x, 0.10, np.random.default_rng(1))
        changed = (out != x).mean()
        assert abs(changed - 0.10) < 0.02

    def test_noise_scales_with_channel_std(self):
        rng = np.random.default_rng(0)
        x = np.stack([rng.standard_normal(5000) * 0.1,
                      rng.standard_normal(5000) * 10.0], axis=1)
        out = inject_noise(x, 1.0, np.random.default_rng(2))
        dev = out - x
        assert dev[:, 1].std() > 10 * dev[:, 0].std()

    def test_invalid_rho(self, rng):
        with pytest.raises(ValueError):
            inject_noise(np.zeros((4, 2)), 1.5, rng)

    def test_paper_ratios_constant(self):
        assert NOISE_RATIOS == (0.0, 0.01, 0.05, 0.10)


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.0, max_value=0.9, allow_nan=False, width=64))
def test_mask_ratio_property(ratio):
    rng = np.random.default_rng(11)
    mask = random_mask((64, 64), ratio, rng)
    assert abs(mask.mean() - ratio) < 0.08
