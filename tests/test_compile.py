"""Tests for the graph compiler: capture/replay compiled execution.

The load-bearing contract is *bitwise identity with eager*: a compiled
fit reproduces the PR 3 golden loss trajectory repr-exactly, parallel
dispatch at any worker count matches serial, shape changes fall back to a
fresh capture instead of corrupting results, serving hot-reloads retire
compiled graphs atomically, and pooled forward buffers never alias saved
activations a retained eager graph still needs.
"""

import numpy as np
import pytest

import repro.spectral.cwt  # noqa: F401 -- registers cwt_amplitude / iwt
from repro.autodiff import (
    CompiledForward, CompiledStep, CompileUnsupported, Tensor,
    make_compiled_forward, mse_loss, no_grad,
)
from repro.baselines import build_model
from repro.nn import Linear, Module, save_checkpoint
from repro.serving import (
    MicroBatcher, ModelRegistry, ServerMetrics, single_forward,
)
from repro.utils import set_seed

SEQ, PRED, CIN = 16, 8, 3


def _ts3net(seq=SEQ):
    set_seed(0)
    return build_model("TS3Net", seq_len=seq, pred_len=PRED, c_in=CIN,
                       preset="tiny")


def _batch(batch_size=2, seq=SEQ, seed=1):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((batch_size, seq, CIN)),
            rng.standard_normal((batch_size, PRED, CIN)))


def _step_fn(model):
    def step_fn(batch):
        x, y = batch
        return (mse_loss(model(Tensor(x)), y),)
    return step_fn


def _grad_bytes(model):
    return [p.grad.tobytes() if p.grad is not None else None
            for p in model.parameters()]


# ---------------------------------------------------------------------------
# Bit-identity: the golden trajectory and the replay machinery
# ---------------------------------------------------------------------------

class TestCompiledGolden:
    # Same repr-exact floats as tests/test_op_registry.py::TestBitIdentity —
    # recorded on the closure tape before the IR refactor, reproduced by the
    # eager IR in PR 3, and now by compiled replay.
    GOLDEN_TRAIN = [1.2476584778602362, 1.119118254141464, 1.0221905211103794]
    GOLDEN_VAL = [1.905923943047305, 1.8018306557895618, 1.7543303957001748]
    GOLDEN_MSE = 0.7023576225695288
    GOLDEN_MAE = 0.7083627841471343

    def test_compiled_fit_reproduces_the_golden_trajectory(self):
        from repro.data.dataset import load_dataset
        from repro.tasks import ForecastTask, TrainConfig, run_forecast

        set_seed(0)
        split = load_dataset("ETTh1", n_steps=400, seed=0)
        model = build_model("TS3Net", seq_len=32, pred_len=8,
                            c_in=split.train.shape[1], preset="tiny")
        task = ForecastTask(seq_len=32, pred_len=8, batch_size=8,
                            max_train_batches=4, max_eval_batches=2)
        result = run_forecast(model, split, task,
                              TrainConfig(epochs=3, lr=2e-3, compiled=True))
        assert result.train_losses == self.GOLDEN_TRAIN
        assert result.val_losses == self.GOLDEN_VAL
        assert result.mse == self.GOLDEN_MSE
        assert result.mae == self.GOLDEN_MAE

    def test_replays_run_and_match_eager_bitwise(self):
        model = _ts3net()
        cstep = CompiledStep(model, _step_fn(model))
        batch = _batch()
        losses = [cstep.step(batch) for _ in range(6)]
        assert not cstep.disabled, cstep.disabled_reason
        assert cstep.captures == 1
        assert cstep.validations == 1
        assert cstep.replays == 4
        compiled_grads = _grad_bytes(model)

        reference = _ts3net()
        ref_step = CompiledStep(reference, _step_fn(reference))
        ref_losses = [ref_step._eager(batch) for _ in range(6)]
        assert repr(losses) == repr(ref_losses)
        assert compiled_grads == _grad_bytes(reference)

    def test_graph_actually_optimises(self):
        model = _ts3net()
        cstep = CompiledStep(model, _step_fn(model))
        batch = _batch()
        for _ in range(3):
            cstep.step(batch)
        graph = next(iter(cstep._graphs.values()))[0]
        stats = graph.stats()
        assert stats["fused_ops"] > 0
        assert stats["ops_fused_away"] > 0
        assert stats["pool_buffers"] > 0
        assert stats["pool_bytes"] > 0


# ---------------------------------------------------------------------------
# Parallel dispatch determinism
# ---------------------------------------------------------------------------

class TestWorkerDeterminism:
    def _run(self, workers):
        model = _ts3net()
        cstep = CompiledStep(model, _step_fn(model), workers=workers)
        batch = _batch()
        losses = [cstep.step(batch) for _ in range(5)]
        return losses, _grad_bytes(model), cstep

    def test_workers4_bit_identical_to_workers1(self):
        losses1, grads1, cs1 = self._run(1)
        losses4, grads4, cs4 = self._run(4)
        assert repr(losses1) == repr(losses4)
        assert grads1 == grads4
        assert not cs4.disabled
        assert cs4.replays >= 3  # the parallel path really ran


# ---------------------------------------------------------------------------
# Shape-change fallback
# ---------------------------------------------------------------------------

class TestShapeChange:
    def test_each_shape_gets_its_own_graph_and_matches_eager(self):
        schedule = ([_batch(batch_size=2)] * 3
                    + [_batch(batch_size=5, seed=2)] * 3
                    + [_batch(batch_size=2)])

        model = _ts3net()
        cstep = CompiledStep(model, _step_fn(model))
        losses = [cstep.step(b) for b in schedule]
        assert not cstep.disabled, cstep.disabled_reason
        assert cstep.stats()["graphs"] == 2
        compiled_grads = _grad_bytes(model)

        reference = _ts3net()
        ref_step = CompiledStep(reference, _step_fn(reference))
        ref_losses = [ref_step._eager(b) for b in schedule]
        assert repr(losses) == repr(ref_losses)
        assert compiled_grads == _grad_bytes(reference)

    def test_trainer_falls_back_when_model_is_not_traceable(self):
        # DLinear exposes no trace_signature(): fit(compiled=True) must
        # run eagerly and still match the uncompiled fit bitwise.
        from repro.tasks.trainer import TrainConfig, Trainer

        def fit(compiled):
            set_seed(0)
            model = build_model("DLinear", seq_len=SEQ, pred_len=PRED,
                                c_in=CIN, preset="tiny")
            trainer = Trainer(model, TrainConfig(epochs=2, lr=1e-3,
                                                 compiled=compiled))
            rng = np.random.default_rng(3)
            batches = [(rng.standard_normal((4, SEQ, CIN)),
                        rng.standard_normal((4, PRED, CIN)))
                       for _ in range(3)]

            def step_fn(b):
                x, y = b
                pred = trainer.model(Tensor(x))
                return mse_loss(pred, y), pred.data, y, None

            return trainer.fit(batches, batches[:1], step_fn)

        eager, compiled = fit(False), fit(True)
        assert repr(eager.train_losses) == repr(compiled.train_losses)
        assert repr(eager.val_losses) == repr(compiled.val_losses)

    def test_untraceable_model_raises_compile_unsupported(self):
        model = build_model("DLinear", seq_len=SEQ, pred_len=PRED, c_in=CIN,
                            preset="tiny")
        with pytest.raises(CompileUnsupported):
            CompiledStep(model, _step_fn(model))
        assert make_compiled_forward(model) is None


# ---------------------------------------------------------------------------
# Compiled inference forwards + serving integration
# ---------------------------------------------------------------------------

def _make_ckpt(path, model_name, seed=0):
    set_seed(seed)
    model = build_model(model_name, seq_len=32, pred_len=PRED, c_in=CIN,
                        task="forecast", preset="tiny")
    save_checkpoint(model, str(path), metadata={
        "model": model_name, "dataset": "unit", "task": "forecast",
        "seq_len": 32, "pred_len": PRED, "c_in": CIN, "preset": "tiny"})
    return str(path)


def _window(period=8, seed=0, seq=32):
    rng = np.random.default_rng(seed)
    t = np.arange(seq)[:, None]
    return (np.sin(2 * np.pi * t / period) * 3.0
            + 0.01 * rng.standard_normal((seq, CIN)))


class TestCompiledForwardServing:
    def test_forward_replays_bitwise_per_shape(self):
        model = _ts3net(seq=32).eval()
        cf = CompiledForward(model)
        x1 = _window(8)[None]
        with no_grad():
            want = model(Tensor(x1)).data
        outs = [np.array(cf.forward(x1)) for _ in range(3)]
        assert not cf.disabled, cf.disabled_reason
        assert cf.stats()["replays"] >= 1
        for out in outs:
            assert repr(out) == repr(want)
        # a second shape gets its own graph, no fallback
        x2 = np.stack([_window(8, seed=1), _window(8, seed=2)])
        with no_grad():
            want2 = model(Tensor(x2)).data
        cf.forward(x2)
        assert repr(np.array(cf.forward(x2))) == repr(want2)
        assert cf.stats()["graphs"] == 2
        assert not cf.disabled

    def test_hot_reload_swaps_in_a_fresh_compiled_forward(self, tmp_path):
        registry = ModelRegistry(expect_task="forecast", compiled=True)
        old = registry.load("ts3", _make_ckpt(tmp_path / "a.npz", "TS3Net"))
        assert old.compiled is not None
        assert old.describe()["compiled"] is True

        w = _window(8)
        old_ref = single_forward(old, w)
        for _ in range(3):  # capture, validate, replay on the old graphs
            old.compiled.forward(w[None])
        assert old.compiled.stats()["replays"] >= 1

        new = registry.reload(
            "ts3", _make_ckpt(tmp_path / "b.npz", "TS3Net", seed=1))
        # structural invalidation: the new entry carries a *new* compiled
        # instance (no graph traced against the old weights survives), and
        # in-flight holders of the old entry keep bit-identical results.
        assert new.compiled is not None
        assert new.compiled is not old.compiled
        assert repr(np.array(old.compiled.forward(w[None])[0])) == repr(old_ref)
        new_ref = single_forward(new, w)
        assert repr(new_ref) != repr(old_ref)
        assert repr(np.array(new.compiled.forward(w[None])[0])) == repr(new_ref)

    def test_batcher_serves_compiled_entries_bitwise(self, tmp_path):
        registry = ModelRegistry(expect_task="forecast", compiled=True)
        registry.load("ts3", _make_ckpt(tmp_path / "a.npz", "TS3Net"))
        entry = registry.get("ts3")
        windows = [_window(4, seed=i) for i in range(2)]
        reference = [single_forward(entry, w) for w in windows]

        metrics = ServerMetrics()
        batcher = MicroBatcher(registry, max_batch_size=2, max_wait_ms=5000,
                               metrics=metrics, start=False)
        futures = [batcher.submit("ts3", w) for w in windows]
        batcher.start()
        results = [f.result(timeout=30) for f in futures]
        batcher.close()
        for got, want in zip(results, reference):
            assert repr(got) == repr(want)

    def test_uncompilable_architecture_serves_eagerly(self, tmp_path):
        registry = ModelRegistry(expect_task="forecast", compiled=True)
        entry = registry.load(
            "dlinear", _make_ckpt(tmp_path / "d.npz", "DLinear"))
        assert entry.compiled is None  # no trace_signature: quiet eager path
        out = single_forward(entry, _window(8))
        assert out.shape == (PRED, CIN)


# ---------------------------------------------------------------------------
# Memory plan: buffer-pool aliasing safety
# ---------------------------------------------------------------------------

class TestBufferPoolSafety:
    def test_retained_eager_graph_survives_compiled_replays(self):
        # An eager graph held alive by retain_graph=True must keep its
        # saved activations byte-for-byte while compiled replays churn
        # through pooled buffers in the same process.
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((4, 4)), requires_grad=True)
        out = ((x @ x).tanh() * x).sum()
        out.backward(retain_graph=True)
        first = x.grad.tobytes()

        model = _ts3net()
        cstep = CompiledStep(model, _step_fn(model))
        batch = _batch()
        for _ in range(5):
            cstep.step(batch)
        assert cstep.replays >= 3

        x.grad = None
        out.backward()  # consumes the retained saved activations
        assert x.grad.tobytes() == first

    def test_interleaved_replays_match_eager_bitwise(self):
        # Two graphs sharing the process (and the RNG stream) replay in
        # alternation; any pooled-buffer aliasing between them, or stale
        # state carried across steps, would break bitwise identity with
        # the eager run of the identical schedule.
        batch_a, batch_b = _batch(seed=1), _batch(batch_size=5, seed=2)
        schedule = [batch_a] * 3 + [batch_b] * 3 + [batch_a, batch_b] * 2

        model = _ts3net()
        cstep = CompiledStep(model, _step_fn(model))
        losses = [cstep.step(b) for b in schedule]
        assert not cstep.disabled, cstep.disabled_reason
        assert cstep.replays >= 4
        compiled_grads = _grad_bytes(model)

        reference = _ts3net()
        ref_step = CompiledStep(reference, _step_fn(reference))
        ref_losses = [ref_step._eager(b) for b in schedule]
        assert repr(losses) == repr(ref_losses)
        assert compiled_grads == _grad_bytes(reference)


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

class _FoldNet(Module):
    """A head whose forward rebuilds a constant table from literals every
    call — the compiler should bake the table and drop its instructions.

    The table feeds a matmul (not an elementwise op) so the constant
    ``mul+exp`` chain survives fusion as its own instruction; a constant
    chain flowing into an elementwise consumer is simply fused into it,
    which removes the per-op dispatch the same way.
    """

    def __init__(self):
        super().__init__()
        self.lin = Linear(4, 4)

    def forward(self, x):
        table = (Tensor(np.arange(16.0).reshape(4, 4)) * 0.5).exp()
        return self.lin(x @ table)

    def trace_signature(self, x):
        return ()


class TestConstantFolding:
    def test_constant_subgraph_is_folded_and_replay_matches(self):
        set_seed(0)
        model = _FoldNet()

        def step_fn(batch):
            x, y = batch
            return (mse_loss(model(Tensor(x)), y),)

        rng = np.random.default_rng(1)
        batch = (rng.standard_normal((3, 4)), rng.standard_normal((3, 4)))
        cstep = CompiledStep(model, step_fn)
        losses = [cstep.step(batch) for _ in range(4)]
        assert not cstep.disabled, cstep.disabled_reason
        assert cstep.replays >= 2
        graph = next(iter(cstep._graphs.values()))[0]
        assert graph.stats()["folded_instructions"] >= 1

        set_seed(0)
        reference = _FoldNet()
        ref_step = CompiledStep(reference, lambda b: (
            mse_loss(reference(Tensor(b[0])), b[1]),))
        ref_losses = [ref_step._eager(batch) for _ in range(4)]
        assert repr(losses) == repr(ref_losses)
        assert _grad_bytes(model) == _grad_bytes(reference)
