"""Tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Linear, Module, ModuleList, Parameter, Sequential, ReLU


class Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 2)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestRegistration:
    def test_parameters_collected(self):
        net = Net()
        names = dict(net.named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names and "scale" in names

    def test_num_parameters(self):
        net = Net()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_modules_walk(self):
        net = Net()
        kinds = [type(m).__name__ for m in net.modules()]
        assert kinds.count("Linear") == 2

    def test_parameter_always_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad

    def test_register_parameter(self):
        net = Net()
        net.register_parameter("extra", Parameter(np.zeros(2)))
        assert "extra" in dict(net.named_parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Net(), Net()
        b.load_state_dict(a.state_dict())
        for (n1, p1), (n2, p2) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        net = Net()
        state = net.state_dict()
        state["scale"][:] = 99.0
        assert net.scale.data[0] != 99.0

    def test_missing_key_raises(self):
        net = Net()
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = Net()
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_coerces_float_dtype_to_parameter(self):
        # a float64 state dict loaded into a float32 model (and back) must
        # land in each parameter's own dtype, not silently re-promote it
        source = Net()
        f32 = Net().to(np.float32)
        f32.load_state_dict(source.state_dict())
        for _, p in f32.named_parameters():
            assert p.data.dtype == np.float32

        f64 = Net()
        f64.load_state_dict(f32.state_dict())
        for _, p in f64.named_parameters():
            assert p.data.dtype == np.float64
        np.testing.assert_allclose(
            f64.scale.data, source.scale.data.astype(np.float32))

    def test_checkpoint_roundtrip_across_to(self, tmp_path):
        from repro.nn import load_checkpoint, save_checkpoint
        source = Net()
        path = str(tmp_path / "net.npz")
        save_checkpoint(source, path)

        target = Net().to(np.float32)
        load_checkpoint(target, path)
        from repro.autodiff import precision
        with precision(np.float32):   # Tensor() casts to the scoped dtype
            out = target(Tensor(
                np.random.default_rng(0).standard_normal((2, 4))))
        assert out.data.dtype == np.float32
        for _, p in target.named_parameters():
            assert p.data.dtype == np.float32


class TestModes:
    def test_train_eval_propagates(self):
        net = Net()
        net.eval()
        assert not net.fc1.training
        net.train()
        assert net.fc2.training

    def test_zero_grad_clears(self):
        net = Net()
        out = net(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestContainers:
    def test_sequential_chains(self):
        seq = Sequential(Linear(3, 5), ReLU(), Linear(5, 2))
        out = seq(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)
        assert len(seq) == 3
        assert len(list(iter(seq))) == 3

    def test_sequential_registers_params(self):
        seq = Sequential(Linear(3, 5), Linear(5, 2))
        assert len(seq.parameters()) == 4

    def test_modulelist_registration_and_access(self):
        ml = ModuleList([Linear(2, 2) for _ in range(3)])
        assert len(ml) == 3
        assert isinstance(ml[1], Linear)
        assert len(ml.parameters()) == 6
        ml.append(Linear(2, 2))
        assert len(ml) == 4

    def test_modulelist_not_callable(self):
        with pytest.raises(RuntimeError):
            ModuleList([])(1)


class TestNamedModules:
    def test_named_modules_dotted_paths(self):
        net = Net()
        names = dict(net.named_modules())
        assert names[""] is net
        assert names["fc1"] is net.fc1
        assert names["fc2"] is net.fc2

    def test_named_modules_nested(self):
        outer = Sequential(Net(), Linear(2, 2))
        names = [name for name, _ in outer.named_modules()]
        assert "0.fc1" in names and "1" in names

    def test_named_modules_on_ts3net_paper_scale(self):
        # Paper's ~Table III scale config: T=96, lambda=100, d_model=64.
        from repro.core.ts3net import TS3Net, TS3NetConfig
        model = TS3Net(TS3NetConfig(seq_len=96, pred_len=96, c_in=7,
                                    d_model=64, d_ff=64, num_blocks=2,
                                    num_scales=100))
        names = dict(model.named_modules())
        assert names[""] is model
        assert sum(type(m).__name__ == "TFBlock" for m in names.values()) == 2
        # Every registered parameter belongs to a named module.
        param_names = [name for name, _ in model.named_parameters()]
        module_prefixes = {name for name in names if name}
        for pname in param_names:
            owner = pname.rsplit(".", 1)[0] if "." in pname else ""
            assert owner == "" or owner in module_prefixes, pname

    def test_parameter_table_matches_num_parameters(self):
        from repro.core.ts3net import TS3Net, TS3NetConfig
        model = TS3Net(TS3NetConfig(seq_len=96, pred_len=96, c_in=7,
                                    d_model=64, d_ff=64, num_blocks=2,
                                    num_scales=100))
        table = model.parameter_table()
        total_line = table.splitlines()[-1]
        assert "total" in total_line
        assert f"{model.num_parameters():,d}" in total_line
        # One row per parameter plus header and total.
        assert len(table.splitlines()) == len(model.parameters()) + 2


class TestForwardHooks:
    def test_pre_and_post_hooks_fire_in_order(self):
        events = []
        net = Net()
        h1 = net.register_forward_pre_hook(
            lambda m, args: events.append(("pre", type(m).__name__)))
        h2 = net.register_forward_hook(
            lambda m, args, out: events.append(("post", out.shape)))
        net(Tensor(np.ones((2, 4))))
        assert events == [("pre", "Net"), ("post", (2, 2))]
        h1.remove()
        h2.remove()
        net(Tensor(np.ones((2, 4))))
        assert len(events) == 2  # removed hooks stay silent

    def test_hooks_see_call_args(self):
        seen = {}
        layer = Linear(4, 2)
        layer.register_forward_pre_hook(
            lambda m, args: seen.setdefault("shape", args[0].shape))
        layer(Tensor(np.ones((3, 4))))
        assert seen["shape"] == (3, 4)
