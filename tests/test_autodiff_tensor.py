"""Unit tests for the autodiff Tensor core: arithmetic, shape ops, backward."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor, check_gradients, no_grad, ones, randn, tensor, unbroadcast, zeros,
    zeros_like,
)


class TestConstruction:
    def test_wraps_array(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_scalar(self):
        t = Tensor(3.5)
        assert t.shape == ()
        assert t.item() == 3.5

    def test_requires_grad_flag(self):
        assert Tensor(1.0, requires_grad=True).requires_grad
        assert not Tensor(1.0).requires_grad

    def test_helpers(self):
        assert zeros(2, 3).data.sum() == 0
        assert ones(2, 3).data.sum() == 6
        assert zeros_like(ones(4)).shape == (4,)
        assert randn(5, rng=np.random.default_rng(0)).shape == (5,)
        assert tensor([1.0]).shape == (1,)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12
        assert t.ndim == 2


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_scalar_broadcast(self):
        out = Tensor([1.0, 2.0]) + 1.0
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_radd_rsub_rmul_rdiv(self):
        t = Tensor([2.0])
        np.testing.assert_allclose((1.0 + t).data, [3.0])
        np.testing.assert_allclose((1.0 - t).data, [-1.0])
        np.testing.assert_allclose((3.0 * t).data, [6.0])
        np.testing.assert_allclose((4.0 / t).data, [2.0])

    def test_pow_and_neg(self):
        t = Tensor([2.0, 3.0])
        np.testing.assert_allclose((t ** 2).data, [4.0, 9.0])
        np.testing.assert_allclose((-t).data, [-2.0, -3.0])

    def test_matmul_2d(self):
        a = Tensor(np.eye(3))
        b = Tensor(np.arange(9, dtype=float).reshape(3, 3))
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_comparisons_detached(self):
        mask = Tensor([1.0, -1.0]) > 0
        assert isinstance(mask, np.ndarray)
        np.testing.assert_array_equal(mask, [True, False])
        assert (Tensor([1.0]) < 2).all()
        assert (Tensor([1.0]) >= 1).all()
        assert (Tensor([1.0]) <= 1).all()


class TestBackwardBasics:
    def test_scalar_backward(self):
        a = Tensor(2.0, requires_grad=True)
        (a * a).backward()
        np.testing.assert_allclose(a.grad, 4.0)

    def test_backward_needs_scalar_or_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_accumulates(self):
        a = Tensor(1.0, requires_grad=True)
        (a * 2).backward()
        (a * 3).backward()
        np.testing.assert_allclose(a.grad, 5.0)

    def test_zero_grad(self):
        a = Tensor(1.0, requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph(self):
        # a used twice: d(a*a + a)/da = 2a + 1
        a = Tensor(3.0, requires_grad=True)
        (a * a + a).backward()
        np.testing.assert_allclose(a.grad, 7.0)

    def test_deep_chain(self):
        a = Tensor(1.0, requires_grad=True)
        out = a
        for _ in range(50):
            out = out * 1.1
        out.backward()
        np.testing.assert_allclose(a.grad, 1.1 ** 50, rtol=1e-10)

    def test_no_grad_blocks_taping(self):
        a = Tensor(1.0, requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad


class TestBroadcastGradients:
    def test_unbroadcast_sums_extra_axes(self):
        grad = np.ones((2, 3, 4))
        out = unbroadcast(grad, (4,))
        np.testing.assert_allclose(out, np.full(4, 6.0))

    def test_unbroadcast_keepdim_axes(self):
        grad = np.ones((3, 4))
        out = unbroadcast(grad, (3, 1))
        np.testing.assert_allclose(out, np.full((3, 1), 4.0))

    def test_broadcast_add_grad(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((1, 4)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((1, 4), 3.0))

    def test_gradcheck_mixed_ops(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        check_gradients(lambda a, b: (a * b - a / (b.abs() + 2)) ** 2, [a, b])

    def test_gradcheck_matmul_batched(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        check_gradients(lambda a, b: a @ b, [a, b])

    def test_gradcheck_matmul_both_batched(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)), requires_grad=True)
        check_gradients(lambda a, b: a @ b, [a, b])

    def test_gradcheck_vector_matmul(self, rng):
        a = Tensor(rng.standard_normal((3, 4, 2)), requires_grad=True)
        w = Tensor(rng.standard_normal(2), requires_grad=True)
        check_gradients(lambda a, w: a @ w, [a, w])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        check_gradients(lambda a: a.reshape(3, 4).reshape(12), [a])

    def test_transpose_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_gradients(lambda a: a.transpose(2, 0, 1), [a])

    def test_default_transpose_reverses(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.transpose().shape == (4, 3, 2)
        assert a.T.shape == (4, 3, 2)

    def test_swapaxes(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        assert a.swapaxes(0, 2).shape == (4, 3, 2)
        check_gradients(lambda a: a.swapaxes(-2, -1), [a])

    def test_getitem_grad(self, rng):
        a = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        check_gradients(lambda a: a[1:3, ::2], [a])

    def test_getitem_repeated_index_accumulates(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        a[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 1.0, 0.0])

    def test_squeeze_unsqueeze(self, rng):
        a = Tensor(rng.standard_normal((2, 1, 3)), requires_grad=True)
        assert a.squeeze(1).shape == (2, 3)
        assert a.unsqueeze(0).shape == (1, 2, 1, 3)
        check_gradients(lambda a: a.squeeze(1).unsqueeze(-1), [a])


class TestReductions:
    def test_sum_axes(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_gradients(lambda a: a.sum(axis=1), [a])
        check_gradients(lambda a: a.sum(axis=(0, 2)), [a])
        check_gradients(lambda a: a.sum(axis=2, keepdims=True), [a])

    def test_mean_axes(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_gradients(lambda a: a.mean(), [a])
        check_gradients(lambda a: a.mean(axis=(1, 2)), [a])

    def test_var_matches_numpy(self, rng):
        a = Tensor(rng.standard_normal((5, 7)))
        np.testing.assert_allclose(a.var(axis=1).data,
                                   a.data.var(axis=1), rtol=1e-10)

    def test_max_min_grad(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_gradients(lambda a: a.max(axis=1), [a])
        check_gradients(lambda a: a.min(axis=0), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5, 0.0])


class TestElementwise:
    @pytest.mark.parametrize("fn", [
        lambda a: a.exp(), lambda a: (a.abs() + 1).log(),
        lambda a: (a.abs() + 0.5).sqrt(), lambda a: a.tanh(),
        lambda a: a.sin(), lambda a: a.cos(),
    ])
    def test_gradcheck(self, rng, fn):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_gradients(fn, [a])

    def test_abs_grad_sign(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])

    def test_clip_grad_masks(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_clip_values(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]))
        np.testing.assert_allclose(a.clip(-1, 1).data, [-1.0, 0.5, 1.0])
