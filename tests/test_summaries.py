"""Tests for result-table summaries (ranks, win rates, degradations)."""

import pytest

from repro.experiments.results import ResultTable
from repro.experiments.summaries import (
    degradation_vs, mean_rank, monotone_fraction, ordered_by_rank, win_rate,
)


@pytest.fixture
def table():
    t = ResultTable("demo")
    # A always best, B middle, C worst; two datasets x two settings.
    for ds in ("D1", "D2"):
        for i, setting in enumerate((96, 192)):
            base = 0.1 * (i + 1)
            t.add(ds, setting, "A", {"mse": base, "mae": base})
            t.add(ds, setting, "B", {"mse": base * 2, "mae": base * 2})
            t.add(ds, setting, "C", {"mse": base * 3, "mae": base * 3})
    return t


class TestMeanRank:
    def test_strict_ordering(self, table):
        ranks = mean_rank(table)
        assert ranks["A"] == 1.0
        assert ranks["B"] == 2.0
        assert ranks["C"] == 3.0

    def test_ordered_by_rank(self, table):
        assert ordered_by_rank(table) == ["A", "B", "C"]

    def test_empty_table(self):
        assert mean_rank(ResultTable("empty")) == {}


class TestWinRate:
    def test_total_counts(self, table):
        wins, total = win_rate(table, "A")
        assert total == 8          # 4 rows x 2 metrics
        assert wins == 8

    def test_loser_has_zero(self, table):
        wins, _ = win_rate(table, "C")
        assert wins == 0


class TestDegradation:
    def test_relative_fractions(self, table):
        deg = degradation_vs(table, reference="A")
        assert deg["D1"]["B"] == pytest.approx(1.0)   # 2x worse
        assert deg["D1"]["C"] == pytest.approx(2.0)   # 3x worse

    def test_reference_excluded(self, table):
        deg = degradation_vs(table, reference="A")
        assert "A" not in deg["D1"]

    def test_missing_reference_skipped(self, table):
        deg = degradation_vs(table, reference="Z")
        assert deg == {}


class TestMonotone:
    def test_increasing_settings(self, table):
        grows, total = monotone_fraction(table, "A")
        assert (grows, total) == (2, 2)    # 0.1 -> 0.2 on both datasets

    def test_single_row_excluded(self):
        t = ResultTable("one")
        t.add("D", 1, "A", {"mse": 1.0, "mae": 1.0})
        assert monotone_fraction(t, "A") == (0, 0)
