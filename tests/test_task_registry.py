"""Tests for the TaskSpec registry: lookup, rebuild, and completeness.

The registry is the one door every layer dispatches tasks through
(``data`` → ``trainer`` → ``experiments`` grid → ``nn.serialization`` →
``serving`` → ``cli``); these tests pin the lookup contract, the
checkpoint-rebuild path, and the lint-enforced completeness of every
registered spec.
"""

import os
import sys

import pytest

from repro.baselines import build_model
from repro.nn import save_checkpoint, validate_checkpoint_metadata
from repro.tasks import (
    TaskSpec, UnknownTaskError, get_task, rebuild_from_metadata,
    register_task, resolve_batch_policy, task_names, task_specs,
)
from repro.tasks.registry import _REGISTRY, checkpoint_overrides
from repro.utils import set_seed

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "scripts"))
import lint_ops  # noqa: E402


class TestLookup:
    def test_all_four_tasks_registered(self):
        assert task_names() == ("forecast", "imputation", "anomaly",
                                "classification")

    def test_get_task_returns_matching_spec(self):
        for name in task_names():
            assert get_task(name).name == name

    def test_task_specs_order_matches_names(self):
        assert tuple(s.name for s in task_specs()) == task_names()

    def test_unknown_task_raises_with_known_names(self):
        with pytest.raises(UnknownTaskError) as exc:
            get_task("nonsense")
        msg = str(exc.value)
        assert "unknown task 'nonsense'" in msg
        for name in task_names():
            assert name in msg

    def test_unknown_task_is_a_key_error(self):
        with pytest.raises(KeyError):
            get_task("nonsense")

    def test_register_task_roundtrip(self):
        base = get_task("forecast")
        try:
            spec = register_task(TaskSpec(
                **{**base.__dict__, "name": "_test_only"}))
            assert get_task("_test_only") is spec
        finally:
            _REGISTRY.pop("_test_only", None)


class TestRebuild:
    def _meta(self, task="forecast", **extra):
        meta = {"model": "DLinear", "dataset": "unit", "task": task,
                "seq_len": 24, "pred_len": 8, "c_in": 3, "preset": "tiny"}
        meta.update(extra)
        return meta

    def test_rebuild_forecast_matches_build_model(self):
        set_seed(0)
        want = build_model("DLinear", seq_len=24, pred_len=8, c_in=3,
                           task="forecast", preset="tiny")
        got = rebuild_from_metadata(self._meta())
        assert type(got).__name__ == "DLinear"
        assert got.num_parameters() == want.num_parameters()

    def test_rebuild_unknown_task_names_known(self):
        with pytest.raises(UnknownTaskError, match="known tasks"):
            rebuild_from_metadata(self._meta(task="nonsense"))

    def test_rebuild_classification_uses_head_metadata(self):
        meta = self._meta(task="classification", model="TS3Net", pred_len=24,
                          num_classes=4, d_model=16)
        model = rebuild_from_metadata(meta)
        assert model.num_classes == 4 and model.d_model == 16

    def test_checkpoint_overrides_validates_type(self):
        assert checkpoint_overrides({"overrides": {"d_model": 8}}) == \
            {"d_model": 8}
        assert checkpoint_overrides({}) == {}
        with pytest.raises(ValueError, match="must be a dict"):
            checkpoint_overrides({"overrides": [1, 2]}, source="x.npz")


class TestBatchPolicy:
    def test_stack_safe_architecture(self):
        model = build_model("DLinear", seq_len=24, pred_len=8, c_in=3)
        assert resolve_batch_policy(model) == "stack"

    def test_signature_architecture(self):
        model = build_model("TS3Net", seq_len=24, pred_len=8, c_in=3,
                            preset="tiny")
        assert resolve_batch_policy(model) == "signature"

    def test_unknown_architecture_defaults_solo(self):
        assert resolve_batch_policy(object()) == "solo"


class TestSerializationContract:
    def test_unknown_checkpoint_task_names_known_tasks(self):
        meta = {"model": "DLinear", "task": "nonsense", "seq_len": 24,
                "pred_len": 8, "c_in": 3}
        with pytest.raises(ValueError) as exc:
            validate_checkpoint_metadata(meta, source="x.npz")
        msg = str(exc.value)
        assert "unknown task 'nonsense'" in msg and "forecast" in msg

    def test_missing_task_specific_metadata(self):
        meta = {"model": "TS3Net", "task": "classification", "seq_len": 24,
                "pred_len": 24, "c_in": 2}
        with pytest.raises(ValueError, match="classification.*metadata"):
            validate_checkpoint_metadata(meta, source="x.npz")

    def test_saved_checkpoint_passes_validation(self, tmp_path):
        set_seed(0)
        model = build_model("DLinear", seq_len=24, pred_len=8, c_in=3)
        path = tmp_path / "m.npz"
        save_checkpoint(model, str(path), metadata={
            "model": "DLinear", "dataset": "unit", "task": "forecast",
            "seq_len": 24, "pred_len": 8, "c_in": 3})
        from repro.nn import peek_metadata
        meta = validate_checkpoint_metadata(peek_metadata(str(path)),
                                            expect_task="forecast",
                                            source=str(path))
        assert meta["task"] == "forecast"


class TestCompleteness:
    def test_lint_reports_no_violations(self):
        assert lint_ops.find_task_violations() == []

    def test_serving_contracts_fully_declared(self):
        for spec in task_specs():
            contract = spec.serving
            assert contract is not None, spec.name
            assert contract.singular and contract.plural
            assert callable(contract.batch_policy)
            assert callable(contract.postprocess)
            assert callable(contract.body_extra)

    def test_infer_commands_unique(self):
        commands = [s.infer_command for s in task_specs()]
        assert len(set(commands)) == len(commands)
        assert set(commands) == {"forecast", "impute", "detect", "classify"}
