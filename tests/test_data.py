"""Tests for dataset specs, synthetic generators, and the windowing pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DataLoader, ForecastWindows, ImputationWindows, SPECS, StandardScaler,
    chronological_split, generate, get_spec, load_dataset, paper_scale_steps,
)
from repro.data.specs import FORECAST_DATASETS, IMPUTATION_DATASETS, TINY_DIMS
from repro.spectral import detect_periods


class TestSpecs:
    def test_all_table2_datasets_present(self):
        for name in ("ETTm1", "ETTm2", "ETTh1", "ETTh2", "Electricity",
                     "Traffic", "Weather", "Exchange", "ILI"):
            assert name in SPECS

    def test_paper_dimensions(self):
        assert get_spec("ETTh1").dim == 7
        assert get_spec("Electricity").dim == 321
        assert get_spec("Traffic").dim == 862
        assert get_spec("Weather").dim == 21
        assert get_spec("Exchange").dim == 8

    def test_paper_sizes(self):
        assert get_spec("ETTm1").paper_sizes == (34465, 11521, 11521)
        assert get_spec("ILI").paper_sizes == (617, 74, 170)

    def test_unknown_spec(self):
        with pytest.raises(KeyError):
            get_spec("M4")

    def test_imputation_subset_of_forecast(self):
        assert set(IMPUTATION_DATASETS) <= set(FORECAST_DATASETS)

    def test_paper_scale_steps(self):
        assert paper_scale_steps("ETTh1") == 8545 + 2881 + 2881


class TestGenerators:
    @pytest.mark.parametrize("name", FORECAST_DATASETS)
    def test_shape_and_finiteness(self, name):
        data = generate(name, n_steps=400)
        assert data.shape == (400, TINY_DIMS[name])
        assert np.isfinite(data).all()

    def test_deterministic_per_seed(self):
        a = generate("ETTh1", n_steps=300, seed=5)
        b = generate("ETTh1", n_steps=300, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = generate("ETTh1", n_steps=300, seed=1)
        b = generate("ETTh1", n_steps=300, seed=2)
        assert not np.allclose(a, b)

    def test_families_differ(self):
        a = generate("ETTh1", n_steps=300)
        b = generate("ETTh2", n_steps=300)
        assert not np.allclose(a, b)

    @pytest.mark.parametrize("name,period", [("ETTh1", 24), ("Weather", 144)])
    def test_planted_periodicity_detectable(self, name, period):
        data = generate(name, n_steps=2000)
        detected, _ = detect_periods(data[None], k=3)
        # Accept the planted period or a near multiple/harmonic.
        assert any(abs(int(p) - period) <= max(2, period // 10)
                   or abs(int(p) - period // 2) <= 2 for p in detected)

    def test_exchange_is_heavy_tailed_walk(self):
        data = generate("Exchange", n_steps=3000)
        increments = np.diff(data, axis=0)
        kurtosis = ((increments - increments.mean()) ** 4).mean() / increments.var() ** 2
        assert kurtosis > 3.5     # heavier tails than a Gaussian

    def test_ili_has_bursts(self):
        data = generate("ILI", n_steps=500)
        # Epidemic bursts: peak much larger than the median level.
        ratio = np.percentile(data, 99) - np.percentile(data, 50)
        assert ratio > 1.0

    def test_custom_dim(self):
        assert generate("Traffic", n_steps=100, dim=3).shape == (100, 3)

    def test_deterministic_across_processes(self):
        """Regression: the seed digest must not use Python's salted hash()."""
        import subprocess
        import sys
        code = ("from repro.data import generate; "
                "print(repr(float(generate('ETTh1', n_steps=40)[7, 0])))")
        runs = {
            subprocess.run([sys.executable, "-c", code], capture_output=True,
                           text=True, timeout=120).stdout.strip()
            for _ in range(2)
        }
        assert len(runs) == 1 and "" not in runs


class TestSplitAndScaler:
    def test_split_ratios(self):
        tr, va, te = chronological_split(1000, style="ratio")
        assert tr == slice(0, 700)
        assert va == slice(700, 800)
        assert te == slice(800, 1000)

    def test_ett_split(self):
        tr, va, te = chronological_split(1000, style="ett")
        assert tr.stop == 600

    def test_scaler_roundtrip(self, rng):
        x = rng.standard_normal((100, 4)) * 3 + 7
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)),
                                   x, rtol=1e-10)

    def test_scaler_train_stats_only(self):
        split = load_dataset("ETTh1", n_steps=1000)
        np.testing.assert_allclose(split.train.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(split.train.std(axis=0), 1.0, atol=1e-9)
        # Val/test are scaled with *train* stats, so not exactly standard.
        assert abs(split.val.mean()) < 5.0

    def test_scaler_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_scaler_constant_channel_guard(self):
        x = np.ones((50, 2))
        scaler = StandardScaler().fit(x)
        out = scaler.transform(x)
        assert np.isfinite(out).all()

    def test_splits_are_chronological(self):
        split = load_dataset("ETTh1", n_steps=900)
        total = len(split.train) + len(split.val) + len(split.test)
        assert total == 900


class TestWindows:
    def test_forecast_window_content(self):
        data = np.arange(40, dtype=float)[:, None]
        fw = ForecastWindows(data, seq_len=10, pred_len=5)
        x, y = fw[3]
        np.testing.assert_allclose(x[:, 0], np.arange(3, 13))
        np.testing.assert_allclose(y[:, 0], np.arange(13, 18))

    def test_forecast_window_count(self):
        fw = ForecastWindows(np.zeros((40, 1)), seq_len=10, pred_len=5)
        assert len(fw) == 26

    def test_stride(self):
        fw = ForecastWindows(np.zeros((40, 1)), 10, 5, stride=5)
        assert len(fw) == 6

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            ForecastWindows(np.zeros((10, 1)), 10, 5)
        with pytest.raises(ValueError):
            ImputationWindows(np.zeros((5, 1)), 10)

    def test_imputation_window(self):
        data = np.arange(30, dtype=float)[:, None]
        iw = ImputationWindows(data, seq_len=10)
        assert len(iw) == 21
        np.testing.assert_allclose(iw[2][:, 0], np.arange(2, 12))


class TestDataLoader:
    def test_batch_shapes(self):
        fw = ForecastWindows(np.zeros((50, 3)), 10, 5)
        dl = DataLoader(fw, batch_size=8)
        x, y = next(iter(dl))
        assert x.shape == (8, 10, 3)
        assert y.shape == (8, 5, 3)

    def test_len_and_max_batches(self):
        fw = ForecastWindows(np.zeros((100, 1)), 10, 5)
        dl = DataLoader(fw, batch_size=8, max_batches=3)
        assert len(dl) == 3
        assert sum(1 for _ in dl) == 3

    def test_shuffle_deterministic_per_seed(self):
        data = np.arange(60, dtype=float)[:, None]
        fw = ForecastWindows(data, 5, 2)
        a = [x[0, 0, 0] for x, _ in DataLoader(fw, 4, shuffle=True, seed=9)]
        b = [x[0, 0, 0] for x, _ in DataLoader(fw, 4, shuffle=True, seed=9)]
        assert a == b

    def test_shuffle_changes_order(self):
        data = np.arange(200, dtype=float)[:, None]
        fw = ForecastWindows(data, 5, 2)
        plain = [x[0, 0, 0] for x, _ in DataLoader(fw, 4)]
        shuffled = [x[0, 0, 0] for x, _ in DataLoader(fw, 4, shuffle=True, seed=1)]
        assert plain != shuffled

    def test_imputation_loader_yields_arrays(self):
        iw = ImputationWindows(np.zeros((30, 2)), 10)
        batch = next(iter(DataLoader(iw, batch_size=4)))
        assert batch.shape == (4, 10, 2)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=30, max_value=200),
       st.integers(min_value=2, max_value=10),
       st.integers(min_value=1, max_value=10))
def test_window_count_property(n, seq_len, pred_len):
    data = np.zeros((n, 1))
    if n < seq_len + pred_len:
        with pytest.raises(ValueError):
            ForecastWindows(data, seq_len, pred_len)
        return
    fw = ForecastWindows(data, seq_len, pred_len)
    # Last window must fit exactly inside the data.
    x, y = fw[len(fw) - 1]
    assert x.shape == (seq_len, 1) and y.shape == (pred_len, 1)
