"""Tests for attention mechanisms and the Transformer encoder."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import (
    AutoCorrelation, EncoderLayer, FeedForward, MultiHeadAttention,
    ProbSparseAttention, TransformerEncoder, scaled_dot_attention,
)
from repro.nn.attention import _roll


class TestScaledDotAttention:
    def test_output_shape(self, rng):
        q = Tensor(rng.standard_normal((2, 4, 6, 8)))
        out = scaled_dot_attention(q, q, q)
        assert out.shape == (2, 4, 6, 8)

    def test_uniform_attention_averages_values(self):
        # Identical keys -> uniform weights -> output = mean of values.
        q = Tensor(np.ones((1, 1, 3, 2)))
        k = Tensor(np.ones((1, 1, 3, 2)))
        v = Tensor(np.arange(6, dtype=float).reshape(1, 1, 3, 2))
        out = scaled_dot_attention(q, k, v)
        np.testing.assert_allclose(out.data[0, 0, 0], v.data[0, 0].mean(axis=0))

    def test_tau_delta_accepted(self, rng):
        q = Tensor(rng.standard_normal((1, 2, 4, 4)))
        tau = Tensor(np.full((1, 1, 1, 1), 2.0))
        delta = Tensor(np.zeros((1, 1, 1, 1)))
        out = scaled_dot_attention(q, q, q, tau=tau, delta=delta)
        assert out.shape == q.shape


class TestMultiHeadAttention:
    def test_shape(self, rng):
        mha = MultiHeadAttention(16, 4)
        x = Tensor(rng.standard_normal((2, 10, 16)))
        assert mha(x).shape == (2, 10, 16)

    def test_head_divisibility_check(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_cross_attention(self, rng):
        mha = MultiHeadAttention(8, 2)
        q = Tensor(rng.standard_normal((1, 5, 8)))
        kv = Tensor(rng.standard_normal((1, 9, 8)))
        assert mha(q, kv, kv).shape == (1, 5, 8)

    def test_gradients_reach_all_projections(self, rng):
        mha = MultiHeadAttention(8, 2, dropout=0.0)
        x = Tensor(rng.standard_normal((2, 6, 8)), requires_grad=True)
        mha(x).sum().backward()
        for name, p in mha.named_parameters():
            assert p.grad is not None, name


class TestProbSparse:
    def test_shape(self, rng):
        attn = ProbSparseAttention(8, 2, factor=2)
        x = Tensor(rng.standard_normal((2, 12, 8)))
        assert attn(x).shape == (2, 12, 8)

    def test_gradients_flow(self, rng):
        attn = ProbSparseAttention(8, 2, factor=1, dropout=0.0)
        x = Tensor(rng.standard_normal((1, 10, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None


class TestAutoCorrelation:
    def test_shape(self, rng):
        ac = AutoCorrelation(8, 2)
        x = Tensor(rng.standard_normal((2, 16, 8)))
        assert ac(x).shape == (2, 16, 8)

    def test_gradients_reach_q_and_k(self, rng):
        ac = AutoCorrelation(8, 2, dropout=0.0)
        x = Tensor(rng.standard_normal((1, 12, 8)), requires_grad=True)
        ac(x).sum().backward()
        names = dict(ac.named_parameters())
        assert names["w_q.weight"].grad is not None
        assert names["w_k.weight"].grad is not None
        assert names["w_v.weight"].grad is not None

    def test_periodic_signal_finds_period_lag(self, rng):
        # Strongly periodic input: top lag should be a multiple of the period.
        t = np.arange(24)
        x = np.sin(2 * np.pi * t / 8)[None, :, None] * np.ones((1, 1, 8))
        ac = AutoCorrelation(8, 1, factor=1, dropout=0.0)
        ac(Tensor(x))  # exercises the FFT lag selection without error

    def test_roll_is_circular(self, rng):
        x = Tensor(rng.standard_normal((1, 6, 2)))
        rolled = _roll(x, -2)
        np.testing.assert_allclose(rolled.data, np.roll(x.data, -2, axis=1))
        assert _roll(x, 0) is x


class TestTransformerEncoder:
    def test_stack_shape(self, rng):
        enc = TransformerEncoder(8, 2, num_layers=3, dropout=0.0)
        x = Tensor(rng.standard_normal((2, 7, 8)))
        assert enc(x).shape == (2, 7, 8)

    def test_feedforward_default_width(self):
        ff = FeedForward(8)
        assert ff.net.layers[0].out_features == 32

    def test_encoder_layer_residual_structure(self, rng):
        layer = EncoderLayer(8, 2, dropout=0.0)
        x = Tensor(rng.standard_normal((1, 5, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None

    def test_custom_attention_factory(self, rng):
        enc = TransformerEncoder(
            8, 2, num_layers=2, dropout=0.0,
            attention_factory=lambda: ProbSparseAttention(8, 2))
        x = Tensor(rng.standard_normal((1, 9, 8)))
        assert enc(x).shape == (1, 9, 8)
