"""Tests for the wavelet family and its central-frequency estimation."""

import numpy as np
import pytest

from repro.spectral.wavelets import (
    Wavelet, default_branch_wavelets, get_wavelet,
)


class TestWaveletFamily:
    @pytest.mark.parametrize("name", ["cgau1", "cgau2", "cgau3", "morlet"])
    def test_unit_energy(self, name):
        w = get_wavelet(name)
        dt = w._grid[1] - w._grid[0]
        energy = np.sum(np.abs(w._values) ** 2) * dt
        assert energy == pytest.approx(1.0, rel=1e-6)

    @pytest.mark.parametrize("name", ["cgau1", "cgau2", "morlet"])
    def test_central_frequency_positive(self, name):
        assert get_wavelet(name).central_frequency > 0

    def test_cgau_orders_increase_frequency(self):
        # Higher derivative orders oscillate faster.
        f1 = get_wavelet("cgau1").central_frequency
        f4 = get_wavelet("cgau4").central_frequency
        assert f4 > f1

    def test_morlet_central_frequency_near_theory(self):
        # Morlet with omega0=5: f_c = 5 / (2*pi) ~ 0.796.
        assert get_wavelet("morlet").central_frequency == pytest.approx(
            5.0 / (2 * np.pi), rel=0.02)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_wavelet("haar")

    def test_cache_returns_same_object(self):
        assert get_wavelet("cgau1") is get_wavelet("cgau1")

    def test_evaluation_decays_outside_support(self):
        w = get_wavelet("cgau1")
        vals = w(np.array([-10.0, 10.0]))
        np.testing.assert_allclose(np.abs(vals), 0.0, atol=1e-12)

    def test_complex_valued(self):
        w = get_wavelet("cgau1")
        vals = w(np.linspace(-1, 1, 10))
        assert np.iscomplexobj(vals)
        assert np.abs(vals.imag).max() > 0


class TestSampling:
    def test_sample_length(self):
        w = get_wavelet("cgau1")
        assert len(w.sample(scale=2.0, length=33)) == 33

    def test_sample_scale_normalisation(self):
        # 1/sqrt(s) prefactor: doubling scale shrinks peak amplitude.
        w = get_wavelet("morlet")
        a1 = np.abs(w.sample(1.0, 65)).max()
        a2 = np.abs(w.sample(4.0, 65)).max()
        assert a2 < a1

    def test_sample_centered(self):
        w = get_wavelet("morlet")
        taps = w.sample(1.0, 65)
        # Gaussian envelope peaks at the centre tap.
        assert int(np.argmax(np.abs(taps))) == 32


class TestBranchSelection:
    def test_first_branch_is_complex_gaussian(self):
        assert default_branch_wavelets(1) == ("cgau1",)

    def test_branches_are_distinct(self):
        names = default_branch_wavelets(4)
        assert len(set(names)) == 4

    def test_too_many_branches_raises(self):
        with pytest.raises(ValueError):
            default_branch_wavelets(99)
