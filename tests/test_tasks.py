"""Tests for metrics, the trainer, and the forecasting/imputation drivers."""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.data import load_dataset
from repro.tasks import (
    ForecastTask, ImputationTask, TrainConfig, Trainer, evaluate_all,
    forecast_step, imputation_step, mae, mape, mse, predict, rmse,
    run_forecast, run_imputation,
)


class TestMetrics:
    def test_mse_known(self):
        assert mse(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == 5.0

    def test_mae_known(self):
        assert mae(np.array([1.0, -3.0]), np.zeros(2)) == 2.0

    def test_rmse(self):
        assert rmse(np.array([3.0]), np.array([0.0])) == 3.0

    def test_mape_guards_zero(self):
        assert np.isfinite(mape(np.array([1.0]), np.array([0.0])))

    def test_masked_variants(self):
        pred = np.array([[1.0, 100.0]])
        target = np.zeros((1, 2))
        mask = np.array([[True, False]])
        assert mse(pred, target, mask) == 1.0
        assert mae(pred, target, mask) == 1.0

    def test_empty_mask_returns_zero(self):
        assert mse(np.ones((2, 2)), np.zeros((2, 2)), np.zeros((2, 2), bool)) == 0.0

    def test_evaluate_all_keys(self):
        out = evaluate_all(np.ones(3), np.zeros(3))
        assert set(out) == {"mse", "mae"}

    def test_mse_identical_is_zero(self, rng):
        x = rng.standard_normal(10)
        assert mse(x, x) == 0.0


@pytest.fixture(scope="module")
def split():
    return load_dataset("ETTh1", n_steps=600)


def _tiny_model(task="forecast", pred_len=8):
    return build_model("DLinear", seq_len=24, pred_len=pred_len, c_in=7,
                       task=task)


class TestTrainer:
    def test_fit_runs_and_records(self, split):
        model = _tiny_model()
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=4, max_eval_batches=2)
        cfg = TrainConfig(epochs=2, lr=1e-2)
        result = run_forecast(model, split, task, cfg)
        assert len(result.train_losses) == result.epochs_run
        assert np.isfinite(result.mse) and np.isfinite(result.mae)

    def test_training_reduces_loss(self, split):
        model = _tiny_model()
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=10, max_eval_batches=3)
        result = run_forecast(model, split, task, TrainConfig(epochs=4, lr=5e-3))
        assert result.train_losses[-1] < result.train_losses[0]

    def test_early_stopping_restores_best(self, split):
        """With an absurd LR the loss diverges; best weights must be restored."""
        model = _tiny_model()
        train, val, _ = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                                     max_train_batches=3,
                                     max_eval_batches=2).loaders(split)
        trainer = Trainer(model, TrainConfig(epochs=6, lr=1e-2, patience=2))
        result = trainer.fit(train, val, forecast_step(model))
        # The final model's val loss equals the best recorded epoch.
        best = min(result.val_losses)
        final_val = trainer._run_epoch(val, forecast_step(model), train=False)
        assert final_val == pytest.approx(best, rel=0.35)

    def test_evaluate_matches_metrics(self, split):
        model = _tiny_model()
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_eval_batches=2)
        _, _, test = task.loaders(split)
        trainer = Trainer(model, TrainConfig(epochs=1))
        mse_v, mae_v = trainer.evaluate(test, forecast_step(model))
        assert mse_v >= 0 and mae_v >= 0
        assert mae_v ** 2 <= mse_v + 1e-9  # Jensen: (E|x|)^2 <= E x^2

    def test_clip_norm_path(self, split):
        model = _tiny_model()
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=2, max_eval_batches=1)
        cfg = TrainConfig(epochs=1, clip_norm=0.5)
        result = run_forecast(model, split, task, cfg)
        assert np.isfinite(result.mse)


class TestForecastDriver:
    def test_loaders_cover_three_splits(self, split):
        task = ForecastTask(seq_len=24, pred_len=8)
        train, val, test = task.loaders(split)
        assert len(train) > 0 and len(val) > 0 and len(test) > 0

    def test_predict_helper_shapes(self, split):
        model = _tiny_model()
        single = predict(model, split.test[:24])
        assert single.shape == (8, 7)
        batched = predict(model, split.test[None, :24])
        assert batched.shape == (1, 8, 7)


class TestImputationDriver:
    def test_runs_and_scores_masked_only(self, split):
        model = _tiny_model(task="imputation", pred_len=24)
        task = ImputationTask(seq_len=24, mask_ratio=0.25, batch_size=8,
                              max_train_batches=4, max_eval_batches=2)
        result = run_imputation(model, split, task, TrainConfig(epochs=1))
        assert np.isfinite(result.mse)

    def test_step_masks_fraction(self, split):
        model = _tiny_model(task="imputation", pred_len=24)
        step = imputation_step(model, mask_ratio=0.5, seed=0)
        window = split.train[None, :24]
        loss, pred, target, mask = step(window)
        assert 0.2 < mask.mean() < 0.8
        assert pred.shape == target.shape

    def test_eval_masks_deterministic(self, split):
        """Two models must be scored on identical evaluation masks."""
        task = ImputationTask(seq_len=24, mask_ratio=0.25, batch_size=8,
                              max_train_batches=1, max_eval_batches=2, seed=3)
        m1 = _tiny_model(task="imputation", pred_len=24)
        m2 = _tiny_model(task="imputation", pred_len=24)
        s1 = imputation_step(m1, 0.25, seed=10_003)
        s2 = imputation_step(m2, 0.25, seed=10_003)
        window = split.train[None, :24]
        _, _, _, mask1 = s1(window)
        _, _, _, mask2 = s2(window)
        np.testing.assert_array_equal(mask1, mask2)
