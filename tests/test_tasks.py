"""Tests for metrics, the trainer, and the per-task drivers."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.baselines import build_model
from repro.data import load_dataset
from repro.tasks import (
    AnomalyTask, ForecastTask, ImputationTask, TrainConfig, Trainer,
    accuracy, detect_anomalies, evaluate_all, f1_score, forecast_step,
    imputation_step, mae, mape, mse, predict, rmse, run_anomaly,
    run_forecast, run_imputation, run_task, score_series,
)
from repro.tasks.classification import CLASSIFICATION_SPEC
from repro.utils import set_seed


class TestMetrics:
    def test_mse_known(self):
        assert mse(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == 5.0

    def test_mae_known(self):
        assert mae(np.array([1.0, -3.0]), np.zeros(2)) == 2.0

    def test_rmse(self):
        assert rmse(np.array([3.0]), np.array([0.0])) == 3.0

    def test_mape_guards_zero(self):
        assert np.isfinite(mape(np.array([1.0]), np.array([0.0])))

    def test_masked_variants(self):
        pred = np.array([[1.0, 100.0]])
        target = np.zeros((1, 2))
        mask = np.array([[True, False]])
        assert mse(pred, target, mask) == 1.0
        assert mae(pred, target, mask) == 1.0

    def test_empty_mask_returns_zero(self):
        assert mse(np.ones((2, 2)), np.zeros((2, 2)), np.zeros((2, 2), bool)) == 0.0

    def test_evaluate_all_keys(self):
        out = evaluate_all(np.ones(3), np.zeros(3))
        assert set(out) == {"mse", "mae"}

    def test_mse_identical_is_zero(self, rng):
        x = rng.standard_normal(10)
        assert mse(x, x) == 0.0


@pytest.fixture(scope="module")
def split():
    return load_dataset("ETTh1", n_steps=600)


def _tiny_model(task="forecast", pred_len=8):
    return build_model("DLinear", seq_len=24, pred_len=pred_len, c_in=7,
                       task=task)


class TestTrainer:
    def test_fit_runs_and_records(self, split):
        model = _tiny_model()
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=4, max_eval_batches=2)
        cfg = TrainConfig(epochs=2, lr=1e-2)
        result = run_forecast(model, split, task, cfg)
        assert len(result.train_losses) == result.epochs_run
        assert np.isfinite(result.mse) and np.isfinite(result.mae)

    def test_training_reduces_loss(self, split):
        model = _tiny_model()
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=10, max_eval_batches=3)
        result = run_forecast(model, split, task, TrainConfig(epochs=4, lr=5e-3))
        assert result.train_losses[-1] < result.train_losses[0]

    def test_early_stopping_restores_best(self, split):
        """With an absurd LR the loss diverges; best weights must be restored."""
        model = _tiny_model()
        train, val, _ = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                                     max_train_batches=3,
                                     max_eval_batches=2).loaders(split)
        trainer = Trainer(model, TrainConfig(epochs=6, lr=1e-2, patience=2))
        result = trainer.fit(train, val, forecast_step(model))
        # The final model's val loss equals the best recorded epoch.
        best = min(result.val_losses)
        final_val = trainer._run_epoch(val, forecast_step(model), train=False)
        assert final_val == pytest.approx(best, rel=0.35)

    def test_evaluate_matches_metrics(self, split):
        model = _tiny_model()
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_eval_batches=2)
        _, _, test = task.loaders(split)
        trainer = Trainer(model, TrainConfig(epochs=1))
        mse_v, mae_v = trainer.evaluate(test, forecast_step(model))
        assert mse_v >= 0 and mae_v >= 0
        assert mae_v ** 2 <= mse_v + 1e-9  # Jensen: (E|x|)^2 <= E x^2

    def test_clip_norm_path(self, split):
        model = _tiny_model()
        task = ForecastTask(seq_len=24, pred_len=8, batch_size=8,
                            max_train_batches=2, max_eval_batches=1)
        cfg = TrainConfig(epochs=1, clip_norm=0.5)
        result = run_forecast(model, split, task, cfg)
        assert np.isfinite(result.mse)


class TestForecastDriver:
    def test_loaders_cover_three_splits(self, split):
        task = ForecastTask(seq_len=24, pred_len=8)
        train, val, test = task.loaders(split)
        assert len(train) > 0 and len(val) > 0 and len(test) > 0

    def test_predict_helper_shapes(self, split):
        model = _tiny_model()
        single = predict(model, split.test[:24])
        assert single.shape == (8, 7)
        batched = predict(model, split.test[None, :24])
        assert batched.shape == (1, 8, 7)


class TestImputationDriver:
    def test_runs_and_scores_masked_only(self, split):
        model = _tiny_model(task="imputation", pred_len=24)
        task = ImputationTask(seq_len=24, mask_ratio=0.25, batch_size=8,
                              max_train_batches=4, max_eval_batches=2)
        result = run_imputation(model, split, task, TrainConfig(epochs=1))
        assert np.isfinite(result.mse)

    def test_step_masks_fraction(self, split):
        model = _tiny_model(task="imputation", pred_len=24)
        step = imputation_step(model, mask_ratio=0.5, seed=0)
        window = split.train[None, :24]
        loss, pred, target, mask = step(window)
        assert 0.2 < mask.mean() < 0.8
        assert pred.shape == target.shape

    def test_eval_masks_deterministic(self, split):
        """Two models must be scored on identical evaluation masks."""
        task = ImputationTask(seq_len=24, mask_ratio=0.25, batch_size=8,
                              max_train_batches=1, max_eval_batches=2, seed=3)
        m1 = _tiny_model(task="imputation", pred_len=24)
        m2 = _tiny_model(task="imputation", pred_len=24)
        s1 = imputation_step(m1, 0.25, seed=10_003)
        s2 = imputation_step(m2, 0.25, seed=10_003)
        window = split.train[None, :24]
        _, _, _, mask1 = s1(window)
        _, _, _, mask2 = s2(window)
        np.testing.assert_array_equal(mask1, mask2)


class TestClassificationMetrics:
    def test_accuracy_known(self):
        assert accuracy(np.array([0, 1, 2, 1]), np.array([0, 1, 1, 1])) == 0.75

    def test_accuracy_empty_is_nan(self):
        assert np.isnan(accuracy(np.empty(0, int), np.empty(0, int)))

    def test_f1_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert f1_score(y, y) == 1.0

    def test_f1_fully_wrong(self):
        assert f1_score(np.array([0, 0]), np.array([1, 1])) == 0.0

    def test_f1_known_value(self):
        # class 0: tp=1 fp=1 fn=0 -> 2/3; class 1: tp=1 fp=0 fn=1 -> 2/3
        pred = np.array([0, 0, 1])
        target = np.array([0, 1, 1])
        assert f1_score(pred, target) == pytest.approx(2.0 / 3.0)

    def test_f1_counts_class_seen_only_in_pred(self):
        # class 2 appears only in pred: tp=0 -> F1 0, dragging the macro
        # mean; class 0 has tp=1 fn=1 -> 2/3, so macro = 1/3.
        pred = np.array([0, 2])
        target = np.array([0, 0])
        assert f1_score(pred, target) == pytest.approx(1.0 / 3.0)

    def test_f1_rejects_other_averages(self):
        with pytest.raises(ValueError, match="only 'macro'"):
            f1_score(np.array([0]), np.array([0]), average="micro")

    def test_f1_empty_is_nan(self):
        assert np.isnan(f1_score(np.empty(0, int), np.empty(0, int)))


class _CountingRecon:
    """Stub model whose k-th forward adds k to the window, so the residual
    of window k is exactly k (constant over points/channels)."""

    def __init__(self):
        self.calls = 0

    def eval(self):
        pass

    def __call__(self, t):
        self.calls += 1
        return Tensor(t.data + float(self.calls))


class TestAnomalyScoring:
    def test_overlap_averages_window_residuals(self):
        # seq_len=4, stride=2 over 6 points: window 1 covers 0-3 (residual
        # 1), window 2 covers 2-5 (residual 2); the overlap averages them.
        data = np.zeros((6, 2))
        scores = score_series(_CountingRecon(), data, seq_len=4, stride=2)
        np.testing.assert_allclose(scores, [1.0, 1.0, 1.5, 1.5, 2.0, 2.0])

    def test_uncovered_tail_scores_zero(self):
        # 7 points, seq_len=4, stride=4: only 0-3 are covered.
        data = np.zeros((7, 2))
        scores = score_series(_CountingRecon(), data, seq_len=4, stride=4)
        np.testing.assert_allclose(scores, [1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0])

    def test_detect_flags_top_fraction(self):
        data = np.zeros((8, 1))
        result = detect_anomalies(_CountingRecon(), data, seq_len=2,
                                  anomaly_ratio=0.25, stride=2)
        # scores are 1,1,2,2,3,3,4,4; the 0.75-quantile threshold keeps
        # only the strictly-greater top pair.
        assert result.threshold == pytest.approx(3.25)
        assert result.detections.sum() == 2
        assert result.detection_rate() == pytest.approx(0.25)

    def test_constant_scores_flag_nothing(self):
        # threshold == every score and detection is strictly-greater
        class _Zero:
            def eval(self):
                pass

            def __call__(self, t):
                return t

        result = detect_anomalies(_Zero(), np.ones((8, 1)), seq_len=4,
                                  anomaly_ratio=0.01)
        assert result.detections.sum() == 0

    @pytest.mark.parametrize("ratio", [0.0, 1.0, -0.5, 2.0])
    def test_ratio_out_of_range_rejected(self, ratio):
        with pytest.raises(ValueError, match="anomaly_ratio"):
            detect_anomalies(_CountingRecon(), np.zeros((8, 1)), seq_len=4,
                             anomaly_ratio=ratio)


class TestAnomalyDriver:
    def test_run_anomaly_reports_metric_bundle(self, split):
        model = _tiny_model(task="imputation", pred_len=24)
        task = AnomalyTask(seq_len=24, anomaly_ratio=0.05, batch_size=8,
                           stride=24, max_train_batches=4,
                           max_eval_batches=2)
        result = run_anomaly(model, split, task, TrainConfig(epochs=1))
        assert set(result.metrics) == {"mse", "mae", "threshold",
                                       "detection_rate"}
        assert np.isfinite(result.mse) and np.isfinite(result.mae)
        assert 0.0 <= result.metrics["detection_rate"] <= 1.0


class TestClassificationDriverGolden:
    def test_fixed_seed_accuracy_and_f1(self):
        """Exact fixed-seed metrics for the registry-driven pipeline."""
        spec = CLASSIFICATION_SPEC
        config = spec.make_config(32, 3, batch_size=8, max_train_batches=6,
                                  max_eval_batches=4, seed=0)
        data = spec.load_data("unit", 0, 0, config)
        set_seed(0)
        model = spec.build("TS3Net", config, c_in=spec.channels(data),
                           preset="tiny")
        result = run_task(spec, model, data, config,
                          TrainConfig(epochs=2, lr=2e-3))
        assert result.metrics["accuracy"] == 0.25
        assert result.metrics["f1"] == 0.13333333333333333
        assert result.train_losses == [1.1273060176245988,
                                       1.0925552440739068]
