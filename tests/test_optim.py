"""Tests for optimisers, schedulers, gradient clipping, and early stopping."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Linear, Module, Parameter
from repro.optim import (
    Adam, CosineDecay, EarlyStopping, ExponentialDecay, SGD, clip_grad_norm,
)


def quadratic_loss(p: Parameter) -> Tensor:
    target = Tensor(np.array([3.0, -2.0]))
    diff = p - target
    return (diff * diff).sum()


class TestSGD:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, -2.0], atol=1e-4)

    def test_momentum_accelerates(self):
        def loss_after(momentum, steps=15):
            p = Parameter(np.zeros(2))
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(steps):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return float(quadratic_loss(p).data)

        assert loss_after(0.9) < loss_after(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert abs(p.data[0]) < 10.0

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.5)
        opt.step()  # no grad — must not crash or move
        np.testing.assert_allclose(p.data, [1.0, 1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, -2.0], atol=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction, |first update| == lr regardless of grad scale.
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        (p * 1000.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(abs(p.data[0]), 0.01, rtol=1e-6)

    def test_trains_a_linear_model(self, rng):
        layer = Linear(3, 1)
        x = rng.standard_normal((64, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ true_w
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)

    def test_moment_buffers_recast_after_module_to(self):
        # Regression: Module.to() after Adam snapshotted the parameters used
        # to leave the moment buffers at the old dtype forever.
        layer = Linear(3, 2)
        opt = Adam(layer.parameters(), lr=0.01)
        layer.to("float32")
        opt.zero_grad()
        (layer(Tensor(np.ones((4, 3), dtype=np.float32))) ** 2).mean().backward()
        opt.step()
        for p, m, v in zip(opt.params, opt._m, opt._v):
            assert p.data.dtype == np.float32
            assert m.dtype == np.float32
            assert v.dtype == np.float32

    def test_moment_recast_keeps_training_stable(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        for _ in range(5):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        p.data = p.data.astype(np.float32)
        for _ in range(195):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert opt._m[0].dtype == np.float32
        np.testing.assert_allclose(p.data, [3.0, -2.0], atol=1e-2)


class TestClipGradNorm:
    def test_reports_and_clips(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 3.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(6.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])


class TestSchedulers:
    def test_exponential_decay(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=1.0)
        sched = ExponentialDecay(opt, gamma=0.5)
        sched.step()
        assert opt.lr == 0.5
        sched.step()
        assert opt.lr == 0.25

    def test_cosine_reaches_min(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=1.0)
        sched = CosineDecay(opt, total_epochs=4, min_lr=0.1)
        for _ in range(4):
            sched.step()
        assert opt.lr == pytest.approx(0.1)


class _TinyModel(Module):
    def __init__(self, value=0.0):
        super().__init__()
        self.p = Parameter(np.array([value]))

    def forward(self, x):
        return self.p


class TestEarlyStopping:
    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        m = _TinyModel()
        assert stopper.update(1.0, m)
        assert not stopper.update(1.5, m)
        assert stopper.update(0.5, m)
        assert stopper.counter == 0
        assert not stopper.should_stop

    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        m = _TinyModel()
        stopper.update(1.0, m)
        stopper.update(1.1, m)
        stopper.update(1.2, m)
        assert stopper.should_stop

    def test_restore_best_weights(self):
        stopper = EarlyStopping(patience=3)
        m = _TinyModel(1.0)
        stopper.update(0.5, m)          # best snapshot at p=1.0
        m.p.data[:] = 99.0
        stopper.update(0.9, m)          # worse — snapshot unchanged
        stopper.restore_best(m)
        assert m.p.data[0] == 1.0

    def test_restore_without_update_is_noop(self):
        m = _TinyModel(7.0)
        EarlyStopping().restore_best(m)
        assert m.p.data[0] == 7.0
