"""Tests for the serving subsystem: registry, micro-batcher, HTTP server.

The load-bearing property throughout is the determinism guarantee:
micro-batched outputs must be *bit-identical* (``repr``-exact) to
:func:`repro.serving.single_forward` for every batch policy.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.baselines import build_model
from repro.nn import save_checkpoint
from repro.serving import (
    BatcherClosedError, DeadlineExceededError, InvalidWindowError,
    MicroBatcher, ModelRegistry, QueueFullError, ServerMetrics, ServingConfig,
    UnknownModelError, build_server, resolve_batch_policy, single_forward,
)
from repro.utils import set_seed

SEQ, PRED, CIN = 32, 8, 3


def make_ckpt(path, model_name="DLinear", task="forecast", seed=0,
              overrides=None):
    set_seed(seed)
    model = build_model(model_name, seq_len=SEQ, pred_len=PRED, c_in=CIN,
                        task=task, preset="tiny", **(overrides or {}))
    meta = {"model": model_name, "dataset": "unit", "task": task,
            "seq_len": SEQ, "pred_len": PRED, "c_in": CIN, "preset": "tiny"}
    if overrides:
        meta["overrides"] = overrides
    save_checkpoint(model, str(path), metadata=meta)
    return str(path)


def periodic_window(period, seed=0):
    """A window whose dominant spectral pick is controlled by ``period``."""
    rng = np.random.default_rng(seed)
    t = np.arange(SEQ)[:, None]
    return (np.sin(2 * np.pi * t / period) * 3.0
            + 0.01 * rng.standard_normal((SEQ, CIN)))


@pytest.fixture
def registry(tmp_path):
    reg = ModelRegistry(expect_task="forecast")
    reg.load("dlinear", make_ckpt(tmp_path / "dlinear.npz", "DLinear"))
    return reg


@pytest.fixture
def ts3_registry(tmp_path):
    reg = ModelRegistry(expect_task="forecast")
    reg.load("ts3net", make_ckpt(tmp_path / "ts3net.npz", "TS3Net"))
    return reg


class TestRegistry:
    def test_batch_policies(self, tmp_path):
        models = {
            "DLinear": "stack", "PatchTST": "stack",
            "TS3Net": "signature", "TimesNet": "solo", "Autoformer": "solo",
        }
        for name, expected in models.items():
            model = build_model(name, seq_len=SEQ, pred_len=PRED, c_in=CIN,
                                task="forecast", preset="tiny")
            assert resolve_batch_policy(model) == expected, name

    def test_load_and_describe(self, registry):
        entry = registry.get("dlinear")
        assert entry.seq_len == SEQ and entry.c_in == CIN
        assert entry.policy == "stack" and entry.version == 1
        (desc,) = registry.describe()
        assert desc["name"] == "dlinear"
        assert desc["batch_policy"] == "stack"
        assert registry.default_name() == "dlinear"

    def test_rejects_bare_archive(self, tmp_path):
        path = str(tmp_path / "bare.npz")
        np.savez(path, weight=np.zeros((2, 2)))
        with pytest.raises(ValueError, match="missing metadata"):
            ModelRegistry().load("m", path)

    def test_rejects_wrong_task(self, tmp_path):
        path = make_ckpt(tmp_path / "imp.npz", "DLinear", task="imputation")
        with pytest.raises(ValueError, match="imputation"):
            ModelRegistry(expect_task="forecast").load("m", path)

    def test_rejects_duplicate_name(self, registry, tmp_path):
        with pytest.raises(ValueError, match="already registered"):
            registry.load("dlinear", make_ckpt(tmp_path / "b.npz"))

    def test_unknown_model(self, registry):
        with pytest.raises(UnknownModelError):
            registry.get("nope")

    def test_reload_bumps_version_and_swaps_weights(self, registry, tmp_path):
        old = registry.get("dlinear")
        new_path = make_ckpt(tmp_path / "v2.npz", "DLinear", seed=7)
        entry = registry.reload("dlinear", new_path)
        assert entry.version > old.version
        assert registry.get("dlinear") is entry
        window = periodic_window(8)
        assert repr(single_forward(old, window)) != \
            repr(single_forward(entry, window))

    def test_reload_failure_keeps_old_entry(self, registry, tmp_path):
        old = registry.get("dlinear")
        bad = str(tmp_path / "bad.npz")
        np.savez(bad, weight=np.zeros(2))
        with pytest.raises(ValueError):
            registry.reload("dlinear", bad)
        assert registry.get("dlinear") is old

    def test_overrides_rebuild_model(self, tmp_path):
        path = make_ckpt(tmp_path / "deep.npz", "PatchTST",
                         overrides={"num_layers": 3, "d_model": 8,
                                    "d_ff": 8, "n_heads": 2})
        entry = ModelRegistry().load("deep", path)
        out = single_forward(entry, periodic_window(8))
        assert out.shape == (PRED, CIN)


class TestBatcherDeterminism:
    def test_flush_on_size_bitwise_equal(self, registry):
        entry = registry.get("dlinear")
        windows = [periodic_window(p, seed=i)
                   for i, p in enumerate((4, 6, 8, 16))]
        reference = [single_forward(entry, w) for w in windows]

        metrics = ServerMetrics()
        batcher = MicroBatcher(registry, max_batch_size=4, max_wait_ms=5000,
                               metrics=metrics, start=False)
        futures = [batcher.submit("dlinear", w) for w in windows]
        batcher.start()
        results = [f.result(timeout=10) for f in futures]
        batcher.close()

        for got, want in zip(results, reference):
            assert repr(got) == repr(want)
        # one stacked forward of all four windows, flushed by size
        assert metrics.snapshot()["batch_sizes"] == {4: 1}

    def test_flush_on_timeout(self, registry):
        metrics = ServerMetrics()
        batcher = MicroBatcher(registry, max_batch_size=64, max_wait_ms=30,
                               metrics=metrics, start=False)
        windows = [periodic_window(5, seed=i) for i in range(3)]
        futures = [batcher.submit("dlinear", w) for w in windows]
        start = time.monotonic()
        batcher.start()
        results = [f.result(timeout=10) for f in futures]
        assert time.monotonic() - start < 5  # timeout flush, not size flush
        batcher.close()
        entry = registry.get("dlinear")
        for got, w in zip(results, windows):
            assert repr(got) == repr(single_forward(entry, w))
        assert sum(metrics.snapshot()["batch_sizes"].values()) >= 1

    def test_signature_policy_groups_equal_spectra(self, ts3_registry):
        entry = ts3_registry.get("ts3net")
        assert entry.policy == "signature"
        # two windows per dominant period: same-signature windows may share
        # a stacked forward, different signatures must not
        windows = ([periodic_window(4, seed=i) for i in range(2)]
                   + [periodic_window(11, seed=i) for i in range(2)])
        reference = [single_forward(entry, w) for w in windows]

        metrics = ServerMetrics()
        batcher = MicroBatcher(ts3_registry, max_batch_size=4,
                               max_wait_ms=5000, metrics=metrics, start=False)
        futures = [batcher.submit("ts3net", w) for w in windows]
        batcher.start()
        results = [f.result(timeout=30) for f in futures]
        batcher.close()

        for got, want in zip(results, reference):
            assert repr(got) == repr(want)
        assert metrics.snapshot()["batch_sizes"] == {2: 2}

    def test_validation_errors(self, registry):
        batcher = MicroBatcher(registry, start=False)
        with pytest.raises(InvalidWindowError, match="shape"):
            batcher.submit("dlinear", np.zeros((SEQ + 1, CIN)))
        with pytest.raises(InvalidWindowError, match="NaN"):
            bad = periodic_window(8)
            bad[3, 1] = np.nan
            batcher.submit("dlinear", bad)
        with pytest.raises(UnknownModelError):
            batcher.submit("missing", periodic_window(8))


class TestAdmissionControl:
    def test_queue_full_sheds(self, registry):
        batcher = MicroBatcher(registry, queue_size=2, start=False)
        batcher.submit("dlinear", periodic_window(4))
        batcher.submit("dlinear", periodic_window(5))
        with pytest.raises(QueueFullError):
            batcher.submit("dlinear", periodic_window(6))

    def test_deadline_expiry(self, registry):
        batcher = MicroBatcher(registry, start=False)
        future = batcher.submit("dlinear", periodic_window(8), timeout_s=0.01)
        time.sleep(0.05)
        batcher.start()
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=10)
        batcher.close()

    def test_close_drains_queued_work(self, registry):
        batcher = MicroBatcher(registry, max_batch_size=2, start=False)
        futures = [batcher.submit("dlinear", periodic_window(4, seed=i))
                   for i in range(3)]
        batcher.start()
        batcher.close(drain=True)
        entry = registry.get("dlinear")
        for f, i in zip(futures, range(3)):
            assert repr(f.result(timeout=0.1)) == \
                repr(single_forward(entry, periodic_window(4, seed=i)))
        with pytest.raises(BatcherClosedError):
            batcher.submit("dlinear", periodic_window(4))

    def test_close_without_drain_fails_queued_work(self, registry):
        batcher = MicroBatcher(registry, start=False)
        future = batcher.submit("dlinear", periodic_window(4))
        batcher.close(drain=False)   # worker never ran; now discard
        batcher.start()
        with pytest.raises(BatcherClosedError):
            future.result(timeout=10)


class TestHotReloadAtomicity:
    def test_concurrent_submits_see_old_or_new(self, registry, tmp_path):
        old = registry.get("dlinear")
        window = periodic_window(8)
        want_old = repr(single_forward(old, window))

        batcher = MicroBatcher(registry, max_batch_size=4, max_wait_ms=1)
        results, stop = [], threading.Event()

        def hammer():
            while not stop.is_set():
                results.append(
                    batcher.submit("dlinear", window).result(timeout=10))

        thread = threading.Thread(target=hammer)
        thread.start()
        time.sleep(0.05)
        new = registry.reload(
            "dlinear", make_ckpt(tmp_path / "v2.npz", "DLinear", seed=9))
        time.sleep(0.05)
        stop.set()
        thread.join(timeout=10)
        batcher.close()

        want_new = repr(single_forward(new, window))
        assert want_old != want_new
        seen = {repr(r) for r in results}
        # every response matches exactly one complete checkpoint — a torn
        # read during the swap would produce a third value
        assert seen <= {want_old, want_new}
        assert want_new in seen


class TestMetrics:
    def test_counters_and_render(self):
        metrics = ServerMetrics()
        for code, lat in ((200, 0.01), (200, 0.02), (404, None), (503, None)):
            metrics.observe_request(code, lat)
        metrics.observe_batch(4)
        metrics.observe_batch(4)
        metrics.observe_batch(1)
        metrics.set_queue_depth_fn(lambda: 7)

        snap = metrics.snapshot()
        assert snap["requests_by_code"] == {200: 2, 404: 1, 503: 1}
        assert snap["requests_by_class"] == {"2xx": 2, "4xx": 1, "5xx": 1}
        assert snap["batch_sizes"] == {4: 2, 1: 1}
        assert snap["queue_depth"] == 7

        text = metrics.render()
        assert 'repro_requests_total{code="200",class="2xx"} 2' in text
        assert "repro_queue_depth 7" in text
        assert 'repro_batch_size_bucket{le="4"}' in text
        assert 'repro_request_latency_seconds{quantile="0.99"}' in text

    def test_quantiles_ordered(self):
        metrics = ServerMetrics()
        rng = np.random.default_rng(0)
        for lat in rng.uniform(0.001, 0.2, size=500):
            metrics.observe_request(200, float(lat))
        q = metrics.latency_quantiles()
        assert q[0.5] <= q[0.95] <= q[0.99]

    def test_render_golden(self):
        """The registry-backed renderer is byte-identical to the original.

        This literal was captured from the pre-registry ``ServerMetrics``
        (PR 4): the refactor onto ``repro.obs.metrics`` primitives must
        not move a single byte of the exposition for existing series.
        """
        metrics = ServerMetrics()
        metrics.observe_request(200, 0.01)
        metrics.observe_request(200, 0.3)
        metrics.observe_request(404)
        metrics.observe_request(503)
        metrics.observe_batch(1)
        metrics.observe_batch(4)
        metrics.observe_batch(4)
        metrics.set_queue_depth_fn(lambda: 3)
        expected = "\n".join([
            "# HELP repro_requests_total HTTP requests served, by status code.",
            "# TYPE repro_requests_total counter",
            'repro_requests_total{code="200",class="2xx"} 2',
            'repro_requests_total{code="404",class="4xx"} 1',
            'repro_requests_total{code="503",class="5xx"} 1',
            "# HELP repro_requests_class_total HTTP requests, by status class.",
            "# TYPE repro_requests_class_total counter",
            'repro_requests_class_total{class="2xx"} 2',
            'repro_requests_class_total{class="4xx"} 1',
            'repro_requests_class_total{class="5xx"} 1',
            "# HELP repro_queue_depth Windows waiting in the batcher queue.",
            "# TYPE repro_queue_depth gauge",
            "repro_queue_depth 3",
            "# HELP repro_batch_size Executed micro-batch sizes.",
            "# TYPE repro_batch_size histogram",
            'repro_batch_size_bucket{le="1"} 1',
            'repro_batch_size_bucket{le="4"} 3',
            'repro_batch_size_bucket{le="+Inf"} 3',
            "repro_batch_size_sum 9",
            "repro_batch_size_count 3",
            "# HELP repro_request_latency_seconds Forecast request latency.",
            "# TYPE repro_request_latency_seconds histogram",
            'repro_request_latency_seconds_bucket{le="0.001"} 0',
            'repro_request_latency_seconds_bucket{le="0.0025"} 0',
            'repro_request_latency_seconds_bucket{le="0.005"} 0',
            'repro_request_latency_seconds_bucket{le="0.01"} 1',
            'repro_request_latency_seconds_bucket{le="0.025"} 1',
            'repro_request_latency_seconds_bucket{le="0.05"} 1',
            'repro_request_latency_seconds_bucket{le="0.1"} 1',
            'repro_request_latency_seconds_bucket{le="0.25"} 1',
            'repro_request_latency_seconds_bucket{le="0.5"} 2',
            'repro_request_latency_seconds_bucket{le="1.0"} 2',
            'repro_request_latency_seconds_bucket{le="2.5"} 2',
            'repro_request_latency_seconds_bucket{le="5.0"} 2',
            'repro_request_latency_seconds_bucket{le="+Inf"} 2',
            "repro_request_latency_seconds_sum 0.310000",
            "repro_request_latency_seconds_count 2",
            'repro_request_latency_seconds{quantile="0.5"} 0.010000',
            'repro_request_latency_seconds{quantile="0.95"} 0.300000',
            'repro_request_latency_seconds{quantile="0.99"} 0.300000',
        ]) + "\n"
        assert metrics.render() == expected


class _Client:
    """Minimal JSON client for the end-to-end tests."""

    def __init__(self, host, port):
        self.conn = http.client.HTTPConnection(host, port, timeout=30)

    def request(self, method, path, payload=None, raw=None):
        body = raw if raw is not None else (
            json.dumps(payload).encode() if payload is not None else None)
        self.conn.request(method, path, body,
                          {"Content-Type": "application/json"})
        resp = self.conn.getresponse()
        data = resp.read()
        try:
            parsed = json.loads(data)
        except (ValueError, UnicodeDecodeError):
            parsed = data.decode("utf-8", "replace")
        return resp.status, parsed, dict(resp.getheaders())


@pytest.fixture
def server(registry):
    config = ServingConfig(port=0, max_batch_size=4, max_wait_ms=1.0,
                           queue_size=32, default_timeout_ms=10000.0)
    srv = build_server(config, registry)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=10)
    srv.drain()


class TestHTTPServer:
    def test_forecast_single_window_bitwise(self, server, registry):
        host, port = server.server_address[:2]
        window = periodic_window(6)
        status, body, _ = _Client(host, port).request(
            "POST", "/v1/forecast", {"window": window.tolist()})
        assert status == 200
        assert body["model"] == "dlinear" and body["version"] == 1
        want = single_forward(registry.get("dlinear"), window)
        # JSON repr round-trips float64 exactly, so even over HTTP the
        # batched prediction is bit-identical to the reference forward
        got = np.asarray(body["prediction"], dtype=np.float64)
        assert got.shape == (PRED, CIN)
        assert repr(got) == repr(want)

    def test_forecast_client_batch(self, server):
        host, port = server.server_address[:2]
        windows = [periodic_window(4, seed=i).tolist() for i in range(3)]
        status, body, _ = _Client(host, port).request(
            "POST", "/v1/forecast", {"windows": windows})
        assert status == 200
        assert len(body["predictions"]) == 3
        assert "prediction" not in body

    def test_structured_errors(self, server):
        host, port = server.server_address[:2]
        client = _Client(host, port)
        status, body, _ = client.request(
            "POST", "/v1/forecast",
            {"model": "nope", "window": periodic_window(4).tolist()})
        assert status == 404 and body["error"]["type"] == "unknown_model"

        status, body, _ = client.request(
            "POST", "/v1/forecast", {"window": [[1.0] * CIN] * (SEQ - 1)})
        assert status == 400 and body["error"]["type"] == "invalid_window"

        status, body, _ = client.request(
            "POST", "/v1/forecast", raw=b"{not json")
        assert status == 400 and body["error"]["type"] == "invalid_json"

        status, body, _ = client.request("POST", "/v1/forecast", {})
        assert status == 400 and body["error"]["type"] == "invalid_request"

        status, body, _ = client.request(
            "POST", "/v1/forecast",
            {"window": periodic_window(4).tolist(), "timeout_ms": "soon"})
        assert status == 400

    def test_models_health_metrics_endpoints(self, server):
        host, port = server.server_address[:2]
        client = _Client(host, port)
        status, body, _ = client.request("GET", "/healthz")
        assert status == 200 and body["status"] == "ok"

        status, body, _ = client.request("GET", "/v1/models")
        assert status == 200
        assert body["models"][0]["name"] == "dlinear"
        assert body["models"][0]["batch_policy"] == "stack"

        client.request("POST", "/v1/forecast",
                       {"window": periodic_window(4).tolist()})
        status, text, headers = client.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_requests_total" in text
        assert 'quantile="0.95"' in text
        assert "repro_batch_size_count" in text
        assert "repro_queue_depth" in text

        status, _, _ = client.request("GET", "/nope")
        assert status == 404

    def test_overload_returns_503_with_retry_after(self, registry):
        # a batcher that never executes, with a one-slot queue: the second
        # request must be shed immediately, not queued behind the first
        metrics = ServerMetrics()
        from repro.serving.server import ForecastServer
        config = ServingConfig(port=0, queue_size=1)
        batcher = MicroBatcher(registry, queue_size=1, metrics=metrics,
                               start=False)
        srv = ForecastServer(config, registry, batcher=batcher,
                             metrics=metrics)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = srv.server_address[:2]
            batcher.submit("dlinear", periodic_window(4))  # occupy the slot
            status, body, headers = _Client(host, port).request(
                "POST", "/v1/forecast",
                {"window": periodic_window(5).tolist(), "timeout_ms": 500})
            assert status == 503
            assert body["error"]["type"] == "overloaded"
            assert "Retry-After" in headers
            # the handler records the request just after sending the
            # response bytes, so give the counter a moment to land
            deadline = time.monotonic() + 2.0
            while (metrics.snapshot()["requests_by_code"].get(503) != 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert metrics.snapshot()["requests_by_code"].get(503) == 1
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            batcher.close(drain=False)
            srv.server_close()

    def test_expired_deadline_returns_504(self, registry):
        from repro.serving.server import ForecastServer
        config = ServingConfig(port=0)
        batcher = MicroBatcher(registry, start=False)  # never executes
        srv = ForecastServer(config, registry, batcher=batcher)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = srv.server_address[:2]
            status, body, _ = _Client(host, port).request(
                "POST", "/v1/forecast",
                {"window": periodic_window(4).tolist(), "timeout_ms": 50})
            assert status == 504
            assert body["error"]["type"] == "deadline_exceeded"
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            batcher.close(drain=False)
            srv.server_close()

    def test_drain_completes_inflight_requests(self, registry):
        config = ServingConfig(port=0, max_batch_size=4, max_wait_ms=50.0)
        srv = build_server(config, registry)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.server_address[:2]

        outcome = {}

        def slow_request():
            outcome["status"], outcome["body"], _ = _Client(
                host, port).request(
                    "POST", "/v1/forecast",
                    {"window": periodic_window(4).tolist()})

        req = threading.Thread(target=slow_request)
        req.start()
        time.sleep(0.01)             # request is likely waiting in the batch
        srv.shutdown()
        thread.join(timeout=10)
        srv.drain()                  # must flush the pending batch
        req.join(timeout=10)
        assert outcome.get("status") == 200
        assert np.asarray(outcome["body"]["prediction"]).shape == (PRED, CIN)


class TestServingTrace:
    """Request spans: X-Trace-Id header + batcher trace propagation."""

    def test_no_header_without_observer(self, server):
        from repro.obs import runtime as obs_runtime
        before = obs_runtime.swap(None)  # mask any session-level observer
        try:
            host, port = server.server_address[:2]
            _, _, headers = _Client(host, port).request("GET", "/healthz")
        finally:
            obs_runtime.swap(before)
        assert "X-Trace-Id" not in headers

    def test_x_trace_id_links_request_and_batch_spans(self, registry,
                                                      tmp_path):
        from repro.obs import runtime as obs_runtime
        from repro.obs.events import read_events

        trace_path = str(tmp_path / "serve.jsonl")
        obs_runtime.configure(path=trace_path)
        config = ServingConfig(port=0, max_batch_size=4, max_wait_ms=1.0,
                               queue_size=32, default_timeout_ms=10000.0)
        srv = build_server(config, registry)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = srv.server_address[:2]
            status, _, headers = _Client(host, port).request(
                "POST", "/v1/forecast",
                {"window": periodic_window(6).tolist()})
            assert status == 200
            trace_id = headers["X-Trace-Id"]
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            srv.drain()
            obs_runtime.shutdown()

        recs = read_events(trace_path)
        reqs = [r for r in recs if r["kind"] == "span_end"
                and r["name"] == "http.request"]
        assert [r for r in reqs if r["trace"] == trace_id], \
            "X-Trace-Id must match the request span's trace id"
        span = next(r for r in reqs if r["trace"] == trace_id)
        assert span["attrs"]["status_code"] == 200
        assert span["attrs"]["method"] == "POST"

        batches = [r for r in recs if r["name"] == "batch.execute"]
        assert batches, "the stacked forward must emit a batch.execute span"
        linked = [b for b in batches
                  if trace_id in b["attrs"]["member_traces"]]
        assert linked, "batch.execute must link its member request traces"
        assert span["span"] in linked[0]["attrs"]["member_spans"]


def make_task_ckpt(path, task, model_name="DLinear", seed=0):
    """Checkpoint for any registered task, with its required metadata."""
    set_seed(seed)
    meta = {"model": model_name, "dataset": "unit", "task": task,
            "seq_len": SEQ, "c_in": CIN, "preset": "tiny"}
    if task == "forecast":
        model = build_model(model_name, seq_len=SEQ, pred_len=PRED, c_in=CIN,
                            task="forecast", preset="tiny")
        meta["pred_len"] = PRED
    elif task in ("imputation", "anomaly"):
        model = build_model(model_name, seq_len=SEQ, pred_len=SEQ, c_in=CIN,
                            task="imputation", preset="tiny")
        meta["pred_len"] = SEQ
        if task == "imputation":
            meta["mask_ratio"] = 0.25
        else:
            meta["anomaly_ratio"] = 0.01
    else:  # classification
        from repro.tasks import SeriesClassifier
        backbone = build_model("TS3Net", seq_len=SEQ, pred_len=SEQ, c_in=CIN,
                               task="classification", preset="tiny")
        model = SeriesClassifier(backbone, d_model=backbone.config.d_model,
                                 num_classes=3)
        meta.update(model="TS3Net", pred_len=SEQ,
                    num_classes=3, d_model=backbone.config.d_model)
    save_checkpoint(model, str(path), metadata=meta)
    return str(path)


@pytest.fixture
def task_server(tmp_path):
    """One server hosting a model per registered task endpoint."""
    reg = ModelRegistry()
    for task in ("forecast", "imputation", "anomaly", "classification"):
        reg.load(task + "-m", make_task_ckpt(tmp_path / f"{task}.npz", task))
    config = ServingConfig(port=0, max_batch_size=4, max_wait_ms=1.0,
                           queue_size=32, default_timeout_ms=10000.0)
    srv = build_server(config, reg)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv, reg
    srv.shutdown()
    thread.join(timeout=10)
    srv.drain()


class TestPerTaskEndpoints:
    """Every registered TaskSpec gets a POST /v1/<task> endpoint, and the
    batched outputs stay bit-identical to single forwards per task."""

    def test_imputation_reconstruction_bitwise(self, task_server):
        srv, reg = task_server
        host, port = srv.server_address[:2]
        window = periodic_window(6)
        status, body, _ = _Client(host, port).request(
            "POST", "/v1/imputation",
            {"model": "imputation-m", "window": window.tolist()})
        assert status == 200
        assert body["seq_len"] == SEQ
        want = single_forward(reg.get("imputation-m"), window)
        got = np.asarray(body["reconstruction"], dtype=np.float64)
        assert got.shape == (SEQ, CIN)
        assert repr(got) == repr(want)

    def test_anomaly_scores_bitwise(self, task_server):
        srv, reg = task_server
        host, port = srv.server_address[:2]
        window = periodic_window(5)
        status, body, _ = _Client(host, port).request(
            "POST", "/v1/anomaly",
            {"model": "anomaly-m", "window": window.tolist(),
             "anomaly_ratio": 0.1})
        assert status == 200
        recon = single_forward(reg.get("anomaly-m"), window)
        want = np.abs(recon - window).mean(axis=-1)
        got = np.asarray(body["score"]["scores"], dtype=np.float64)
        assert repr(got) == repr(want)
        threshold = float(np.quantile(want, 0.9))
        assert body["score"]["threshold"] == threshold
        assert body["score"]["detections"] == (want > threshold).tolist()

    def test_anomaly_client_batch_matches_singles(self, task_server):
        srv, reg = task_server
        host, port = srv.server_address[:2]
        windows = [periodic_window(4, seed=i) for i in range(3)]
        status, body, _ = _Client(host, port).request(
            "POST", "/v1/anomaly",
            {"model": "anomaly-m", "windows": [w.tolist() for w in windows]})
        assert status == 200
        assert len(body["scores"]) == 3
        entry = reg.get("anomaly-m")
        for row, window in zip(body["scores"], windows):
            want = np.abs(single_forward(entry, window) - window).mean(axis=-1)
            assert repr(np.asarray(row["scores"])) == repr(want)

    def test_anomaly_invalid_ratio_is_400(self, task_server):
        srv, _ = task_server
        host, port = srv.server_address[:2]
        status, body, _ = _Client(host, port).request(
            "POST", "/v1/anomaly",
            {"model": "anomaly-m", "window": periodic_window(4).tolist(),
             "anomaly_ratio": 1.5})
        assert status == 400
        assert body["error"]["type"] == "invalid_request"
        assert "anomaly_ratio" in body["error"]["detail"]

    def test_classification_label_bitwise(self, task_server):
        srv, reg = task_server
        host, port = srv.server_address[:2]
        window = periodic_window(7)
        status, body, _ = _Client(host, port).request(
            "POST", "/v1/classification",
            {"model": "classification-m", "window": window.tolist()})
        assert status == 200
        logits = single_forward(reg.get("classification-m"), window)
        assert body["classification"]["label"] == int(np.argmax(logits))
        got = np.asarray(body["classification"]["logits"], dtype=np.float64)
        assert repr(got) == repr(logits)

    def test_unknown_task_endpoint_names_known(self, task_server):
        srv, _ = task_server
        host, port = srv.server_address[:2]
        status, body, _ = _Client(host, port).request(
            "POST", "/v1/nonsense",
            {"window": periodic_window(4).tolist()})
        assert status == 404
        assert body["error"]["type"] == "unknown_task"
        for task in ("forecast", "imputation", "anomaly", "classification"):
            assert f"/v1/{task}" in body["error"]["detail"]

    def test_task_mismatch_is_400(self, task_server):
        srv, _ = task_server
        host, port = srv.server_address[:2]
        status, body, _ = _Client(host, port).request(
            "POST", "/v1/forecast",
            {"model": "imputation-m", "window": periodic_window(4).tolist()})
        assert status == 400
        assert body["error"]["type"] == "task_mismatch"
        assert "/v1/imputation" in body["error"]["detail"]

    def test_default_model_resolved_per_task(self, task_server):
        # Four models are registered but each task has exactly one, so a
        # request without "model" must resolve to that task's model.
        srv, _ = task_server
        host, port = srv.server_address[:2]
        status, body, _ = _Client(host, port).request(
            "POST", "/v1/imputation",
            {"window": periodic_window(6).tolist()})
        assert status == 200
        assert body["model"] == "imputation-m"
