"""Tests covering every baseline model through the registry."""

import numpy as np
import pytest

from repro.autodiff import Tensor, mse_loss
from repro.baselines import (
    ABLATION_NAMES, MODEL_NAMES, TSD_NAMES, build_model, paper_d_model,
)
from repro.baselines.common import InstanceNorm, TimeProjectionHead

ALL_NAMES = MODEL_NAMES + TSD_NAMES + ABLATION_NAMES


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(3)
    return rng.standard_normal((2, 32, 4))


class TestRegistry:
    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("LSTM", 32, 16, 4)

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            build_model("DLinear", 32, 16, 4, preset="huge")

    def test_paper_d_model_rule(self):
        # Table III: d_model = min(max(2^ceil(log2 C), d_min), d_max)
        assert paper_d_model(7) == 32           # 2^3=8 < d_min=32
        assert paper_d_model(321) == 512        # 2^9=512
        assert paper_d_model(862) == 512        # capped at d_max
        assert paper_d_model(7, task="imputation") == 64
        assert paper_d_model(321, task="imputation") == 128

    def test_override_plumbs_through(self, batch):
        m = build_model("TS3Net", 32, 16, 4, num_scales=5)
        assert m.config.num_scales == 5


class TestForecastShapes:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_output_shape(self, batch, name):
        model = build_model(name, seq_len=32, pred_len=16, c_in=4)
        out = model(Tensor(batch))
        assert out.shape == (2, 16, 4), name

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_output_finite(self, batch, name):
        model = build_model(name, seq_len=32, pred_len=16, c_in=4)
        model.eval()
        out = model(Tensor(batch))
        assert np.isfinite(out.data).all(), name


class TestImputationShapes:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_output_matches_window(self, batch, name):
        model = build_model(name, seq_len=32, pred_len=32, c_in=4,
                            task="imputation")
        out = model(Tensor(batch))
        assert out.shape == (2, 32, 4), name


class TestTrainability:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_loss_backward_produces_gradients(self, batch, name):
        model = build_model(name, seq_len=32, pred_len=8, c_in=4)
        target = np.zeros((2, 8, 4))
        loss = mse_loss(model(Tensor(batch)), target)
        loss.backward()
        with_grad = sum(1 for p in model.parameters() if p.grad is not None)
        assert with_grad == len(model.parameters()), name

    @pytest.mark.parametrize("name", ["DLinear", "PatchTST", "TimesNet",
                                      "MICN", "TS3Net"])
    def test_one_adam_step_changes_output(self, batch, name):
        from repro.optim import Adam
        model = build_model(name, seq_len=32, pred_len=8, c_in=4)
        model.eval()
        before = model(Tensor(batch)).data.copy()
        model.train()
        opt = Adam(model.parameters(), lr=1e-2)
        loss = mse_loss(model(Tensor(batch)), np.zeros((2, 8, 4)))
        model.zero_grad()
        loss.backward()
        opt.step()
        model.eval()
        after = model(Tensor(batch)).data
        assert not np.allclose(before, after), name


class TestCommonPieces:
    def test_time_projection_head(self, rng):
        head = TimeProjectionHead(seq_len=10, out_len=4, d_model=6, c_out=2)
        out = head(Tensor(rng.standard_normal((3, 10, 6))))
        assert out.shape == (3, 4, 2)

    def test_instance_norm_roundtrip(self, rng):
        norm = InstanceNorm()
        x = Tensor(rng.standard_normal((2, 12, 3)) * 5 + 2)
        normed = norm.normalize(x)
        np.testing.assert_allclose(normed.data.mean(axis=1), 0.0, atol=1e-9)
        restored = norm.denormalize(normed)
        np.testing.assert_allclose(restored.data, x.data, rtol=1e-9)


class TestModelSpecifics:
    def test_dlinear_is_linear_in_input(self, rng):
        """DLinear has no nonlinearity: f(2x) == 2 f(x) up to bias terms."""
        model = build_model("DLinear", 24, 8, 2)
        model.eval()
        x = rng.standard_normal((1, 24, 2))
        f_x = model(Tensor(x)).data
        f_2x = model(Tensor(2 * x)).data
        f_0 = model(Tensor(np.zeros_like(x))).data
        np.testing.assert_allclose(f_2x - f_0, 2 * (f_x - f_0), rtol=1e-6)

    def test_patchtst_patch_count(self):
        model = build_model("PatchTST", 32, 8, 2, patch_len=16, stride=8)
        assert model.num_patches == 3

    def test_patchtst_short_sequence_clamps_patch(self):
        model = build_model("PatchTST", 8, 4, 2, patch_len=16, stride=8)
        out = model(Tensor(np.zeros((1, 8, 2))))
        assert out.shape == (1, 4, 2)

    def test_lightts_chunk_divisibility(self):
        model = build_model("LightTS", 30, 8, 2, chunk_size=8)
        # 30 % 8 != 0, so the model must fall back to a divisor.
        assert 30 % model.chunk_size == 0

    def test_micn_branch_scales(self):
        model = build_model("MICN", 32, 8, 2, scales=(4, 8))
        assert len(model.branches) == 2

    def test_informer_distillation_shortens(self, batch):
        model = build_model("Informer", 32, 8, 4, num_layers=2)
        out = model(Tensor(batch))
        assert out.shape == (2, 8, 4)

    def test_ts3net_ablations_differ_from_full(self, batch):
        full = build_model("TS3Net", 32, 8, 4)
        wo_td = build_model("TS3Net-w/o-TD", 32, 8, 4)
        assert full.config.use_td and not wo_td.config.use_td
        wo_tf = build_model("TS3Net-w/o-TFBlock", 32, 8, 4)
        assert wo_tf.config.tf_mode == "replicate"
