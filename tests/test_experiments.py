"""Tests for the experiment harness: scales, result tables, runner, figures."""

import json

import numpy as np
import pytest

from repro.experiments import (
    ResultTable, SCALES, format_table3, get_scale, run_forecast_cell,
    run_imputation_cell,
)
from repro.experiments import table2
from repro.experiments.configs import Scale
from repro.experiments.plotting import ascii_heatmap, ascii_lineplot, save_csv


# A micro scale so runner tests finish in ~a second per cell.
SCALES.setdefault("micro", Scale(
    name="micro", n_steps=400, seq_len=24, pred_lens=(8,), ili_seq_len=24,
    ili_pred_lens=(8,), epochs=1, batch_size=8, max_train_batches=2,
    max_eval_batches=1, preset="tiny", lr=2e-3, num_scales=4))


class TestScales:
    def test_known_scales(self):
        for name in ("tiny", "small", "paper"):
            assert get_scale(name).name == name

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_paper_scale_matches_table3(self):
        sc = get_scale("paper")
        assert sc.seq_len == 96
        assert sc.pred_lens == (96, 192, 336, 720)
        assert sc.ili_pred_lens == (24, 36, 48, 60)
        assert sc.num_scales == 100
        assert sc.epochs == 10

    def test_ili_windows(self):
        sc = get_scale("paper")
        seq, preds = sc.windows_for("ILI")
        assert seq == 36 and preds == (24, 36, 48, 60)
        seq, preds = sc.windows_for("ETTh1")
        assert seq == 96

    def test_paper_steps_from_split_sizes(self):
        sc = get_scale("paper")
        assert sc.steps_for("ETTh1") == 8545 + 2881 + 2881

    def test_table3_renders(self):
        text = format_table3()
        assert "Imputation" in text and "100" in text


class TestResultTable:
    def make(self):
        t = ResultTable("demo")
        t.add("ETTh1", 96, "A", {"mse": 0.5, "mae": 0.4})
        t.add("ETTh1", 96, "B", {"mse": 0.3, "mae": 0.6})
        t.add("ETTh1", 192, "A", {"mse": 0.7, "mae": 0.5})
        t.add("ETTh1", 192, "B", {"mse": 0.9, "mae": 0.8})
        return t

    def test_get(self):
        t = self.make()
        assert t.get("ETTh1", 96, "A")["mse"] == 0.5

    def test_winners_per_metric(self):
        t = self.make()
        assert t.winners(("ETTh1", 96), "mse") == "B"
        assert t.winners(("ETTh1", 96), "mae") == "A"

    def test_first_place_counts(self):
        t = self.make()
        counts = t.first_place_counts()
        assert counts["A"] == 3 and counts["B"] == 1

    def test_average_row(self):
        t = self.make()
        avg = t.average_row("ETTh1")
        assert avg["A"]["mse"] == pytest.approx(0.6)

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "demo" in text and "Avg" in text and "1st Count" in text

    def test_missing_cells_render_dash(self):
        t = self.make()
        t.add("ETTh2", 96, "A", {"mse": 1.0, "mae": 1.0})
        assert "-" in t.render()

    def test_json_roundtrip(self, tmp_path):
        t = self.make()
        path = tmp_path / "results.json"
        t.save_json(str(path))
        loaded = ResultTable.from_dict(json.loads(path.read_text()))
        assert loaded.get("ETTh1", 96, "B")["mae"] == 0.6
        assert loaded.models == t.models


class TestRunnerCells:
    def test_forecast_cell(self):
        out = run_forecast_cell("DLinear", "ETTh1", 8, scale="micro")
        assert np.isfinite(out["mse"]) and np.isfinite(out["mae"])

    def test_forecast_cell_with_noise(self):
        out = run_forecast_cell("DLinear", "ETTh1", 8, scale="micro",
                                noise_rho=0.05)
        assert np.isfinite(out["mse"])

    def test_forecast_cell_with_override(self):
        out = run_forecast_cell("TS3Net", "ETTh1", 8, scale="micro",
                                model_overrides={"num_scales": 3})
        assert np.isfinite(out["mse"])

    def test_imputation_cell(self):
        out = run_imputation_cell("DLinear", "ETTm1", 0.25, scale="micro")
        assert np.isfinite(out["mse"])

    def test_cells_deterministic(self):
        a = run_forecast_cell("DLinear", "ETTh2", 8, scale="micro", seed=4)
        b = run_forecast_cell("DLinear", "ETTh2", 8, scale="micro", seed=4)
        assert a["mse"] == pytest.approx(b["mse"], rel=1e-9)

    def test_table2_describes_all(self):
        text = table2.describe("micro")
        for name in ("ETTm1", "Traffic", "ILI"):
            assert name in text


class TestTableModules:
    def test_table4_slice(self):
        from repro.experiments import table4
        t = table4.run(scale="micro", datasets=["ETTh1"], pred_lens=[8],
                       models=["DLinear", "LightTS"])
        assert t.get("ETTh1", 8, "DLinear")["mse"] >= 0
        assert len(t.models) == 2

    def test_table5_slice(self):
        from repro.experiments import table5
        t = table5.run(scale="micro", datasets=["ETTm1"], mask_ratios=[0.25],
                       models=["DLinear"])
        assert len(t.models) == 1

    def test_table6_slice(self):
        from repro.experiments import table6
        t = table6.run(scale="micro", datasets=["Exchange"], pred_lens=[8])
        assert set(t.models) == {"w/o TD", "w/o TF-Block", "w/o Both", "TS3Net"}

    def test_table7_slice(self):
        from repro.experiments import table7
        t = table7.run(scale="micro", datasets=["ETTm2"], pred_lens=[8])
        assert "TSD-CNN" in t.models and "TS3Net" in t.models

    def test_table8_slice(self):
        from repro.experiments import table8
        t = table8.run(scale="micro", datasets=["ETTh1"], pred_lens=[8],
                       noise_ratios=[0.0, 0.05])
        assert "rho=0%" in t.models and "rho=5%" in t.models

    def test_table9_slice(self):
        from repro.experiments import table9
        t = table9.run(scale="micro", datasets=["ETTh1"], pred_lens=[8],
                       lambdas=[3, 5])
        assert "lambda=3" in t.models


class TestPlotting:
    def test_lineplot_renders(self, rng):
        text = ascii_lineplot({"alpha": rng.standard_normal(50),
                               "beta": rng.standard_normal(50)})
        assert "alpha" in text and "\n" in text

    def test_lineplot_constant_series(self):
        text = ascii_lineplot({"c": np.ones(10)})
        assert "c = c" in text

    def test_heatmap_renders(self, rng):
        text = ascii_heatmap(rng.random((20, 40)), label="demo")
        assert "demo" in text

    def test_save_csv(self, tmp_path, rng):
        path = tmp_path / "out.csv"
        save_csv(str(path), {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert len(lines) == 3


class TestFigures:
    def test_figure5_panels(self):
        from repro.experiments.figures import figure5
        fig = figure5(dataset="ETTh1", scale="micro", window_len=96,
                      num_scales=4)
        assert fig.tf_distribution.shape[0] == 4
        # The window is clamped to the test split's length at micro scale.
        assert 0 < len(fig.original) <= 96
        assert fig.tf_distribution.shape[1] == len(fig.original)
        rendered = fig.render()
        assert "TF distribution" in rendered and "Spectrum gradient" in rendered

    def test_figure5_reconstruction(self):
        from repro.experiments.figures import figure5
        fig = figure5(dataset="ETTh2", scale="micro", window_len=64,
                      num_scales=4)
        total = fig.trend + fig.regular + fig.fluctuant_1d
        np.testing.assert_allclose(total, fig.original, rtol=1e-7, atol=1e-7)

    def test_figure3_showcase(self):
        from repro.experiments.figures import figure3
        result = figure3(scale="micro")
        assert result.prediction.shape == result.truth.shape
        assert "Electricity" in result.render()

    def test_figure4_showcase_csv(self, tmp_path):
        from repro.experiments.figures import figure4
        path = tmp_path / "fig4.csv"
        result = figure4(scale="micro", channel=0, csv_path=str(path))
        assert path.exists()
        assert result.dataset == "ETTm2"
