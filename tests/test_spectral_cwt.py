"""Tests for the CWT operator: scales, localisation, inverse, differentiability."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.spectral import CWTOperator, make_scales


class TestScales:
    def test_eq6_formula(self):
        s = make_scales(8)
        np.testing.assert_allclose(s, [2 * 8 / i for i in range(1, 9)])

    def test_descending(self):
        s = make_scales(16)
        assert (np.diff(s) < 0).all()

    def test_invalid(self):
        with pytest.raises(ValueError):
            make_scales(0)


@pytest.fixture(scope="module")
def op():
    return CWTOperator(seq_len=64, num_scales=8)


class TestForward:
    def test_shapes(self, op, rng):
        x = rng.standard_normal((3, 64))
        assert op.transform_array(x).shape == (3, 8, 64)
        assert op.amplitude_array(x).shape == (3, 8, 64)

    def test_frequency_localisation(self, op):
        # A pure sinusoid's energy should peak at the nearest analysed scale.
        t = np.arange(64)
        target_f = op.frequencies[4]
        x = np.sin(2 * np.pi * target_f * t)
        profile = op.amplitude_array(x).mean(axis=-1)
        assert abs(int(np.argmax(profile)) - 4) <= 1

    def test_linearity(self, op, rng):
        a = rng.standard_normal(64)
        b = rng.standard_normal(64)
        lhs = op.transform_array(2 * a + 3 * b)
        rhs = 2 * op.transform_array(a) + 3 * op.transform_array(b)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9)

    def test_amplitude_nonnegative(self, op, rng):
        assert (op.amplitude_array(rng.standard_normal(64)) >= 0).all()

    def test_zero_input_zero_output(self, op):
        np.testing.assert_allclose(op.transform_array(np.zeros(64)), 0.0)


class TestInverse:
    def test_reconstruction_of_bandlimited_signal(self, op):
        t = np.arange(64)
        x = (np.sin(2 * np.pi * t / 16) + 0.5 * np.sin(2 * np.pi * t / 24))
        recon = op.inverse_array(op.rotated_real_array(x))
        err = np.linalg.norm(recon - x) / np.linalg.norm(x)
        assert err < 0.25

    def test_inverse_linearity(self, op, rng):
        c1 = rng.standard_normal((8, 64))
        c2 = rng.standard_normal((8, 64))
        lhs = op.inverse_array(c1 + c2)
        rhs = op.inverse_array(c1) + op.inverse_array(c2)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9)

    def test_inverse_shape_batched(self, op, rng):
        coeffs = rng.standard_normal((2, 3, 8, 64))
        assert op.inverse_array(coeffs).shape == (2, 3, 64)

    def test_tensor_and_array_paths_agree(self, op, rng):
        coeffs = rng.standard_normal((2, 8, 64))
        np.testing.assert_allclose(op.inverse(Tensor(coeffs)).data,
                                   op.inverse_array(coeffs), rtol=1e-10)


class TestDifferentiable:
    def test_amplitude_matches_array_path(self, rng):
        small = CWTOperator(seq_len=20, num_scales=4)
        x = rng.standard_normal((2, 20))
        np.testing.assert_allclose(small.amplitude(Tensor(x)).data,
                                   small.amplitude_array(x), atol=1e-6)

    def test_amplitude_gradcheck(self, rng):
        small = CWTOperator(seq_len=12, num_scales=3)
        x = Tensor(rng.standard_normal((2, 12)), requires_grad=True)
        check_gradients(lambda x: small.amplitude(x), [x], atol=1e-3, rtol=1e-3)

    def test_inverse_gradcheck(self, rng):
        small = CWTOperator(seq_len=10, num_scales=3)
        c = Tensor(rng.standard_normal((2, 3, 10)), requires_grad=True)
        check_gradients(lambda c: small.inverse(c), [c])


class TestCache:
    def test_cached_returns_shared_instance(self):
        a = CWTOperator.cached(32, 4)
        b = CWTOperator.cached(32, 4)
        assert a is b

    def test_cache_key_includes_wavelet(self):
        a = CWTOperator.cached(32, 4, "cgau1")
        b = CWTOperator.cached(32, 4, "cgau2")
        assert a is not b

    def test_frequencies_below_nyquist(self):
        op = CWTOperator.cached(32, 6)
        assert (op.frequencies < 0.5).all()
