"""Tests for beyond-paper extensions: encode API, top-k S-GD, anomaly task,
and the extended sensitivity sweeps."""

import numpy as np
import pytest

from repro import TS3Net, TS3NetConfig, Tensor, set_seed
from repro.baselines import build_model
from repro.tasks import AnomalyResult, detect_anomalies, score_series


def tiny_model(**overrides):
    base = dict(seq_len=32, pred_len=8, c_in=3, d_model=8, num_blocks=1,
                num_scales=4, num_branches=1, d_ff=8, num_kernels=2,
                dropout=0.0)
    base.update(overrides)
    return TS3Net(TS3NetConfig(**base))


class TestEncodeAPI:
    def test_shape(self, rng):
        model = tiny_model()
        feats = model.encode(Tensor(rng.standard_normal((2, 32, 3))))
        assert feats.shape == (2, 32, 8)

    def test_encode_without_td(self, rng):
        model = tiny_model(use_td=False)
        feats = model.encode(Tensor(rng.standard_normal((2, 32, 3))))
        assert feats.shape == (2, 32, 8)

    def test_features_distinguish_inputs(self, rng):
        model = tiny_model()
        model.eval()
        a = model.encode(Tensor(rng.standard_normal((1, 32, 3)))).data
        b = model.encode(Tensor(rng.standard_normal((1, 32, 3)))).data
        assert not np.allclose(a, b)

    def test_encode_is_differentiable(self, rng):
        model = tiny_model()
        x = Tensor(rng.standard_normal((1, 32, 3)), requires_grad=True)
        model.encode(x).sum().backward()
        assert x.grad is not None


class TestTopKPeriods:
    def test_forward_with_topk(self, rng):
        model = tiny_model(top_k_periods=3)
        out = model(Tensor(rng.standard_normal((2, 32, 3))))
        assert out.shape == (2, 8, 3)

    def test_topk_changes_output(self, rng):
        x = rng.standard_normal((1, 32, 3))
        set_seed(3)
        m1 = tiny_model(top_k_periods=1)
        m1.eval()
        set_seed(3)
        m3 = tiny_model(top_k_periods=3)
        m3.eval()
        a = m1(Tensor(x)).data
        b = m3(Tensor(x)).data
        assert not np.allclose(a, b)

    def test_topk_gradients_flow(self, rng):
        model = tiny_model(top_k_periods=2)
        out = model(Tensor(rng.standard_normal((1, 32, 3))))
        out.sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestAnomalyTask:
    @pytest.fixture
    def scored_setup(self, rng):
        data = np.sin(np.arange(200) / 5.0)[:, None] * np.ones((1, 3))
        data = data + 0.05 * rng.standard_normal((200, 3))
        # Plant a large spike anomaly.
        data[120:123] += 6.0
        model = build_model("DLinear", seq_len=40, pred_len=40, c_in=3,
                            task="imputation")
        return model, data

    def test_score_shape_and_coverage(self, scored_setup):
        model, data = scored_setup
        scores = score_series(model, data, seq_len=40, stride=20)
        assert scores.shape == (200,)
        assert (scores >= 0).all()

    def test_detect_returns_result(self, scored_setup):
        model, data = scored_setup
        result = detect_anomalies(model, data, seq_len=40, anomaly_ratio=0.05)
        assert isinstance(result, AnomalyResult)
        assert result.detections.shape == (200,)
        assert 0.0 <= result.detection_rate() <= 0.2

    def test_invalid_ratio(self, scored_setup):
        model, data = scored_setup
        with pytest.raises(ValueError):
            detect_anomalies(model, data, seq_len=40, anomaly_ratio=1.5)

    def test_trained_model_flags_planted_spike(self, rng):
        """After training on clean data, the spike region scores highest."""
        from repro.data.dataset import SplitData, StandardScaler
        from repro.tasks import ImputationTask, TrainConfig, run_imputation

        t = np.arange(600)
        clean = np.sin(2 * np.pi * t / 20)[:, None] * np.ones((1, 3))
        clean = clean + 0.05 * rng.standard_normal((600, 3))
        scaler = StandardScaler().fit(clean[:400])
        split = SplitData(train=scaler.transform(clean[:400]),
                          val=scaler.transform(clean[400:500]),
                          test=scaler.transform(clean[500:]),
                          scaler=scaler, name="clean")
        set_seed(0)
        model = build_model("DLinear", seq_len=40, pred_len=40, c_in=3,
                            task="imputation")
        run_imputation(model, split, ImputationTask(
            seq_len=40, mask_ratio=0.25, batch_size=8, max_train_batches=10,
            max_eval_batches=2), TrainConfig(epochs=2, lr=5e-3))

        test = split.test.copy()
        test[40:43] += 8.0                      # inject the anomaly
        scores = score_series(model, test, seq_len=40, stride=10)
        spike_score = scores[40:43].mean()
        normal_score = np.concatenate([scores[:30], scores[60:]]).mean()
        assert spike_score > 2.0 * normal_score


class TestSensitivityModule:
    def test_unknown_knob(self):
        from repro.experiments import sensitivity
        with pytest.raises(KeyError):
            sensitivity.run("learning_rate_warmup", scale="micro")

    def test_num_branches_sweep(self):
        from repro.experiments import sensitivity
        table = sensitivity.run("num_branches", scale="micro",
                                datasets=["ETTh1"], pred_lens=[8],
                                values=[1, 2])
        assert "num_branches=1" in table.models
        assert "num_branches=2" in table.models

    def test_first_chunk_zero_sweep(self):
        from repro.experiments import sensitivity
        table = sensitivity.run("first_chunk_zero", scale="micro",
                                datasets=["Exchange"], pred_lens=[8])
        assert len(table.models) == 2
