"""Micro-benchmarks of the substrate: CWT, conv, attention, TS3Net steps.

These are classic repeated-timing benchmarks (unlike the table benches,
which run an experiment once); they track the cost of the pieces the
paper's model is built from.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, conv2d, mse_loss
from repro.baselines import build_model
from repro.nn import MultiHeadAttention
from repro.spectral import CWTOperator
from repro.utils import set_seed

RNG = np.random.default_rng(0)


def test_cwt_amplitude_forward(benchmark):
    op = CWTOperator.cached(96, 16)
    x = RNG.standard_normal((32, 96))
    out = benchmark(op.amplitude_array, x)
    assert out.shape == (32, 16, 96)


def test_cwt_inverse(benchmark):
    op = CWTOperator.cached(96, 16)
    coeffs = RNG.standard_normal((32, 16, 96))
    out = benchmark(op.inverse_array, coeffs)
    assert out.shape == (32, 96)


def test_conv2d_forward_backward(benchmark):
    x = Tensor(RNG.standard_normal((8, 16, 8, 48)), requires_grad=True)
    w = Tensor(RNG.standard_normal((16, 16, 3, 3)), requires_grad=True)

    def step():
        x.zero_grad()
        w.zero_grad()
        conv2d(x, w, padding=1).sum().backward()

    benchmark(step)
    assert x.grad is not None


def test_attention_forward(benchmark):
    set_seed(0)
    mha = MultiHeadAttention(32, 4, dropout=0.0)
    x = Tensor(RNG.standard_normal((8, 96, 32)))
    out = benchmark(mha, x)
    assert out.shape == (8, 96, 32)


@pytest.mark.parametrize("name", ["TS3Net", "DLinear", "PatchTST",
                                  "TimesNet", "MICN"])
def test_model_training_step(benchmark, name):
    """One optimiser-free forward+backward per model (Table IV cost driver)."""
    set_seed(0)
    model = build_model(name, seq_len=48, pred_len=24, c_in=7, preset="tiny")
    x = RNG.standard_normal((16, 48, 7))
    y = RNG.standard_normal((16, 24, 7))

    def step():
        model.zero_grad()
        mse_loss(model(Tensor(x)), y).backward()

    benchmark(step)
