"""Perf-regression harness for the substrate: CWT, conv, attention, models.

Two entry points share one suite of timed cases:

* ``pytest benchmarks/bench_substrate.py --benchmark-only`` — classic
  pytest-benchmark runs of each case;
* ``python benchmarks/bench_substrate.py`` — times every case directly
  (min/mean over rounds) and writes ``BENCH_substrate.json`` at the repo
  root, so successive PRs can track the substrate's trajectory and
  ``scripts/bench_compare.py`` can gate CI on >25% regressions.

The CWT cases run at the paper-scale shape ``(B=32, T=96, lambda=100)`` and
time both the FFT engine (the default) and the retained dense-matmul
reference; the JSON records their agreement (max relative error) and the
FFT speedup alongside the timings.

On top of the per-op cases, a *grid* section times an 8-cell tiny
Table-IV slice through the experiment engine four ways — serial, parallel
workers, cold result-cache, warm result-cache — and records the parallel
speedup, the warm/cold fraction, and whether parallel metrics matched the
serial reference bit-for-bit (all gated by ``scripts/bench_compare.py``).

A *compiled* section measures the capture/replay graph compiler against
the interpreted op graph with a drift-immune paired-ratio protocol and
records the forward/train-step speedups and the compiled peak
saved-bytes watermark (also gated by ``scripts/bench_compare.py``).
"""

import argparse
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

if __package__ is None and "repro" not in sys.modules:  # direct execution
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.autodiff import (
    CompiledForward, CompiledStep, GraphProfiler, Tensor, conv2d, mse_loss,
    no_grad,
)
from repro.baselines import build_model
from repro.core.tf_block import TFBlock
from repro.nn import MultiHeadAttention
from repro.spectral import CWTOperator
from repro.utils import set_seed

RNG = np.random.default_rng(0)
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_substrate.json")

# Paper-scale CWT shape (Table III defaults: lookback 96, lambda = 100).
CWT_BATCH, CWT_T, CWT_LAMBDA = 32, 96, 100
# Long-lookback shape where the O(lambda*T^2) vs O(lambda*T*log T) gap is
# decisive rather than marginal (336 is the common long-horizon lookback).
CWT_T_LONG = 336

BENCH_MODELS = ["TS3Net", "DLinear", "PatchTST", "TimesNet", "MICN"]


# ---------------------------------------------------------------------------
# Timed cases: each builder returns a zero-argument callable to time.
# ---------------------------------------------------------------------------

def case_cwt_amplitude_forward(engine: str, seq_len: int = CWT_T):
    op = CWTOperator.cached(seq_len, CWT_LAMBDA, engine=engine)
    x = RNG.standard_normal((CWT_BATCH, seq_len))
    return lambda: op.amplitude_array(x)


def case_cwt_amplitude_forward_f32():
    op = CWTOperator.cached(CWT_T, CWT_LAMBDA, engine="fft")
    x = RNG.standard_normal((CWT_BATCH, CWT_T)).astype(np.float32)
    return lambda: op.amplitude_array(x)


def case_cwt_amplitude_grad(engine: str):
    op = CWTOperator.cached(CWT_T, CWT_LAMBDA, engine=engine)
    x = Tensor(RNG.standard_normal((CWT_BATCH, CWT_T)), requires_grad=True)

    def step():
        x.zero_grad()
        op.amplitude(x).sum().backward()

    return step


def case_cwt_inverse():
    op = CWTOperator.cached(CWT_T, CWT_LAMBDA, engine="fft")
    coeffs = RNG.standard_normal((CWT_BATCH, CWT_LAMBDA, CWT_T))
    return lambda: op.inverse_array(coeffs)


def case_conv2d_forward_backward():
    x = Tensor(RNG.standard_normal((8, 16, 8, 48)), requires_grad=True)
    w = Tensor(RNG.standard_normal((16, 16, 3, 3)), requires_grad=True)

    def step():
        x.zero_grad()
        w.zero_grad()
        conv2d(x, w, padding=1).sum().backward()

    return step


def _make_tf_block():
    set_seed(0)
    block = TFBlock(seq_len=CWT_T, d_model=16, num_scales=32, num_branches=2,
                    d_ff=32)
    x = Tensor(RNG.standard_normal((8, CWT_T, 16)), requires_grad=True)
    return block, x


def case_tfblock_forward_backward():
    block, x = _make_tf_block()

    def step():
        block.zero_grad()
        x.zero_grad()
        block(x).sum().backward()

    return step


def bench_tfblock_profile() -> dict:
    """Per-op profile of a TF-Block step + the freeing policy's memory win.

    Two steps per policy: with the default activation freeing, step 1's
    saved tensors are released before step 2 records, so the peak retained
    watermark stays at ~one step; with ``retain_graph=True`` (graphs held
    alive) the activations pile up.  The freed/retained peak fraction is
    gated by ``scripts/bench_compare.py``.
    """
    block, x = _make_tf_block()

    def step(retain):
        block.zero_grad()
        x.zero_grad()
        out = block(x).sum()
        out.backward(retain_graph=retain)
        return out

    freeing = GraphProfiler()
    with freeing:
        for _ in range(2):
            step(retain=False)

    retaining = GraphProfiler()
    kept = []
    with retaining:
        for _ in range(2):
            kept.append(step(retain=True))

    summary = freeing.summary()
    op_totals = {
        name: {"calls": stats["calls"],
               "forward_s": stats["forward_s"],
               "backward_s": stats["backward_s"],
               "saved_bytes": stats["saved_bytes"]}
        for name, stats in sorted(summary["ops"].items())
    }
    facts = {
        "tfblock_profiled_op_types": len(op_totals),
        "tfblock_peak_saved_bytes_freed": freeing.peak_saved_bytes,
        "tfblock_peak_saved_bytes_retained": retaining.peak_saved_bytes,
        "tfblock_freed_over_retained":
            freeing.peak_saved_bytes / retaining.peak_saved_bytes,
    }
    return {"facts": facts, "op_totals": op_totals}


def case_attention_forward():
    set_seed(0)
    mha = MultiHeadAttention(32, 4, dropout=0.0)
    x = Tensor(RNG.standard_normal((8, 96, 32)))
    return lambda: mha(x)


def case_model_train_step(name: str):
    set_seed(0)
    model = build_model(name, seq_len=48, pred_len=24, c_in=7, preset="tiny")
    x = RNG.standard_normal((16, 48, 7))
    y = RNG.standard_normal((16, 24, 7))

    def step():
        model.zero_grad()
        mse_loss(model(Tensor(x)), y).backward()

    return step


# name -> (builder, rounds); rounds trade precision against harness runtime.
CASES = {
    "cwt_amplitude_forward_fft": (lambda: case_cwt_amplitude_forward("fft"), 20),
    "cwt_amplitude_forward_dense": (lambda: case_cwt_amplitude_forward("dense"), 20),
    "cwt_amplitude_forward_fft_T336": (
        lambda: case_cwt_amplitude_forward("fft", CWT_T_LONG), 10),
    "cwt_amplitude_forward_dense_T336": (
        lambda: case_cwt_amplitude_forward("dense", CWT_T_LONG), 5),
    "cwt_amplitude_forward_fft_f32": (case_cwt_amplitude_forward_f32, 20),
    "cwt_amplitude_grad_fft": (lambda: case_cwt_amplitude_grad("fft"), 10),
    "cwt_inverse": (case_cwt_inverse, 20),
    "conv2d_forward_backward": (case_conv2d_forward_backward, 10),
    "tfblock_forward_backward": (case_tfblock_forward_backward, 10),
    "attention_forward": (case_attention_forward, 10),
    **{f"train_step_{name}": ((lambda name=name: case_model_train_step(name)), 3)
       for name in BENCH_MODELS},
}


def _time_case(fn, rounds: int) -> dict:
    fn()  # warmup (also JIT-warms FFT plans / einsum paths)
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "min_s": min(samples),
        "mean_s": float(np.mean(samples)),
        "rounds": rounds,
    }


# ---------------------------------------------------------------------------
# Observability overhead: Trainer.fit with tracing off / stubbed out / on
# ---------------------------------------------------------------------------

OBS_FIT_ROUNDS = 5


def _obs_fit_harness():
    """A small TS3Net fit (2 epochs, list loaders) reused by every variant."""
    from repro.tasks.trainer import TrainConfig, Trainer

    set_seed(0)
    model = build_model("TS3Net", seq_len=32, pred_len=8, c_in=3,
                        preset="tiny")
    trainer = Trainer(model, TrainConfig(epochs=2, lr=1e-3))
    rng = np.random.default_rng(1)
    train_batches = [(rng.standard_normal((8, 32, 3)),
                      rng.standard_normal((8, 8, 3))) for _ in range(4)]
    val_batches = train_batches[:2]

    def step_fn(batch):
        x, y = batch
        pred = trainer.model(Tensor(x))
        return mse_loss(pred, y), pred.data, y, None

    return trainer, train_batches, val_batches, step_fn


def bench_obs() -> dict:
    """Cost of the tracing layer around ``Trainer.fit``.

    Three timings of the same tiny fit:

    * ``trainer_fit_uninstrumented`` — ``Trainer._fit(None, ...)`` directly,
      bypassing the ``obs.active()`` gate (the pre-observability code path);
    * ``trainer_fit_obs_off`` — the public ``fit()`` with no observer
      configured (the default for every user of the library);
    * ``trainer_fit_obs_on`` — ``fit()`` under a JSONL-writing observer.

    ``trainer_obs_disabled_overhead`` (off/uninstrumented) is the
    zero-cost-when-disabled contract and is gated at <= 2% by
    ``scripts/bench_compare.py``; the enabled ratio is informational.
    """
    from repro.obs import runtime as obs_runtime

    variants = {
        "trainer_fit_uninstrumented":
            lambda tr, a, b, fn: tr._fit(None, a, b, fn),
        "trainer_fit_obs_off":
            lambda tr, a, b, fn: tr.fit(a, b, fn),
        "trainer_fit_obs_on":
            lambda tr, a, b, fn: tr.fit(a, b, fn),
    }
    harness = {name: _obs_fit_harness() for name in variants}
    samples = {name: [] for name in variants}

    def run_one(name):
        trainer, train_b, val_b, step_fn = harness[name]
        if name == "trainer_fit_obs_on":
            start = time.perf_counter()
            variants[name](trainer, train_b, val_b, step_fn)
            return time.perf_counter() - start
        # off/uninstrumented variants must not see the observer
        previous = obs_runtime.swap(None)
        try:
            start = time.perf_counter()
            variants[name](trainer, train_b, val_b, step_fn)
            return time.perf_counter() - start
        finally:
            obs_runtime.swap(previous)

    with tempfile.TemporaryDirectory() as tmp:
        obs_runtime.configure(path=os.path.join(tmp, "bench_trace.jsonl"))
        try:
            for name in variants:            # warmup pass, untimed
                run_one(name)
            # Interleave rounds so slow machine-level drift (cache state,
            # frequency scaling) hits every variant equally instead of
            # biasing whichever ran last.
            for _ in range(OBS_FIT_ROUNDS):
                for name in variants:
                    samples[name].append(run_one(name))
        finally:
            obs_runtime.shutdown()

    timings = {
        name: {"min_s": min(vals), "mean_s": float(np.mean(vals)),
               "rounds": OBS_FIT_ROUNDS}
        for name, vals in samples.items()
    }
    baseline = timings["trainer_fit_uninstrumented"]
    disabled = timings["trainer_fit_obs_off"]
    enabled = timings["trainer_fit_obs_on"]
    facts = {
        "trainer_obs_disabled_overhead":
            disabled["min_s"] / baseline["min_s"],
        "trainer_obs_enabled_overhead":
            enabled["min_s"] / baseline["min_s"],
    }
    return {"timings": timings, "facts": facts}


# ---------------------------------------------------------------------------
# Trace store: footer-indexed reads over a rotated multi-segment log
# ---------------------------------------------------------------------------

TRACE_SEGMENT_BYTES = 128 << 10
TRACE_RESOURCE_RECORDS = 24_000
TRACE_SPAN_RECORDS = 400
TRACE_ROUNDS = 3


def bench_trace_store() -> dict:
    """Cost of ``repro trace --analyze`` on a rotated log: indexed vs full.

    Builds a rotated chain the way a long soak run would (a dense stream
    of ``resource`` samples with a burst of spans at the end), then times
    reading every record versus reading only the analysis kinds
    (spans/events) through the footer index.  Footers let whole
    resource-only segments be skipped without opening their bodies, so
    the indexed read must be decisively cheaper than the full scan —
    ``trace_indexed_over_full`` is gated by ``scripts/bench_compare.py``.
    """
    from repro.obs.events import record
    from repro.obs.report import ANALYSIS_KINDS
    from repro.obs.store import RotatingJsonlSink, TraceStore, load_records

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "soak.jsonl")
        sink = RotatingJsonlSink(path, max_segment_bytes=TRACE_SEGMENT_BYTES)
        ts = 1_000_000.0
        for i in range(TRACE_RESOURCE_RECORDS):
            ts += 0.05
            sink.emit(record("resource", "proc.sample",
                             {"rss_bytes": 100 << 20, "cpu_s": i * 0.01,
                              "cpu_pct": 37.5}, ts=ts))
        for i in range(TRACE_SPAN_RECORDS):
            ts += 0.01
            sink.emit(record("span_end", "http.request",
                             {"method": "POST", "path": "/v1/forecast",
                              "status_code": 200, "status": "ok"},
                             trace=f"t{i:06x}", span=f"s{i:06x}",
                             dur_s=0.004, ts=ts))
        sink.close()
        segments = len(TraceStore(path).segments())

        full = _time_case(lambda: load_records(path), TRACE_ROUNDS)
        indexed = _time_case(
            lambda: load_records(path, kinds=ANALYSIS_KINDS), TRACE_ROUNDS)
        spans_seen = len(load_records(path, kinds=ANALYSIS_KINDS))

    timings = {"trace_read_full": full, "trace_read_indexed": indexed}
    facts = {
        "trace_segments": segments,
        "trace_indexed_over_full": indexed["min_s"] / full["min_s"],
        "trace_indexed_reads_complete":
            bool(spans_seen == TRACE_SPAN_RECORDS),
    }
    return {"timings": timings, "facts": facts}


# ---------------------------------------------------------------------------
# Compiled execution: capture/replay vs the interpreted op graph
# ---------------------------------------------------------------------------

# The gated speedup facts are measured at a dispatch-bound shape (batch 1,
# short lookback): the compiler removes per-op Python interpretation —
# graph bookkeeping, kwargs re-binding, elementwise-chain fusion — and
# that cost is per *op*, not per element.  At production shapes the array
# arithmetic (identical on both sides by the bitwise contract) dominates
# and the ratio shrinks; those runs are recorded as informational facts.
COMPILED_PAIRS = 40
COMPILED_TRIALS = 3
COMPILED_GATE_SHAPE = dict(batch_size=1, seq_len=16, pred_len=8, c_in=3)
COMPILED_PROD_SHAPE = dict(batch_size=8, seq_len=32, pred_len=8, c_in=3)


def _paired_ratio(eager_fn, compiled_fn, pairs=COMPILED_PAIRS,
                  trials=COMPILED_TRIALS) -> float:
    """Eager/compiled speedup, robust to single-core clock drift.

    Timing two sequential blocks lets multi-percent frequency/cache drift
    land entirely on one side; alternating single calls and taking the
    median of the per-pair ratios (then the median over trials) cancels
    drift slower than one pair, which is the failure mode that made block
    timings on this suite disagree with themselves by ~20%.
    """
    medians = []
    for _ in range(trials):
        ratios = []
        for _ in range(pairs):
            t0 = time.perf_counter()
            eager_fn()
            t1 = time.perf_counter()
            compiled_fn()
            t2 = time.perf_counter()
            ratios.append((t1 - t0) / (t2 - t1))
        medians.append(float(np.median(ratios)))
    return float(np.median(medians))


def _compiled_train_pair(batch_size, seq_len, pred_len, c_in):
    """Build one trained-and-validated CompiledStep plus its timing fns."""
    set_seed(0)
    model = build_model("TS3Net", seq_len=seq_len, pred_len=pred_len,
                        c_in=c_in, preset="tiny")
    rng = np.random.default_rng(2)
    batch = (rng.standard_normal((batch_size, seq_len, c_in)),
             rng.standard_normal((batch_size, pred_len, c_in)))

    def step_fn(b):
        x, y = b
        return (mse_loss(model(Tensor(x)), y),)

    cstep = CompiledStep(model, step_fn)
    for _ in range(3):  # capture, bitwise validation, first replay
        cstep.step(batch)
    if cstep.disabled:
        raise RuntimeError(f"compiled step disabled: {cstep.disabled_reason}")
    return cstep, batch, step_fn


def _compiled_infer_pair():
    """Eval-mode forward: ``no_grad`` eager vs ``CompiledForward`` replay."""
    set_seed(0)
    model = build_model("TS3Net", seq_len=32, pred_len=8, c_in=3,
                        preset="tiny").eval()
    cf = CompiledForward(model)
    x = np.random.default_rng(3).standard_normal((1, 32, 3))
    for _ in range(3):
        cf.forward(x)
    if cf.disabled:
        raise RuntimeError(f"compiled forward disabled: {cf.disabled_reason}")

    def eager():
        with no_grad():
            model(Tensor(x))

    return eager, (lambda: cf.forward(x)), cf


def _profiled_fit_peak(compiled: bool) -> int:
    """Peak saved-activation watermark of the obs-harness fit."""
    trainer, train_b, val_b, step_fn = _obs_fit_harness()
    trainer.config.profile = True
    result = trainer.fit(train_b, val_b, step_fn, compiled=compiled)
    return int(result.profile["peak_saved_bytes"])


def bench_compiled() -> dict:
    """Compiled capture/replay vs the interpreted graph, paired protocol.

    Gated facts (``scripts/bench_compare.py``):

    * ``compiled_forward_speedup`` — graph-building eager forward vs
      ``CompiledGraph.run_forward`` at the dispatch-bound shape;
    * ``compiled_train_step_speedup`` — full eager step (zero_grad +
      forward + backward) vs ``CompiledStep.step`` replay.  Bitwise
      identity forces both engines through the same backward kernels, so
      this tops out well below the forward ratio — the gate is set
      accordingly;
    * ``compiled_peak_saved_bytes_ratio`` — compiled/eager peak retained
      activation bytes over an identical profiled fit (the buffer-pooled
      replay must not retain more than the eager freeing policy).
    """
    cstep, batch, step_fn = _compiled_train_pair(**COMPILED_GATE_SHAPE)
    graph = next(iter(cstep._graphs.values()))[0]  # the validated trace
    arrays = tuple(np.asarray(a) for a in batch)

    step_speedup = _paired_ratio(lambda: cstep._eager(batch),
                                 lambda: cstep.step(batch))
    forward_speedup = _paired_ratio(lambda: step_fn(batch),
                                    lambda: graph.run_forward(arrays))
    timings = {
        "compiled_train_step_b1": _time_case(lambda: cstep.step(batch), 20),
        "eager_train_step_b1": _time_case(lambda: cstep._eager(batch), 20),
    }
    stats = graph.stats()
    replays = cstep.replays

    cstep8, batch8, _ = _compiled_train_pair(**COMPILED_PROD_SHAPE)
    step8_speedup = _paired_ratio(lambda: cstep8._eager(batch8),
                                  lambda: cstep8.step(batch8),
                                  pairs=12, trials=1)

    infer_eager, infer_compiled, _cf = _compiled_infer_pair()
    infer_speedup = _paired_ratio(infer_eager, infer_compiled)

    eager_peak = _profiled_fit_peak(compiled=False)
    compiled_peak = _profiled_fit_peak(compiled=True)

    facts = {
        "compiled_forward_speedup": forward_speedup,
        "compiled_train_step_speedup": step_speedup,
        "compiled_train_step_speedup_batch8": step8_speedup,
        "compiled_infer_forward_speedup": infer_speedup,
        "compiled_validated": bool(cstep.validations >= 1
                                   and not cstep.disabled),
        "compiled_replays": replays,
        "compiled_instructions": stats["instructions"],
        "compiled_fused_ops": stats["fused_ops"],
        "compiled_ops_fused_away": stats["ops_fused_away"],
        "compiled_folded_instructions": stats["folded_instructions"],
        "compiled_pool_buffers": stats["pool_buffers"],
        "compiled_pool_bytes": stats["pool_bytes"],
        "eager_peak_saved_bytes": eager_peak,
        "compiled_peak_saved_bytes": compiled_peak,
        "compiled_peak_saved_bytes_ratio": compiled_peak / eager_peak,
    }
    return {"timings": timings, "facts": facts}


# ---------------------------------------------------------------------------
# Grid benchmark: an 8-cell tiny Table-IV slice through the engine
# ---------------------------------------------------------------------------

GRID_MODELS = ("DLinear", "LightTS")
GRID_DATASETS = ("ETTh1", "ETTh2")
GRID_HORIZONS = (12, 24)
GRID_WORKERS = 4


def bench_grid() -> dict:
    """Time the engine's serial / parallel / cold-cache / warm-cache paths."""
    from repro.experiments.configs import get_scale
    from repro.experiments.engine import forecast_cell, run_grid
    from repro.experiments.runner import get_dataset

    specs = [forecast_cell(m, d, h, scale="tiny")
             for m in GRID_MODELS for d in GRID_DATASETS for h in GRID_HORIZONS]
    # Pre-warm the in-memory dataset cache so every timed path measures
    # training, not synthetic data generation.
    for spec in specs:
        get_dataset(spec.dataset, get_scale(spec.scale), seed=spec.seed)

    serial = run_grid(specs, workers=1)
    parallel = run_grid(specs, workers=GRID_WORKERS)
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = run_grid(specs, workers=1, cache_dir=cache_dir)
        warm = run_grid(specs, workers=1, cache_dir=cache_dir)

    def entry(run):
        return {"min_s": run.seconds, "mean_s": run.seconds, "rounds": 1}

    timings = {
        "grid_tiny8_workers1": entry(serial),
        f"grid_tiny8_workers{GRID_WORKERS}": entry(parallel),
        "grid_tiny8_cold_cache": entry(cold),
        "grid_tiny8_warm_cache": entry(warm),
    }
    facts = {
        "grid_cells": len(specs),
        "grid_workers": GRID_WORKERS,
        "grid_parallel_speedup": serial.seconds / parallel.seconds,
        "grid_warm_over_cold": warm.seconds / cold.seconds,
        "grid_warm_cache_hits": warm.cache_hits,
        "grid_parallel_matches_serial": all(
            s["mse"] == p["mse"] and s["mae"] == p["mae"]
            for s, p in zip(serial.results, parallel.results)),
        "grid_usable_cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1),
    }
    return {"timings": timings, "facts": facts}


def _verify_fft_vs_dense() -> dict:
    """FFT/dense agreement + speedup facts recorded next to the timings."""
    facts = {}
    for tag, seq_len in (("", CWT_T), ("_T336", CWT_T_LONG)):
        fft = CWTOperator.cached(seq_len, CWT_LAMBDA, engine="fft")
        dense = CWTOperator.cached(seq_len, CWT_LAMBDA, engine="dense")
        x = RNG.standard_normal((CWT_BATCH, seq_len))
        a_fft, a_dense = fft.amplitude_array(x), dense.amplitude_array(x)
        max_rel_err = float(np.max(np.abs(a_fft - a_dense) / np.abs(a_dense)))
        facts[f"fft_dense_max_rel_err{tag}"] = max_rel_err
        facts[f"fft_dense_agree_rtol_1e-8{tag}"] = bool(
            np.allclose(a_fft, a_dense, rtol=1e-8, atol=1e-12))
        facts[f"fft_bank_bytes{tag}"] = fft.nbytes
        facts[f"dense_bank_bytes{tag}"] = dense.nbytes
    return facts


def run_suite(rounds_scale: float = 1.0, with_grid: bool = True) -> dict:
    timings = {}
    for name, (builder, rounds) in CASES.items():
        fn = builder()
        timings[name] = _time_case(fn, max(1, int(rounds * rounds_scale)))
        print(f"  {name:35s} min {timings[name]['min_s'] * 1e3:9.3f} ms  "
              f"mean {timings[name]['mean_s'] * 1e3:9.3f} ms")
    verification = _verify_fft_vs_dense()
    tf_profile = bench_tfblock_profile()
    verification.update(tf_profile["facts"])
    for tag in ("", "_T336"):
        fwd_fft = timings[f"cwt_amplitude_forward_fft{tag}"]["min_s"]
        fwd_dense = timings[f"cwt_amplitude_forward_dense{tag}"]["min_s"]
        verification[f"cwt_amplitude_fft_speedup_vs_dense{tag}"] = (
            fwd_dense / fwd_fft)
    obs_bench = bench_obs()
    timings.update(obs_bench["timings"])
    verification.update(obs_bench["facts"])
    for name in obs_bench["timings"]:
        print(f"  {name:35s} min {timings[name]['min_s'] * 1e3:9.3f} ms  "
              f"mean {timings[name]['mean_s'] * 1e3:9.3f} ms")
    trace_bench = bench_trace_store()
    timings.update(trace_bench["timings"])
    verification.update(trace_bench["facts"])
    for name in trace_bench["timings"]:
        print(f"  {name:35s} min {timings[name]['min_s'] * 1e3:9.3f} ms  "
              f"mean {timings[name]['mean_s'] * 1e3:9.3f} ms")
    compiled_bench = bench_compiled()
    timings.update(compiled_bench["timings"])
    verification.update(compiled_bench["facts"])
    for name in compiled_bench["timings"]:
        print(f"  {name:35s} min {timings[name]['min_s'] * 1e3:9.3f} ms  "
              f"mean {timings[name]['mean_s'] * 1e3:9.3f} ms")
    if with_grid:
        grid = bench_grid()
        timings.update(grid["timings"])
        verification.update(grid["facts"])
        for name in grid["timings"]:
            print(f"  {name:35s} min {timings[name]['min_s'] * 1e3:9.3f} ms")
    return {
        "meta": {
            "suite": "bench_substrate",
            "shapes": {"cwt": {"batch": CWT_BATCH, "seq_len": CWT_T,
                               "seq_len_long": CWT_T_LONG,
                               "num_scales": CWT_LAMBDA}},
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "verification": verification,
        "timings": timings,
        "tfblock_op_profile": tf_profile["op_totals"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=OUTPUT_PATH,
                        help="where to write the JSON report")
    parser.add_argument("--rounds-scale", type=float, default=1.0,
                        help="multiply every case's round count (CI can "
                             "lower this for speed)")
    parser.add_argument("--no-grid", action="store_true",
                        help="skip the experiment-grid benchmark section")
    args = parser.parse_args(argv)
    print("bench_substrate: timing substrate hot paths "
          f"(CWT at B={CWT_BATCH}, T={CWT_T}, lambda={CWT_LAMBDA})")
    report = run_suite(rounds_scale=args.rounds_scale,
                       with_grid=not args.no_grid)
    for tag, label in (("", f"T={CWT_T}"), ("_T336", f"T={CWT_T_LONG}")):
        speedup = report["verification"][
            f"cwt_amplitude_fft_speedup_vs_dense{tag}"]
        err = report["verification"][f"fft_dense_max_rel_err{tag}"]
        print(f"  FFT vs dense CWT amplitude speedup ({label}): "
              f"{speedup:.1f}x (max rel err {err:.2e})")
    ver = report["verification"]
    print(f"  TF-Block profile: {ver['tfblock_profiled_op_types']} op types; "
          f"peak saved bytes {ver['tfblock_peak_saved_bytes_freed']:,} freed "
          f"vs {ver['tfblock_peak_saved_bytes_retained']:,} retained "
          f"({ver['tfblock_freed_over_retained']:.1%})")
    print(f"  obs overhead on Trainer.fit: disabled "
          f"{ver['trainer_obs_disabled_overhead']:.3f}x, enabled "
          f"{ver['trainer_obs_enabled_overhead']:.3f}x of uninstrumented")
    print(f"  trace store: {ver['trace_segments']} rotated segments, indexed "
          f"read at {ver['trace_indexed_over_full']:.1%} of the full scan "
          f"(complete: {ver['trace_indexed_reads_complete']})")
    print(f"  compiled vs eager: forward {ver['compiled_forward_speedup']:.2f}x, "
          f"train step {ver['compiled_train_step_speedup']:.2f}x "
          f"(batch8 {ver['compiled_train_step_speedup_batch8']:.2f}x, "
          f"infer {ver['compiled_infer_forward_speedup']:.2f}x); "
          f"{ver['compiled_ops_fused_away']} ops fused away, peak saved bytes "
          f"{ver['compiled_peak_saved_bytes_ratio']:.2f}x of eager")
    if "grid_parallel_speedup" in ver:
        print(f"  grid: {ver['grid_cells']} cells, workers="
              f"{ver['grid_workers']} speedup {ver['grid_parallel_speedup']:.2f}x "
              f"on {ver['grid_usable_cpus']} usable cpu(s); warm cache at "
              f"{ver['grid_warm_over_cold']:.1%} of cold; parallel==serial: "
              f"{ver['grid_parallel_matches_serial']}")
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"  wrote {args.output}")
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark wrappers over the same cases
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["fft", "dense"])
def test_cwt_amplitude_forward(benchmark, engine):
    fn = case_cwt_amplitude_forward(engine)
    out = benchmark(fn)
    assert out.shape == (CWT_BATCH, CWT_LAMBDA, CWT_T)


def test_cwt_amplitude_grad(benchmark):
    benchmark(case_cwt_amplitude_grad("fft"))


def test_cwt_inverse(benchmark):
    fn = case_cwt_inverse()
    out = benchmark(fn)
    assert out.shape == (CWT_BATCH, CWT_T)


def test_conv2d_forward_backward(benchmark):
    benchmark(case_conv2d_forward_backward())


def test_tfblock_forward_backward(benchmark):
    benchmark(case_tfblock_forward_backward())


def test_attention_forward(benchmark):
    fn = case_attention_forward()
    out = benchmark(fn)
    assert out.shape == (8, 96, 32)


@pytest.mark.parametrize("name", BENCH_MODELS)
def test_model_training_step(benchmark, name):
    """One optimiser-free forward+backward per model (Table IV cost driver)."""
    benchmark(case_model_train_step(name))


if __name__ == "__main__":
    raise SystemExit(main())
