"""Table VII benchmark: triple vs. trend-seasonal decomposition.

Paper's expected shape: TS3Net beats both TSD-CNN (same conv backbone,
two-way decomposition) and TSD-Trans (vanilla Transformer backbone) on
most of the compared cells.
"""

import numpy as np

from conftest import run_once
from repro.experiments import table7


def test_table7_ettm2(benchmark, results_dir):
    table = run_once(benchmark, lambda: table7.run(
        scale="tiny", datasets=["ETTm2"], pred_lens=[12]))
    with open(f"{results_dir}/table7_ettm2.txt", "w") as fh:
        fh.write(table.render())
    for model in ("TSD-CNN", "TSD-Trans", "TS3Net"):
        assert np.isfinite(table.get("ETTm2", 12, model)["mse"])


def test_table7_exchange(benchmark, results_dir):
    table = run_once(benchmark, lambda: table7.run(
        scale="tiny", datasets=["Exchange"], pred_lens=[12]))
    with open(f"{results_dir}/table7_exchange.txt", "w") as fh:
        fh.write(table.render())
    assert len(table.rows_for("Exchange")) == 1
