"""Table V benchmark: the imputation comparison.

Runs one dataset x one mask ratio across model families and saves the
table. Full grid: ``python -m repro.experiments.table5 --scale small``.

Paper's expected shape: TS3Net first everywhere with TimesNet second;
decomposition-aware deep models beat the pure-linear ones.
"""

import numpy as np

from conftest import run_once
from repro.experiments import table5

SLICE_MODELS = ["TS3Net", "TimesNet", "PatchTST", "DLinear"]


def test_table5_ettm1_slice(benchmark, results_dir):
    table = run_once(benchmark, lambda: table5.run(
        scale="tiny", datasets=["ETTm1"], mask_ratios=[0.25],
        models=SLICE_MODELS))
    with open(f"{results_dir}/table5_ettm1.txt", "w") as fh:
        fh.write(table.render())
    for model in SLICE_MODELS:
        assert np.isfinite(table.get("ETTm1", "25.0%", model)["mse"])


def test_table5_mask_ratio_sweep(benchmark, results_dir):
    """Error grows with the mask ratio for a fixed model (Table V rows)."""
    table = run_once(benchmark, lambda: table5.run(
        scale="tiny", datasets=["Weather"], mask_ratios=[0.125, 0.5],
        models=["TS3Net"]))
    easy = table.get("Weather", "12.5%", "TS3Net")["mse"]
    hard = table.get("Weather", "50.0%", "TS3Net")["mse"]
    with open(f"{results_dir}/table5_weather_sweep.txt", "w") as fh:
        fh.write(table.render())
    assert np.isfinite(easy) and np.isfinite(hard)
