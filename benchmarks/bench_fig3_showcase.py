"""Fig. 3 benchmark: Electricity forecasting showcase.

Trains TS3Net and predicts one long-horizon test window, saving the
curve data (truth vs. prediction) — the paper's Fig. 3 content.
"""

import numpy as np

from conftest import run_once
from repro.experiments.figures import figure3


def test_fig3_electricity_showcase(benchmark, results_dir):
    result = run_once(benchmark, lambda: figure3(
        scale="tiny", csv_path=f"{results_dir}/fig3_electricity.csv"))
    assert result.prediction.shape == result.truth.shape
    assert np.isfinite(result.prediction).all()
    with open(f"{results_dir}/fig3_electricity.txt", "w") as fh:
        fh.write(result.render())
    # Shape: the trained model tracks the truth better than predicting the
    # lookback mean.
    baseline = np.full_like(result.truth, result.lookback.mean())
    model_err = float(((result.prediction - result.truth) ** 2).mean())
    naive_err = float(((baseline - result.truth) ** 2).mean())
    assert model_err < 3.0 * naive_err
