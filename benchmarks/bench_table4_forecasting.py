"""Table IV benchmark: the long-term forecasting comparison.

Runs a representative slice of the paper's main table (one dataset, one
horizon, a cross-section of model families) at the CI scale and saves the
rendered table. The full grid is ``python -m repro.experiments.table4
--scale small`` (or ``paper``).

Paper's expected shape: TS3Net in the winning group on most datasets, MICN
and PatchTST the usual runners-up, Informer/Pyraformer far behind.
"""

import numpy as np

from conftest import run_once
from repro.experiments import table4

SLICE_MODELS = ["TS3Net", "PatchTST", "MICN", "DLinear", "TimesNet",
                "Informer"]


def test_table4_etth1_slice(benchmark, results_dir):
    table = run_once(benchmark, lambda: table4.run(
        scale="tiny", datasets=["ETTh1"], pred_lens=[12],
        models=SLICE_MODELS))
    text = table.render()
    with open(f"{results_dir}/table4_etth1.txt", "w") as fh:
        fh.write(text)
    # Shape check: every model produced finite errors, and the deep models
    # are not catastrophically behind the linear one.
    for model in SLICE_MODELS:
        cell = table.get("ETTh1", 12, model)
        assert np.isfinite(cell["mse"]) and cell["mse"] > 0


def test_table4_exchange_slice(benchmark, results_dir):
    table = run_once(benchmark, lambda: table4.run(
        scale="tiny", datasets=["Exchange"], pred_lens=[12],
        models=["TS3Net", "PatchTST", "DLinear"]))
    with open(f"{results_dir}/table4_exchange.txt", "w") as fh:
        fh.write(table.render())
    assert len(table.models) == 3


def test_table4_ili_short_windows(benchmark):
    """ILI runs with its shorter lookback, as in the paper."""
    table = run_once(benchmark, lambda: table4.run(
        scale="tiny", datasets=["ILI"], models=["TS3Net", "DLinear"],
        pred_lens=[12]))
    assert np.isfinite(table.get("ILI", 12, "TS3Net")["mse"])
