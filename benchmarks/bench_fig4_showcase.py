"""Fig. 4 benchmark: ETTm2 normalised-OT forecasting showcase."""

import numpy as np

from conftest import run_once
from repro.experiments.figures import figure4


def test_fig4_ettm2_showcase(benchmark, results_dir):
    result = run_once(benchmark, lambda: figure4(
        scale="tiny", channel=6,
        csv_path=f"{results_dir}/fig4_ettm2.csv"))
    assert result.dataset == "ETTm2"
    assert result.channel == 6          # OT is the last ETT channel
    assert np.isfinite(result.prediction).all()
    with open(f"{results_dir}/fig4_ettm2.txt", "w") as fh:
        fh.write(result.render())
