"""Table IX benchmark: sensitivity to lambda (spectral sub-band count).

Paper's expected shape: performance is stable across lambda once it is
large enough; the smallest lambda is slightly worse.
"""

import numpy as np

from conftest import run_once
from repro.experiments import table9


def test_table9_etth1(benchmark, results_dir):
    table = run_once(benchmark, lambda: table9.run(
        scale="tiny", datasets=["ETTh1"], pred_lens=[12], lambdas=[4, 16]))
    with open(f"{results_dir}/table9_etth1.txt", "w") as fh:
        fh.write(table.render())
    small = table.get("ETTh1", 12, "lambda=4")["mse"]
    big = table.get("ETTh1", 12, "lambda=16")["mse"]
    assert np.isfinite(small) and np.isfinite(big)
    # Stability: an order-of-magnitude swing would contradict Table IX.
    # (CI scale trains for ~2 epochs, so the band is deliberately loose;
    # the small-scale sweep in EXPERIMENTS.md shows the paper's plateau.)
    assert 0.1 < small / big < 10.0
