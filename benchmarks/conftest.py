"""Benchmark configuration.

Every benchmark regenerates (a slice of) one paper table or figure. The
training-heavy ones run exactly once per benchmark (``pedantic`` with one
round) — the interesting number is the table itself, printed on demand with
``--bench-verbose`` and saved under ``benchmarks/results/``.

Run the defaults with::

    pytest benchmarks/ --benchmark-only

Full tables (all datasets/horizons/models at a chosen scale) are produced
by the experiment CLIs, e.g. ``python -m repro.experiments.table4
--scale small``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
