"""Table II benchmark: synthetic dataset generation for every family.

Regenerates the dataset inventory (the paper's Table II) and times the
generators themselves — the substrate every other experiment stands on.
"""

import numpy as np
import pytest

from repro.data import generate, get_spec
from repro.data.specs import FORECAST_DATASETS
from repro.experiments import table2


@pytest.mark.parametrize("name", FORECAST_DATASETS)
def test_generate_dataset(benchmark, name):
    data = benchmark(generate, name, 2000)
    assert data.shape[0] == 2000
    assert np.isfinite(data).all()


def test_table2_render(benchmark, results_dir):
    text = benchmark.pedantic(lambda: table2.describe("tiny"),
                              rounds=1, iterations=1)
    for name in FORECAST_DATASETS:
        assert name in text
    with open(f"{results_dir}/table2.txt", "w") as fh:
        fh.write(text)


def test_paper_dims_recorded(benchmark):
    spec = benchmark(get_spec, "Traffic")
    assert spec.dim == 862  # Table II ground truth


def test_table3_config_render(benchmark, results_dir):
    """Table III — the experiment configuration of TS3Net."""
    from repro.experiments import format_table3
    text = benchmark(format_table3)
    assert "Long-term Forecasting" in text
    with open(f"{results_dir}/table3.txt", "w") as fh:
        fh.write(text)
