"""Extension benchmark: design-choice ablations DESIGN.md calls out.

Beyond the paper's Table IX, sweeps the TF-Block depth and the S-GD
boundary convention (``S^0 = 0`` vs. zeroing the first chunk).
"""

import numpy as np

from conftest import run_once
from repro.experiments import sensitivity


def test_num_blocks_sweep(benchmark, results_dir):
    table = run_once(benchmark, lambda: sensitivity.run(
        "num_blocks", scale="tiny", datasets=["ETTh1"], pred_lens=[12],
        values=[1, 2]))
    with open(f"{results_dir}/sensitivity_num_blocks.txt", "w") as fh:
        fh.write(table.render())
    for col in ("num_blocks=1", "num_blocks=2"):
        assert np.isfinite(table.get("ETTh1", 12, col)["mse"])


def test_first_chunk_convention(benchmark, results_dir):
    table = run_once(benchmark, lambda: sensitivity.run(
        "first_chunk_zero", scale="tiny", datasets=["Exchange"],
        pred_lens=[12]))
    with open(f"{results_dir}/sensitivity_first_chunk.txt", "w") as fh:
        fh.write(table.render())
    assert len(table.models) == 2
