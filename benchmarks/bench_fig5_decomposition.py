"""Fig. 5 benchmark: triple-decomposition visualisation on ETTh1/ETTh2.

Produces the TF distribution, the spectrum-gradient map, and the three
decomposed curves for one window of each dataset, checking the exact
reconstruction invariant the figure illustrates.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.experiments.figures import figure5


@pytest.mark.parametrize("dataset", ["ETTh1", "ETTh2"])
def test_fig5_panels(benchmark, results_dir, dataset):
    fig = run_once(benchmark, lambda: figure5(
        dataset=dataset, scale="tiny", window_len=192, num_scales=8,
        csv_path=f"{results_dir}/fig5_{dataset}.csv"))
    with open(f"{results_dir}/fig5_{dataset}.txt", "w") as fh:
        fh.write(fig.render())
    # The three parts reconstruct the original exactly (Eq. 1 + Eq. 10).
    total = fig.trend + fig.regular + fig.fluctuant_1d
    np.testing.assert_allclose(total, fig.original, rtol=1e-7, atol=1e-7)
    # The TF map carries structure (not constant).
    assert fig.tf_distribution.std() > 0
