"""Table VIII benchmark: robustness to training-input noise.

Paper's expected shape: MSE/MAE grow only slightly with the injected
noise proportion rho on the ETT datasets (<~2% at rho=10% on ETTh1), and
Exchange is the most sensitive dataset.
"""

import numpy as np

from conftest import run_once
from repro.experiments import table8


def test_table8_etth1(benchmark, results_dir):
    table = run_once(benchmark, lambda: table8.run(
        scale="tiny", datasets=["ETTh1"], pred_lens=[12],
        noise_ratios=[0.0, 0.10]))
    with open(f"{results_dir}/table8_etth1.txt", "w") as fh:
        fh.write(table.render())
    clean = table.get("ETTh1", 12, "rho=0%")["mse"]
    noisy = table.get("ETTh1", 12, "rho=10%")["mse"]
    assert np.isfinite(clean) and np.isfinite(noisy)
    # Shape: training noise degrades gracefully, not catastrophically.
    assert noisy < 5.0 * clean
