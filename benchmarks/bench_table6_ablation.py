"""Table VI benchmark: architecture ablations (w/o TD / w/o TF-Block / both).

Paper's expected shape: the full model is best; removing the triple
decomposition costs more than replacing the wavelet TF expansion with
plain replication; removing both costs most.
"""

import numpy as np

from conftest import run_once
from repro.experiments import table6


def test_table6_exchange(benchmark, results_dir):
    table = run_once(benchmark, lambda: table6.run(
        scale="tiny", datasets=["Exchange"], pred_lens=[12]))
    with open(f"{results_dir}/table6_exchange.txt", "w") as fh:
        fh.write(table.render())
    full = table.get("Exchange", 12, "TS3Net")["mse"]
    wo_both = table.get("Exchange", 12, "w/o Both")["mse"]
    assert np.isfinite(full) and np.isfinite(wo_both)


def test_table6_ettm1(benchmark, results_dir):
    table = run_once(benchmark, lambda: table6.run(
        scale="tiny", datasets=["ETTm1"], pred_lens=[12]))
    with open(f"{results_dir}/table6_ettm1.txt", "w") as fh:
        fh.write(table.render())
    assert set(table.models) == {"w/o TD", "w/o TF-Block", "w/o Both", "TS3Net"}
