"""Optimisers: SGD and Adam (the paper trains everything with Adam).

Adam follows Kingma & Ba (2014) with the bias-corrected moments and the
paper's default ``(beta1, beta2) = (0.9, 0.999)`` (Table III).
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list and the learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Table III: beta=(0.9, 0.999), the paper's choice)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _sync_state_dtypes(self) -> None:
        """Recast moment buffers whose parameter changed dtype since init.

        ``Module.to()`` after the optimizer snapshotted its parameters would
        otherwise leave ``m``/``v`` in the old dtype, and the in-place
        ``m *= b1`` updates in :meth:`step` would keep silently computing at
        (and casting through) the stale precision.
        """
        for i, p in enumerate(self.params):
            if self._m[i].dtype != p.data.dtype:
                self._m[i] = self._m[i].astype(p.data.dtype)
                self._v[i] = self._v[i].astype(p.data.dtype)

    def step(self) -> None:
        self._sync_state_dtypes()
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._step
        bias2 = 1.0 - b2 ** self._step
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
