"""Learning-rate schedulers and early stopping.

The paper trains with an initial LR of 1e-3/1e-4 and stops early with
patience 3 when validation loss stops improving; ``EarlyStopping`` mirrors
that protocol (including keeping the best weights, as the TimesNet harness
does via checkpointing).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn.module import Module
from .optimizers import Optimizer


class LRScheduler:
    """Base LR scheduler; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class ExponentialDecay(LRScheduler):
    """``lr = base * gamma^epoch`` — the 'type1' schedule of the TimesNet code."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.5):
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** self.epoch)


class CosineDecay(LRScheduler):
    """Cosine annealing to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 0.0):
        super().__init__(optimizer)
        self.total_epochs = max(total_epochs, 1)
        self.min_lr = min_lr

    def get_lr(self) -> float:
        t = min(self.epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * t))


class EarlyStopping:
    """Patience-based early stopping that snapshots the best weights.

    Mirrors the paper: "training is early stopped after three epochs
    (patience=3) if there is no loss degradation on the valid set".
    """

    def __init__(self, patience: int = 3, min_delta: float = 0.0):
        self.patience = patience
        self.min_delta = min_delta
        self.best_loss = float("inf")
        self.counter = 0
        self.should_stop = False
        self._best_state: Optional[Dict[str, np.ndarray]] = None

    def update(self, val_loss: float, model: Module) -> bool:
        """Record an epoch's validation loss; returns True if it improved."""
        if val_loss < self.best_loss - self.min_delta:
            self.best_loss = val_loss
            self.counter = 0
            self._best_state = model.state_dict()
            return True
        self.counter += 1
        if self.counter >= self.patience:
            self.should_stop = True
        return False

    def restore_best(self, model: Module) -> None:
        """Load the weights from the best validation epoch back into ``model``."""
        if self._best_state is not None:
            model.load_state_dict(self._best_state)
