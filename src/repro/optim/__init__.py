"""Optimisers, LR schedulers, and early stopping."""

from .optimizers import Adam, Optimizer, SGD, clip_grad_norm
from .schedulers import CosineDecay, EarlyStopping, ExponentialDecay, LRScheduler

__all__ = [
    "Adam", "Optimizer", "SGD", "clip_grad_norm",
    "CosineDecay", "EarlyStopping", "ExponentialDecay", "LRScheduler",
]
