"""Result tables in the paper's layout.

A :class:`ResultTable` collects (row, column) -> {mse, mae} cells, where a
row is typically ``(dataset, horizon)`` and a column a model name, and can
render itself the way Tables IV-IX are printed: MSE/MAE pairs, per-dataset
averages, bold-winner (marked ``*``) and first-place counts.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, List, Tuple

Cell = Dict[str, float]
RowKey = Tuple[str, object]          # (dataset, horizon-or-setting)


class ResultTable:
    """Nested (dataset, setting) x model results with paper-style rendering."""

    def __init__(self, title: str, metric_names: Tuple[str, ...] = ("mse", "mae")):
        self.title = title
        self.metric_names = metric_names
        self._cells: "OrderedDict[RowKey, OrderedDict[str, Cell]]" = OrderedDict()
        self._columns: List[str] = []

    # ------------------------------------------------------------------
    def add(self, dataset: str, setting, model: str, metrics: Cell) -> None:
        key = (dataset, setting)
        row = self._cells.setdefault(key, OrderedDict())
        row[model] = {m: float(metrics[m]) for m in self.metric_names}
        if model not in self._columns:
            self._columns.append(model)

    def get(self, dataset: str, setting, model: str) -> Cell:
        return self._cells[(dataset, setting)][model]

    @property
    def datasets(self) -> List[str]:
        seen: List[str] = []
        for ds, _ in self._cells:
            if ds not in seen:
                seen.append(ds)
        return seen

    @property
    def models(self) -> List[str]:
        return list(self._columns)

    def rows_for(self, dataset: str) -> List[RowKey]:
        return [k for k in self._cells if k[0] == dataset]

    # ------------------------------------------------------------------
    def average_row(self, dataset: str) -> Dict[str, Cell]:
        """Per-model metric averages over a dataset's settings."""
        rows = self.rows_for(dataset)
        out: Dict[str, Cell] = {}
        for model in self.models:
            sums = {m: 0.0 for m in self.metric_names}
            count = 0
            for key in rows:
                cell = self._cells[key].get(model)
                if cell is None:
                    continue
                for m in self.metric_names:
                    sums[m] += cell[m]
                count += 1
            if count:
                out[model] = {m: sums[m] / count for m in self.metric_names}
        return out

    def winners(self, key: RowKey, metric: str) -> str:
        row = self._cells[key]
        return min(row, key=lambda m: row[m][metric])

    def first_place_counts(self) -> Dict[str, int]:
        """Number of cells (row x metric) each model wins — the "1st Count"."""
        counts = {m: 0 for m in self.models}
        for key in self._cells:
            for metric in self.metric_names:
                counts[self.winners(key, metric)] += 1
        return counts

    # ------------------------------------------------------------------
    def render(self, float_fmt: str = "{:.3f}") -> str:
        """Paper-style text rendering with ``*`` marking per-metric winners."""
        col_w = max(12, *(len(m) + 2 for m in self.models)) if self.models else 12
        header = f"{'Dataset':>12s} {'Setting':>8s} " + " ".join(
            f"{m:>{col_w}s}" for m in self.models)
        sub = f"{'':>12s} {'':>8s} " + " ".join(
            f"{'MSE  MAE':>{col_w}s}" for _ in self.models)
        lines = [self.title, "=" * len(header), header, sub, "-" * len(header)]

        for dataset in self.datasets:
            for key in self.rows_for(dataset):
                row = self._cells[key]
                best = {m: self.winners(key, m) for m in self.metric_names}
                cells = []
                for model in self.models:
                    cell = row.get(model)
                    if cell is None:
                        cells.append(f"{'-':>{col_w}s}")
                        continue
                    marks = ["*" if best[m] == model else " "
                             for m in self.metric_names]
                    text = " ".join(
                        float_fmt.format(cell[m]) + marks[i]
                        for i, m in enumerate(self.metric_names))
                    cells.append(f"{text:>{col_w}s}")
                lines.append(f"{dataset:>12s} {str(key[1]):>8s} " + " ".join(cells))
            avg = self.average_row(dataset)
            if avg:
                cells = []
                best_avg = {m: min(avg, key=lambda mod: avg[mod][m])
                            for m in self.metric_names}
                for model in self.models:
                    cell = avg.get(model)
                    if cell is None:
                        cells.append(f"{'-':>{col_w}s}")
                        continue
                    text = " ".join(
                        float_fmt.format(cell[m])
                        + ("*" if best_avg[m] == model else " ")
                        for m in self.metric_names)
                    cells.append(f"{text:>{col_w}s}")
                lines.append(f"{dataset:>12s} {'Avg':>8s} " + " ".join(cells))
            lines.append("-" * len(header))

        counts = self.first_place_counts()
        lines.append("1st Count: " + "  ".join(
            f"{m}={counts[m]}" for m in self.models))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "title": self.title,
            "metrics": list(self.metric_names),
            "cells": [
                {"dataset": ds, "setting": setting, "model": model, **cell}
                for (ds, setting), row in self._cells.items()
                for model, cell in row.items()
            ],
        }

    def save_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=str)

    @classmethod
    def from_dict(cls, payload: Dict) -> "ResultTable":
        table = cls(payload["title"], tuple(payload["metrics"]))
        for cell in payload["cells"]:
            metrics = {m: cell[m] for m in payload["metrics"]}
            table.add(cell["dataset"], cell["setting"], cell["model"], metrics)
        return table
