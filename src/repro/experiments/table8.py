"""Table VIII — robustness to injected noise.

TS3Net is retrained with a proportion rho of training inputs perturbed by
signal-scaled noise (rho in {0, 1, 5, 10}%) on ETTh1/ETTh2/Exchange.
Expected shape: degradation grows with rho but stays small on the ETT
datasets (<~2% on ETTh1) and is largest on Exchange.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..data.noise import NOISE_RATIOS
from .configs import get_scale
from .engine import add_engine_args, forecast_cell, run_grid
from .results import ResultTable

DEFAULT_DATASETS = ("ETTh1", "ETTh2", "Exchange")


def run(scale: str = "tiny", datasets: Optional[Sequence[str]] = None,
        pred_lens: Optional[Sequence[int]] = None,
        noise_ratios: Optional[Sequence[float]] = None, seed: int = 0,
        verbose: bool = False, workers: int = 1,
        cache_dir: Optional[str] = None) -> ResultTable:
    sc = get_scale(scale)
    datasets = list(datasets or DEFAULT_DATASETS)
    ratios = list(noise_ratios or NOISE_RATIOS)

    rows, specs = [], []
    for dataset in datasets:
        _, horizon_list = sc.windows_for(dataset)
        for pred_len in list(pred_lens or horizon_list):
            for rho in ratios:
                rows.append((dataset, pred_len, f"rho={rho:.0%}"))
                specs.append(forecast_cell("TS3Net", dataset, pred_len,
                                           scale=scale, seed=seed,
                                           noise_rho=rho))
    grid = run_grid(specs, workers=workers, cache_dir=cache_dir,
                    progress=verbose)

    table = ResultTable(f"Table VIII — Robustness to noise (scale={scale})")
    for (dataset, pred_len, column), metrics in zip(rows, grid.results):
        table.add(dataset, pred_len, column, metrics)
    return table


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--pred-lens", nargs="*", type=int, default=None)
    parser.add_argument("--noise-ratios", nargs="*", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", default=None)
    add_engine_args(parser)
    args = parser.parse_args(argv)
    table = run(scale=args.scale, datasets=args.datasets,
                pred_lens=args.pred_lens, noise_ratios=args.noise_ratios,
                seed=args.seed, verbose=True,
                workers=args.workers, cache_dir=args.cache_dir)
    print(table.render())
    if args.save:
        table.save_json(args.save)


if __name__ == "__main__":
    main()
