"""Figure reproductions.

* :func:`figure3` — prediction showcase on Electricity at the longest
  horizon (the paper's Fig. 3, per-variable forecast vs. ground truth);
* :func:`figure4` — the same showcase for one normalised channel of ETTm2
  (Fig. 4);
* :func:`figure5` — visualisation of the triple decomposition on
  ETTh1/ETTh2: the original window, its TF distribution, the spectrum
  gradient, and the trend/regular/fluctuant curves (Fig. 5).

Each returns the underlying arrays and an ASCII rendering; CSVs can be
saved for replotting with a real plotting stack.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autodiff import Tensor, no_grad
from ..baselines.registry import build_model
from ..decomposition import decompose_array
from ..tasks.forecasting import ForecastTask, run_forecast
from ..utils import set_seed
from .configs import get_scale
from .plotting import ascii_heatmap, ascii_lineplot, save_csv
from .runner import get_dataset, _train_config, _model_overrides


@dataclass
class ShowcaseResult:
    """A trained model's prediction on one test window."""

    dataset: str
    channel: int
    lookback: np.ndarray      # (seq_len,)
    truth: np.ndarray         # (pred_len,)
    prediction: np.ndarray    # (pred_len,)

    def render(self) -> str:
        full_truth = np.concatenate([self.lookback, self.truth])
        pred_padded = np.concatenate([np.full_like(self.lookback, np.nan),
                                      self.prediction])
        # ASCII plot cannot show NaN; plot horizon region only for both.
        series = {
            "GroundTruth": full_truth[-2 * len(self.truth):],
            "Prediction": np.concatenate([
                full_truth[-2 * len(self.truth):-len(self.truth)],
                self.prediction]),
        }
        head = (f"{self.dataset} channel {self.channel}: lookback tail + "
                f"horizon ({len(self.truth)} steps)")
        return head + "\n" + ascii_lineplot(series)


def _forecast_showcase(dataset: str, scale: str, channel: int,
                       seed: int = 0) -> ShowcaseResult:
    sc = get_scale(scale)
    seq_len, horizons = sc.windows_for(dataset)
    pred_len = horizons[-1]
    split = get_dataset(dataset, sc, seed=seed)

    set_seed(seed)
    model = build_model("TS3Net", seq_len=seq_len, pred_len=pred_len,
                        c_in=split.train.shape[1], preset=sc.preset,
                        **_model_overrides(sc))
    task = ForecastTask(seq_len=seq_len, pred_len=pred_len,
                        batch_size=sc.batch_size,
                        max_train_batches=sc.max_train_batches,
                        max_eval_batches=sc.max_eval_batches, seed=seed)
    run_forecast(model, split, task, _train_config(sc))

    window = split.test[:seq_len + pred_len]
    x, y = window[:seq_len], window[seq_len:]
    model.eval()
    with no_grad():
        pred = model(Tensor(x[None])).data[0]
    return ShowcaseResult(dataset=dataset, channel=channel,
                          lookback=x[:, channel], truth=y[:, channel],
                          prediction=pred[:, channel])


def figure3(scale: str = "tiny", channel: int = 0, seed: int = 0,
            csv_path: Optional[str] = None) -> ShowcaseResult:
    """Fig. 3 — Electricity showcase at the longest horizon."""
    result = _forecast_showcase("Electricity", scale, channel, seed)
    if csv_path:
        save_csv(csv_path, {"truth": result.truth,
                            "prediction": result.prediction})
    return result


def figure4(scale: str = "tiny", channel: int = 6, seed: int = 0,
            csv_path: Optional[str] = None) -> ShowcaseResult:
    """Fig. 4 — ETTm2 normalised-OT showcase (last channel = OT)."""
    result = _forecast_showcase("ETTm2", scale, channel, seed)
    if csv_path:
        save_csv(csv_path, {"truth": result.truth,
                            "prediction": result.prediction})
    return result


@dataclass
class DecompositionFigure:
    """Fig. 5 panels for one dataset window."""

    dataset: str
    original: np.ndarray          # (T,)
    tf_distribution: np.ndarray   # (lambda, T)
    spectrum_gradient: np.ndarray  # (lambda, T)
    trend: np.ndarray
    regular: np.ndarray
    fluctuant_1d: np.ndarray

    def render(self) -> str:
        parts = [
            f"=== Fig. 5 panel: {self.dataset} (window length {len(self.original)}) ===",
            "Original series:",
            ascii_lineplot({"x": self.original}, height=8),
            ascii_heatmap(self.tf_distribution, label="TF distribution |WT|"),
            ascii_heatmap(self.spectrum_gradient, label="Spectrum gradient"),
            "Decomposed parts (t=Trend, r=Regular, f=Fluctuant):",
            ascii_lineplot({"trend": self.trend, "regular": self.regular,
                            "fluct": self.fluctuant_1d}, height=10),
        ]
        return "\n".join(parts)


def figure5(dataset: str = "ETTh1", scale: str = "tiny", window_len: int = 192,
            channel: int = 0, num_scales: int = 16, seed: int = 0,
            csv_path: Optional[str] = None) -> DecompositionFigure:
    """Fig. 5 — triple decomposition visualisation of one window."""
    sc = get_scale(scale)
    split = get_dataset(dataset, sc, seed=seed)
    window_len = min(window_len, len(split.test))
    x = split.test[:window_len, channel]

    res = decompose_array(x, num_scales=num_scales)
    fig = DecompositionFigure(
        dataset=dataset,
        original=x,
        tf_distribution=res.tf_distribution.data[0, 0],
        spectrum_gradient=res.fluctuant.data[0, 0],
        trend=res.trend.data[0, :, 0],
        regular=res.regular.data[0, :, 0],
        fluctuant_1d=res.delta_1d.data[0, :, 0],
    )
    if csv_path:
        save_csv(csv_path, {"original": fig.original, "trend": fig.trend,
                            "regular": fig.regular,
                            "fluctuant": fig.fluctuant_1d})
    return fig


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", choices=["fig3", "fig4", "fig5"])
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--dataset", default="ETTh1", help="fig5 only")
    parser.add_argument("--csv", default=None)
    args = parser.parse_args(argv)
    if args.figure == "fig3":
        print(figure3(scale=args.scale, csv_path=args.csv).render())
    elif args.figure == "fig4":
        print(figure4(scale=args.scale, csv_path=args.csv).render())
    else:
        print(figure5(dataset=args.dataset, scale=args.scale,
                      csv_path=args.csv).render())


if __name__ == "__main__":
    main()
