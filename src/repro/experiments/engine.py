"""Parallel experiment-grid engine with content-addressed result caching.

Every paper table is a grid of independent *cells* — one (task, model,
dataset, setting, scale, seed) measurement. This module turns a list of
:class:`CellSpec` into results:

* **Fan-out** — cells run on a ``ProcessPoolExecutor`` worker pool
  (``workers > 1``) or serially in-process (``workers=1``, the reference
  path). Each cell re-seeds everything it uses from its own spec, so the
  parallel results are bit-identical to the serial ones regardless of
  completion order.
* **Result caching** — with a ``cache_dir``, finished cells are memoised
  in a persistent content-addressed :class:`~repro.experiments.store.
  ResultStore`. The key hashes the spec, the full scale/train config, and
  a code fingerprint (see :func:`cell_key`), so re-running a table only
  executes missing or invalidated cells.
* **Shared datasets** — workers read synthetic splits from an on-disk
  ``.npz`` dataset cache (pre-warmed by the parent) instead of each
  process regenerating identical data.
* **Progress + timing** — optional per-cell progress/ETA reporting, and
  every result carries wall-clock, train-vs-eval, and per-epoch timings
  for downstream benchmark attribution.

Example::

    specs = [forecast_cell("TS3Net", "ETTh1", 12, scale="tiny"),
             forecast_cell("DLinear", "ETTh1", 12, scale="tiny")]
    run = run_grid(specs, workers=4, cache_dir=".repro_cache")
    run.results[0]["mse"]
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from . import runner
from ..obs import console as _console
from ..obs import events as _obs_events
from ..obs import runtime as _obs
from ..tasks.registry import UnknownTaskError, get_task
from .configs import get_scale
from .store import ResultStore, canonical_key, code_fingerprint

FORECAST = "forecast"
IMPUTATION = "imputation"


@dataclass(frozen=True)
class CellSpec:
    """One experiment cell: everything its measurement depends on."""

    task: str                 # "forecast" | "imputation"
    model: str
    dataset: str
    setting: float            # pred_len (forecast) or mask_ratio (imputation)
    scale: str = "tiny"
    seed: int = 0
    noise_rho: float = 0.0
    overrides: Optional[tuple] = None   # sorted ((name, value), ...) or None

    def overrides_dict(self) -> Optional[Dict]:
        return dict(self.overrides) if self.overrides else None

    def label(self) -> str:
        parts = [self.model, self.dataset, str(self.setting)]
        if self.noise_rho:
            parts.append(f"rho={self.noise_rho:g}")
        if self.overrides:
            parts.append(",".join(f"{k}={v}" for k, v in self.overrides))
        return " ".join(parts)


def _freeze_overrides(overrides: Optional[Dict]) -> Optional[tuple]:
    if not overrides:
        return None
    return tuple(sorted(overrides.items()))


def forecast_cell(model: str, dataset: str, pred_len: int,
                  scale: str = "tiny", seed: int = 0, noise_rho: float = 0.0,
                  overrides: Optional[Dict] = None) -> CellSpec:
    return CellSpec(task=FORECAST, model=model, dataset=dataset,
                    setting=int(pred_len), scale=scale, seed=seed,
                    noise_rho=noise_rho,
                    overrides=_freeze_overrides(overrides))


def imputation_cell(model: str, dataset: str, mask_ratio: float,
                    scale: str = "tiny", seed: int = 0,
                    overrides: Optional[Dict] = None) -> CellSpec:
    return CellSpec(task=IMPUTATION, model=model, dataset=dataset,
                    setting=float(mask_ratio), scale=scale, seed=seed,
                    overrides=_freeze_overrides(overrides))


def task_cell(task: str, model: str, dataset: str, setting,
              scale: str = "tiny", seed: int = 0, noise_rho: float = 0.0,
              overrides: Optional[Dict] = None) -> CellSpec:
    """A cell for any registered task; validates the name eagerly."""
    get_task(task)   # raises UnknownTaskError (with known names) up front
    return CellSpec(task=task, model=model, dataset=dataset, setting=setting,
                    scale=scale, seed=seed, noise_rho=noise_rho,
                    overrides=_freeze_overrides(overrides))


# ---------------------------------------------------------------------------
# Content-addressed cache keys
# ---------------------------------------------------------------------------

def cell_key(spec: CellSpec) -> str:
    """Content hash of a cell: spec + resolved configs + code fingerprint.

    The scale is expanded to its full configuration (window sizes, epochs,
    batch limits, lr, ...) so editing a preset invalidates its cells, and
    ``noise_rho`` is always part of the payload so Table VIII (noisy) cells
    can never collide with the Table IV (clean) cells they perturb.
    """
    sc = get_scale(spec.scale)
    payload = {
        "task": spec.task,
        "model": spec.model,
        "dataset": spec.dataset,
        "setting": spec.setting,
        "seed": spec.seed,
        "noise_rho": spec.noise_rho,
        "overrides": [list(item) for item in (spec.overrides or ())],
        "scale": asdict(sc),
        "train": asdict(runner._train_config(sc)),
        "code": code_fingerprint(),
    }
    return canonical_key(payload)


# ---------------------------------------------------------------------------
# Cell execution (top-level so worker processes can unpickle the job)
# ---------------------------------------------------------------------------

def execute_cell(spec: CellSpec) -> Dict:
    """Run one cell in-process; returns metrics + timing fields."""
    start = time.perf_counter()
    try:
        task = get_task(spec.task)
    except UnknownTaskError as exc:
        raise ValueError(f"unknown cell task: {exc}") from None
    # The setting keeps its historical scalar type per task (pred_len is an
    # int, mask_ratio a float) so cached keys and configs stay stable.
    setting = (int(spec.setting) if spec.task == FORECAST
               else float(spec.setting) if spec.task == IMPUTATION
               else spec.setting)
    metrics = runner.run_task_cell(
        task, spec.model, spec.dataset, setting, scale=spec.scale,
        seed=spec.seed, noise_rho=spec.noise_rho,
        model_overrides=spec.overrides_dict())
    metrics["cell_seconds"] = time.perf_counter() - start
    metrics["worker_pid"] = os.getpid()
    return metrics


def _worker_execute(spec: CellSpec, data_cache_dir: Optional[str]) -> Dict:
    if data_cache_dir:
        runner.set_data_cache_dir(data_cache_dir)
    return execute_cell(spec)


# ---------------------------------------------------------------------------
# The grid engine
# ---------------------------------------------------------------------------

@dataclass
class GridRun:
    """Results of one grid execution, aligned with the input specs."""

    results: List[Dict] = field(default_factory=list)
    executed: int = 0
    cache_hits: int = 0
    seconds: float = 0.0
    cache_dir: Optional[str] = None
    workers: int = 1

    @property
    def cells(self) -> int:
        return len(self.results)

    def timing_summary(self) -> Dict[str, float]:
        cell = [r.get("cell_seconds", 0.0) for r in self.results
                if not r.get("cached")]
        return {
            "wall_seconds": self.seconds,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cell_seconds_total": float(sum(cell)),
            "cell_seconds_max": float(max(cell)) if cell else 0.0,
            "train_seconds_total": float(sum(
                r.get("train_seconds", 0.0) for r in self.results)),
            "eval_seconds_total": float(sum(
                r.get("eval_seconds", 0.0) for r in self.results)),
        }


class _Progress:
    """Per-cell ``grid.cell`` spans, optionally echoed as stderr lines.

    Every finished cell becomes one retroactive span on the observer
    (cache hit/miss, mse, worker pid, rolling ETA in the attributes);
    with ``enabled`` the same record is rendered by the obs console
    formatter — the exact completion lines this class used to ``print``.
    """

    def __init__(self, total: int, enabled: bool, workers: int, observer=None):
        self.total = total
        self.enabled = enabled
        self.workers = max(1, workers)
        self.observer = observer
        self.done = 0
        self.start = time.perf_counter()

    def update(self, spec: CellSpec, metrics: Dict, cached: bool) -> None:
        self.done += 1
        if not self.enabled and self.observer is None:
            return
        elapsed = time.perf_counter() - self.start
        remaining = self.total - self.done
        eta = elapsed / self.done * remaining if self.done else 0.0
        dur = 0.0 if cached else metrics.get("cell_seconds", 0.0)
        attrs = {"cell": spec.label(), "model": spec.model,
                 "dataset": spec.dataset, "setting": spec.setting,
                 "cached": cached, "mse": metrics.get("mse", float("nan")),
                 "worker_pid": metrics.get("worker_pid"),
                 "done": self.done, "total": self.total, "eta_s": eta}
        rec = None
        if self.observer is not None:
            rec = self.observer.emit_span("grid.cell", dur, attrs)
        if self.enabled:
            _console.emit_record(rec if rec is not None else _obs_events.record(
                "span_end", "grid.cell", attrs, dur_s=dur))


def run_grid(specs: Sequence[CellSpec], workers: int = 1,
             cache_dir: Optional[str] = None, progress: bool = False) -> GridRun:
    """Execute a grid of cells, in parallel and/or from the result cache.

    Results are returned in spec order. ``workers=1`` runs serially
    in-process and is the determinism reference; any ``workers`` value
    produces identical metrics because each cell seeds itself from its
    spec alone.

    With an observer configured the run is wrapped in a ``grid.run`` span
    and every cell lands as a ``grid.cell`` child span (see ``_Progress``).
    """
    ob = _obs.active()
    if ob is None:
        return _run_grid(None, specs, workers, cache_dir, progress)
    with ob.span("grid.run", {"cells": len(specs),
                              "workers": max(1, int(workers)),
                              "cache_dir": cache_dir}) as span:
        run = _run_grid(ob, specs, workers, cache_dir, progress)
        span.set(executed=run.executed, cache_hits=run.cache_hits)
        return run


def _run_grid(ob, specs: Sequence[CellSpec], workers: int,
              cache_dir: Optional[str], progress: bool) -> GridRun:
    specs = list(specs)
    run = GridRun(results=[None] * len(specs), workers=max(1, int(workers)),
                  cache_dir=cache_dir)
    start = time.perf_counter()

    store = keys = None
    if cache_dir:
        store = ResultStore(os.path.join(cache_dir, "results"))
        keys = [cell_key(spec) for spec in specs]

    reporter = _Progress(len(specs), progress, run.workers, observer=ob)
    pending: List[int] = []
    for i, spec in enumerate(specs):
        hit = store.get(keys[i]) if store is not None else None
        if hit is not None:
            hit["cached"] = True
            run.results[i] = hit
            run.cache_hits += 1
            reporter.update(spec, hit, cached=True)
        else:
            pending.append(i)

    def finish(i: int, metrics: Dict) -> None:
        metrics["cached"] = False
        run.results[i] = metrics
        run.executed += 1
        if store is not None:
            store.put(keys[i], {k: v for k, v in metrics.items()
                                if k != "cached"})
        reporter.update(specs[i], metrics, cached=False)

    if run.workers <= 1 or len(pending) <= 1:
        data_dir = (os.path.join(cache_dir, "data") if cache_dir else None)
        if data_dir:
            runner.set_data_cache_dir(data_dir)
        for i in pending:
            finish(i, execute_cell(specs[i]))
    else:
        _run_parallel(specs, pending, run.workers, cache_dir, finish)

    run.seconds = time.perf_counter() - start
    return run


def add_engine_args(parser) -> None:
    """Attach the shared ``--workers`` / ``--cache-dir`` CLI options."""
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the grid (1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result/dataset cache directory; "
                             "re-runs only execute missing cells")


def _run_parallel(specs: Sequence[CellSpec], pending: Sequence[int],
                  workers: int, cache_dir: Optional[str], finish) -> None:
    """Fan pending cells out over a process pool with a shared data cache."""
    data_dir = os.path.join(cache_dir, "data") if cache_dir else None
    tmp_dir = None
    if data_dir is None:
        # Workers always get an on-disk dataset cache, even without a
        # result cache, so identical splits are generated once, not per
        # process.
        tmp_dir = tempfile.mkdtemp(prefix="repro-data-")
        data_dir = tmp_dir
    try:
        runner.set_data_cache_dir(data_dir)
        for spec in {(s.dataset, s.scale, s.seed): s for s in specs}.values():
            runner.get_dataset(spec.dataset, get_scale(spec.scale),
                               seed=spec.seed)   # pre-warm the shared cache
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_worker_execute, specs[i], data_dir): i
                       for i in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in done:
                    finish(futures[fut], fut.result())
    finally:
        if tmp_dir is not None:
            runner.set_data_cache_dir(None)
            shutil.rmtree(tmp_dir, ignore_errors=True)
