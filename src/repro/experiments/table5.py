"""Table V — imputation comparison.

Regenerates the imputation benchmark: masked-position MSE/MAE for all
models on the ETT/Electricity/Weather datasets across the four mask
ratios. Expected shape per the paper: TS3Net first on every cell, with
TimesNet the consistent runner-up.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..baselines.registry import MODEL_NAMES
from ..data.masking import MASK_RATIOS
from ..data.specs import IMPUTATION_DATASETS
from .engine import add_engine_args, imputation_cell, run_grid
from .results import ResultTable


def run(scale: str = "tiny", datasets: Optional[Sequence[str]] = None,
        models: Optional[Sequence[str]] = None,
        mask_ratios: Optional[Sequence[float]] = None, seed: int = 0,
        verbose: bool = False, workers: int = 1,
        cache_dir: Optional[str] = None) -> ResultTable:
    datasets = list(datasets or IMPUTATION_DATASETS)
    models = list(models or MODEL_NAMES)
    ratios = list(mask_ratios or MASK_RATIOS)

    rows, specs = [], []
    for dataset in datasets:
        for ratio in ratios:
            for model in models:
                rows.append((dataset, f"{ratio:.1%}", model))
                specs.append(imputation_cell(model, dataset, ratio,
                                             scale=scale, seed=seed))
    grid = run_grid(specs, workers=workers, cache_dir=cache_dir,
                    progress=verbose)

    table = ResultTable(f"Table V — Imputation (scale={scale})")
    for (dataset, setting, model), metrics in zip(rows, grid.results):
        table.add(dataset, setting, model, metrics)
    return table


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--models", nargs="*", default=None)
    parser.add_argument("--mask-ratios", nargs="*", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", default=None)
    add_engine_args(parser)
    args = parser.parse_args(argv)
    table = run(scale=args.scale, datasets=args.datasets, models=args.models,
                mask_ratios=args.mask_ratios, seed=args.seed, verbose=True,
                workers=args.workers, cache_dir=args.cache_dir)
    print(table.render())
    if args.save:
        table.save_json(args.save)


if __name__ == "__main__":
    main()
