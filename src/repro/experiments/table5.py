"""Table V — imputation comparison.

Regenerates the imputation benchmark: masked-position MSE/MAE for all
models on the ETT/Electricity/Weather datasets across the four mask
ratios. Expected shape per the paper: TS3Net first on every cell, with
TimesNet the consistent runner-up.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..baselines.registry import MODEL_NAMES
from ..data.masking import MASK_RATIOS
from ..data.specs import IMPUTATION_DATASETS
from .results import ResultTable
from .runner import run_imputation_cell


def run(scale: str = "tiny", datasets: Optional[Sequence[str]] = None,
        models: Optional[Sequence[str]] = None,
        mask_ratios: Optional[Sequence[float]] = None, seed: int = 0,
        verbose: bool = False) -> ResultTable:
    datasets = list(datasets or IMPUTATION_DATASETS)
    models = list(models or MODEL_NAMES)
    ratios = list(mask_ratios or MASK_RATIOS)

    table = ResultTable(f"Table V — Imputation (scale={scale})")
    for dataset in datasets:
        for ratio in ratios:
            for model in models:
                metrics = run_imputation_cell(model, dataset, ratio,
                                              scale=scale, seed=seed)
                table.add(dataset, f"{ratio:.1%}", model, metrics)
                if verbose:
                    print(f"{dataset:>12s} mask={ratio:.1%} {model:<12s} "
                          f"mse={metrics['mse']:.3f} mae={metrics['mae']:.3f}")
    return table


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--models", nargs="*", default=None)
    parser.add_argument("--mask-ratios", nargs="*", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", default=None)
    args = parser.parse_args(argv)
    table = run(scale=args.scale, datasets=args.datasets, models=args.models,
                mask_ratios=args.mask_ratios, seed=args.seed, verbose=True)
    print(table.render())
    if args.save:
        table.save_json(args.save)


if __name__ == "__main__":
    main()
