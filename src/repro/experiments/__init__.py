"""Experiment harness: one module per paper table/figure."""

from .configs import SCALES, Scale, format_table3, get_scale
from .results import ResultTable
from .runner import get_dataset, run_forecast_cell, run_imputation_cell
from . import table2, table4, table5, table6, table7, table8, table9
from . import figures, sensitivity

__all__ = [
    "SCALES", "Scale", "format_table3", "get_scale", "ResultTable",
    "get_dataset", "run_forecast_cell", "run_imputation_cell",
    "table2", "table4", "table5", "table6", "table7", "table8", "table9",
    "figures", "sensitivity",
]
