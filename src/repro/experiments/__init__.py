"""Experiment harness: one module per paper table/figure, plus the grid
engine that schedules their cells (parallel workers + result caching)."""

from .configs import SCALES, Scale, format_table3, get_scale
from .engine import (
    CellSpec, GridRun, cell_key, execute_cell, forecast_cell,
    imputation_cell, run_grid, task_cell,
)
from .results import ResultTable
from .runner import (
    clear_dataset_cache, get_dataset, run_forecast_cell, run_imputation_cell,
    run_task_cell, set_data_cache_dir,
)
from .store import ResultStore, code_fingerprint
from . import table2, table4, table5, table6, table7, table8, table9
from . import figures, sensitivity

__all__ = [
    "SCALES", "Scale", "format_table3", "get_scale", "ResultTable",
    "CellSpec", "GridRun", "cell_key", "execute_cell", "forecast_cell",
    "imputation_cell", "run_grid", "task_cell", "ResultStore",
    "code_fingerprint", "get_dataset", "run_forecast_cell",
    "run_imputation_cell", "run_task_cell",
    "set_data_cache_dir", "clear_dataset_cache",
    "table2", "table4", "table5", "table6", "table7", "table8", "table9",
    "figures", "sensitivity",
]
