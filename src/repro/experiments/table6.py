"""Table VI — architecture ablations.

Removes the Triple Decomposition (TD) and/or the wavelet TF expansion from
TS3Net ("w/o TD", "w/o TF-Block", "w/o Both") on ETTm1, Electricity,
Traffic, and Exchange. Expected shape: full TS3Net best everywhere,
removing TD hurts more than replacing the TF expansion, removing both
hurts most.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .configs import get_scale
from .engine import add_engine_args, forecast_cell, run_grid
from .results import ResultTable

ABLATION_COLUMNS = ("w/o TD", "w/o TF-Block", "w/o Both", "TS3Net")
_COLUMN_TO_MODEL = {
    "w/o TD": "TS3Net-w/o-TD",
    "w/o TF-Block": "TS3Net-w/o-TFBlock",
    "w/o Both": "TS3Net-w/o-Both",
    "TS3Net": "TS3Net",
}
DEFAULT_DATASETS = ("ETTm1", "Electricity", "Traffic", "Exchange")


def run(scale: str = "tiny", datasets: Optional[Sequence[str]] = None,
        pred_lens: Optional[Sequence[int]] = None, seed: int = 0,
        verbose: bool = False, workers: int = 1,
        cache_dir: Optional[str] = None) -> ResultTable:
    sc = get_scale(scale)
    datasets = list(datasets or DEFAULT_DATASETS)

    rows, specs = [], []
    for dataset in datasets:
        _, horizon_list = sc.windows_for(dataset)
        for pred_len in list(pred_lens or horizon_list):
            for column in ABLATION_COLUMNS:
                rows.append((dataset, pred_len, column))
                specs.append(forecast_cell(_COLUMN_TO_MODEL[column], dataset,
                                           pred_len, scale=scale, seed=seed))
    grid = run_grid(specs, workers=workers, cache_dir=cache_dir,
                    progress=verbose)

    table = ResultTable(f"Table VI — Ablations on model architecture (scale={scale})")
    for (dataset, pred_len, column), metrics in zip(rows, grid.results):
        table.add(dataset, pred_len, column, metrics)
    return table


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--pred-lens", nargs="*", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", default=None)
    add_engine_args(parser)
    args = parser.parse_args(argv)
    table = run(scale=args.scale, datasets=args.datasets,
                pred_lens=args.pred_lens, seed=args.seed, verbose=True,
                workers=args.workers, cache_dir=args.cache_dir)
    print(table.render())
    if args.save:
        table.save_json(args.save)


if __name__ == "__main__":
    main()
