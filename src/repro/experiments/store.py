"""Content-addressed, on-disk result store for experiment cells.

Every finished (model, dataset, setting, scale, seed, ...) measurement is
persisted under a key that hashes *everything the number depends on*:

* the cell spec itself (task, model, dataset, setting, seed, noise ratio,
  model overrides);
* the full scale configuration (window sizes, epoch budget, batch limits,
  learning rate, ...) — so editing a :class:`~repro.experiments.configs.Scale`
  invalidates exactly the cells that ran under it;
* the derived train config;
* a code-version fingerprint over the ``repro`` package sources — so a
  substrate change (new trainer, new model code) invalidates the whole
  store rather than silently serving stale metrics.

Entries are one small JSON file each, so the store is safe under
concurrent writers (each worker writes a different key; writes go through
a same-directory temp file + ``os.replace``) and trivially inspectable.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Iterable, Optional

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``.py`` source file in the installed ``repro`` package.

    Cached per process: the sources cannot change under a running
    experiment, and hashing ~200 small files costs only a few ms once.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(pkg_root)):
            dirnames.sort()
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                digest.update(os.path.relpath(path, pkg_root).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


def canonical_key(payload: Dict) -> str:
    """SHA-256 of the canonical-JSON payload (sorted keys, no whitespace)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultStore:
    """On-disk ``{key -> result dict}`` map, one JSON file per cell."""

    def __init__(self, cache_dir: str):
        self.cache_dir = os.path.abspath(cache_dir)
        os.makedirs(self.cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def get(self, key: str) -> Optional[Dict]:
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None          # torn write / corrupt entry == cache miss

    def put(self, key: str, result: Dict) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(result, fh, indent=2, default=str)
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    # ------------------------------------------------------------------
    def keys(self) -> Iterable[str]:
        for fname in sorted(os.listdir(self.cache_dir)):
            if fname.endswith(".json"):
                yield fname[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            os.unlink(self._path(key))
            removed += 1
        return removed
