"""Computed summaries of result tables (ranks, win rates, degradations).

These power ``scripts/summarize_results.py`` (which fills EXPERIMENTS.md)
and are usable directly for programmatic shape checks on any
:class:`~repro.experiments.results.ResultTable`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from .results import ResultTable


def mean_rank(table: ResultTable, metric: str = "mse") -> Dict[str, float]:
    """Average rank of each model over all rows (1 = best)."""
    totals: Dict[str, float] = defaultdict(float)
    count = 0
    for dataset in table.datasets:
        for key in table.rows_for(dataset):
            row = {m: table.get(dataset, key[1], m)[metric]
                   for m in table.models}
            for rank, model in enumerate(sorted(row, key=row.get), start=1):
                totals[model] += rank
            count += 1
    if count == 0:
        return {}
    return {m: totals[m] / count for m in table.models}


def win_rate(table: ResultTable, model: str) -> Tuple[int, int]:
    """(wins, comparisons) of ``model`` over every row x metric."""
    wins = 0
    total = 0
    for dataset in table.datasets:
        for key in table.rows_for(dataset):
            for metric in table.metric_names:
                total += 1
                wins += table.winners(key, metric) == model
    return wins, total


def degradation_vs(table: ResultTable, reference: str,
                   metric: str = "mse") -> Dict[str, Dict[str, float]]:
    """Per-dataset relative change of each column's average vs. ``reference``.

    Returns ``{dataset: {column: fraction}}`` where a positive fraction
    means the column is *worse* than the reference (larger error).
    """
    out: Dict[str, Dict[str, float]] = {}
    for dataset in table.datasets:
        avg = table.average_row(dataset)
        if reference not in avg:
            continue
        base = avg[reference][metric]
        out[dataset] = {
            model: (cell[metric] - base) / base if base else float("nan")
            for model, cell in avg.items() if model != reference
        }
    return out


def monotone_fraction(table: ResultTable, model: str,
                      metric: str = "mse") -> Tuple[int, int]:
    """On how many datasets the model's error is non-decreasing across the
    row settings (used for Table V's mask-ratio monotonicity)."""
    grows = 0
    total = 0
    for dataset in table.datasets:
        rows = table.rows_for(dataset)
        if len(rows) < 2:
            continue
        first = table.get(dataset, rows[0][1], model)[metric]
        last = table.get(dataset, rows[-1][1], model)[metric]
        grows += last >= first
        total += 1
    return grows, total


def ordered_by_rank(table: ResultTable, metric: str = "mse") -> List[str]:
    ranks = mean_rank(table, metric)
    return sorted(ranks, key=ranks.get)
