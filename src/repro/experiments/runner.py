"""Experiment cell runner: one (model, dataset, setting) measurement.

Handles seeding, dataset caching, window-size resolution (ILI uses short
windows), model construction via the registry, and task execution — so the
per-table modules stay declarative.

Datasets are served by a shared :class:`~repro.data.cache.DatasetCache`
(bounded in-memory LRU + optional on-disk ``.npz`` layer) instead of the
old unbounded per-process ``lru_cache``; point it at a directory with
:func:`set_data_cache_dir` so parallel grid workers share one generation
pass, and drop it with :func:`clear_dataset_cache`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..baselines.registry import build_model
from ..data.cache import DatasetCache
from ..data.dataset import SplitData
from ..data.noise import inject_noise
from ..tasks.forecasting import ForecastTask, run_forecast
from ..tasks.imputation import ImputationTask, run_imputation
from ..tasks.trainer import TrainConfig
from ..utils import set_seed
from .configs import Scale, get_scale

import numpy as np

_dataset_cache = DatasetCache(max_items=16)


def set_data_cache_dir(cache_dir: Optional[str]) -> None:
    """Enable (or disable with ``None``) the shared on-disk dataset cache."""
    _dataset_cache.set_cache_dir(cache_dir)


def clear_dataset_cache(disk: bool = False) -> None:
    """Drop cached datasets (in-memory always; ``.npz`` files if ``disk``)."""
    _dataset_cache.clear(disk=disk)


def dataset_cache_info() -> Dict:
    return _dataset_cache.cache_info()


def get_dataset(name: str, scale: Scale, seed: int = 0) -> SplitData:
    """Load (with caching) the synthetic dataset at this scale."""
    return _dataset_cache.load(name, n_steps=scale.steps_for(name), seed=seed)


def _train_config(scale: Scale) -> TrainConfig:
    return TrainConfig(epochs=scale.epochs, lr=scale.lr, patience=scale.patience)


def _model_overrides(scale: Scale) -> Dict:
    return {"num_scales": scale.num_scales} if scale.num_scales else {}


def _timing_fields(result) -> Dict[str, float]:
    return {"epochs": result.epochs_run, "seconds": result.seconds,
            "train_seconds": result.train_seconds,
            "eval_seconds": result.eval_seconds,
            "epoch_seconds": list(result.epoch_seconds)}


def run_forecast_cell(model_name: str, dataset: str, pred_len: int,
                      scale: str = "tiny", seed: int = 0,
                      noise_rho: float = 0.0,
                      model_overrides: Optional[Dict] = None) -> Dict[str, float]:
    """Train + evaluate one Table IV cell; returns ``{"mse", "mae"}``.

    ``noise_rho`` reproduces the Table VIII robustness protocol (noise
    injected into the training inputs). The noise stream is seeded with
    ``rho`` as well as ``seed`` so distinct noise settings are distinct
    measurements everywhere downstream (in particular in the engine's
    content-addressed result store, where a Table VIII cell must never
    collide with the clean Table IV cell it perturbs).
    """
    sc = get_scale(scale)
    seq_len, _ = sc.windows_for(dataset)
    split = get_dataset(dataset, sc, seed=seed)
    if noise_rho > 0.0:
        rng = np.random.default_rng([seed + 777, int(round(noise_rho * 1e6))])
        split = SplitData(train=inject_noise(split.train, noise_rho, rng),
                          val=split.val, test=split.test,
                          scaler=split.scaler, name=split.name)

    set_seed(seed)
    overrides = dict(_model_overrides(sc))
    overrides.update(model_overrides or {})
    model = build_model(model_name, seq_len=seq_len, pred_len=pred_len,
                        c_in=split.train.shape[1], task="forecast",
                        preset=sc.preset, **overrides)

    task = ForecastTask(seq_len=seq_len, pred_len=pred_len,
                        batch_size=sc.batch_size,
                        max_train_batches=sc.max_train_batches,
                        max_eval_batches=sc.max_eval_batches, seed=seed)
    result = run_forecast(model, split, task, _train_config(sc))
    return {"mse": result.mse, "mae": result.mae, **_timing_fields(result)}


def run_imputation_cell(model_name: str, dataset: str, mask_ratio: float,
                        scale: str = "tiny", seed: int = 0,
                        model_overrides: Optional[Dict] = None) -> Dict[str, float]:
    """Train + evaluate one Table V cell; returns ``{"mse", "mae"}``."""
    sc = get_scale(scale)
    seq_len, _ = sc.windows_for(dataset)
    split = get_dataset(dataset, sc, seed=seed)

    set_seed(seed)
    overrides = dict(_model_overrides(sc))
    overrides.update(model_overrides or {})
    model = build_model(model_name, seq_len=seq_len, pred_len=seq_len,
                        c_in=split.train.shape[1], task="imputation",
                        preset=sc.preset, **overrides)

    task = ImputationTask(seq_len=seq_len, mask_ratio=mask_ratio,
                          batch_size=sc.batch_size,
                          max_train_batches=sc.max_train_batches,
                          max_eval_batches=sc.max_eval_batches, seed=seed)
    result = run_imputation(model, split, task, _train_config(sc))
    return {"mse": result.mse, "mae": result.mae, **_timing_fields(result)}
