"""Experiment cell runner: one (model, dataset, setting) measurement.

Handles seeding, dataset caching, window-size resolution (ILI uses short
windows), model construction via the registry, and task execution — so the
per-table modules stay declarative.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional

from ..baselines.registry import build_model
from ..data.dataset import SplitData, load_dataset
from ..data.noise import inject_noise
from ..tasks.forecasting import ForecastTask, run_forecast
from ..tasks.imputation import ImputationTask, run_imputation
from ..tasks.trainer import TrainConfig
from ..utils import set_seed
from .configs import Scale, get_scale

import numpy as np


@lru_cache(maxsize=32)
def _cached_dataset(name: str, n_steps: Optional[int], seed: int) -> SplitData:
    return load_dataset(name, n_steps=n_steps, seed=seed)


def get_dataset(name: str, scale: Scale, seed: int = 0) -> SplitData:
    """Load (with caching) the synthetic dataset at this scale."""
    return _cached_dataset(name, scale.steps_for(name), seed)


def _train_config(scale: Scale) -> TrainConfig:
    return TrainConfig(epochs=scale.epochs, lr=scale.lr, patience=scale.patience)


def _model_overrides(scale: Scale) -> Dict:
    return {"num_scales": scale.num_scales} if scale.num_scales else {}


def run_forecast_cell(model_name: str, dataset: str, pred_len: int,
                      scale: str = "tiny", seed: int = 0,
                      noise_rho: float = 0.0,
                      model_overrides: Optional[Dict] = None) -> Dict[str, float]:
    """Train + evaluate one Table IV cell; returns ``{"mse", "mae"}``.

    ``noise_rho`` reproduces the Table VIII robustness protocol (noise
    injected into the training inputs).
    """
    sc = get_scale(scale)
    seq_len, _ = sc.windows_for(dataset)
    split = get_dataset(dataset, sc, seed=seed)
    if noise_rho > 0.0:
        rng = np.random.default_rng(seed + 777)
        split = SplitData(train=inject_noise(split.train, noise_rho, rng),
                          val=split.val, test=split.test,
                          scaler=split.scaler, name=split.name)

    set_seed(seed)
    overrides = dict(_model_overrides(sc))
    overrides.update(model_overrides or {})
    model = build_model(model_name, seq_len=seq_len, pred_len=pred_len,
                        c_in=split.train.shape[1], task="forecast",
                        preset=sc.preset, **overrides)

    task = ForecastTask(seq_len=seq_len, pred_len=pred_len,
                        batch_size=sc.batch_size,
                        max_train_batches=sc.max_train_batches,
                        max_eval_batches=sc.max_eval_batches, seed=seed)
    result = run_forecast(model, split, task, _train_config(sc))
    return {"mse": result.mse, "mae": result.mae,
            "epochs": result.epochs_run, "seconds": result.seconds}


def run_imputation_cell(model_name: str, dataset: str, mask_ratio: float,
                        scale: str = "tiny", seed: int = 0,
                        model_overrides: Optional[Dict] = None) -> Dict[str, float]:
    """Train + evaluate one Table V cell; returns ``{"mse", "mae"}``."""
    sc = get_scale(scale)
    seq_len, _ = sc.windows_for(dataset)
    split = get_dataset(dataset, sc, seed=seed)

    set_seed(seed)
    overrides = dict(_model_overrides(sc))
    overrides.update(model_overrides or {})
    model = build_model(model_name, seq_len=seq_len, pred_len=seq_len,
                        c_in=split.train.shape[1], task="imputation",
                        preset=sc.preset, **overrides)

    task = ImputationTask(seq_len=seq_len, mask_ratio=mask_ratio,
                          batch_size=sc.batch_size,
                          max_train_batches=sc.max_train_batches,
                          max_eval_batches=sc.max_eval_batches, seed=seed)
    result = run_imputation(model, split, task, _train_config(sc))
    return {"mse": result.mse, "mae": result.mae,
            "epochs": result.epochs_run, "seconds": result.seconds}
