"""Experiment cell runner: one (model, dataset, setting) measurement.

Handles seeding, dataset caching, window-size resolution (ILI uses short
windows), model construction via the registry, and task execution — so the
per-table modules stay declarative.

Datasets are served by a shared :class:`~repro.data.cache.DatasetCache`
(bounded in-memory LRU + optional on-disk ``.npz`` layer) instead of the
old unbounded per-process ``lru_cache``; point it at a directory with
:func:`set_data_cache_dir` so parallel grid workers share one generation
pass, and drop it with :func:`clear_dataset_cache`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..data.cache import DatasetCache
from ..data.dataset import SplitData
from ..data.noise import inject_noise
from ..tasks.registry import TaskSpec, get_task, run_task
from ..tasks.trainer import TrainConfig
from ..utils import set_seed
from .configs import Scale, get_scale

import numpy as np

_dataset_cache = DatasetCache(max_items=16)


def set_data_cache_dir(cache_dir: Optional[str]) -> None:
    """Enable (or disable with ``None``) the shared on-disk dataset cache."""
    _dataset_cache.set_cache_dir(cache_dir)


def clear_dataset_cache(disk: bool = False) -> None:
    """Drop cached datasets (in-memory always; ``.npz`` files if ``disk``)."""
    _dataset_cache.clear(disk=disk)


def dataset_cache_info() -> Dict:
    return _dataset_cache.cache_info()


def get_dataset(name: str, scale: Scale, seed: int = 0) -> SplitData:
    """Load (with caching) the synthetic dataset at this scale."""
    return _dataset_cache.load(name, n_steps=scale.steps_for(name), seed=seed)


def _train_config(scale: Scale) -> TrainConfig:
    return TrainConfig(epochs=scale.epochs, lr=scale.lr, patience=scale.patience)


def _model_overrides(scale: Scale) -> Dict:
    return {"num_scales": scale.num_scales} if scale.num_scales else {}


def _timing_fields(result) -> Dict[str, float]:
    return {"epochs": result.epochs_run, "seconds": result.seconds,
            "train_seconds": result.train_seconds,
            "eval_seconds": result.eval_seconds,
            "epoch_seconds": list(result.epoch_seconds)}


def run_task_cell(task, model_name: str, dataset: str, setting,
                  scale: str = "tiny", seed: int = 0, noise_rho: float = 0.0,
                  model_overrides: Optional[Dict] = None) -> Dict[str, float]:
    """Train + evaluate one grid cell for any registered task.

    ``task`` is a registry name or a :class:`~repro.tasks.registry.
    TaskSpec`; the spec supplies the config, data, model construction, and
    metric bundle, so one runner serves every table.  Returns the task's
    metrics plus the timing fields.

    ``noise_rho`` reproduces the Table VIII robustness protocol (noise
    injected into the training inputs of split-based tasks). The noise
    stream is seeded with ``rho`` as well as ``seed`` so distinct noise
    settings are distinct measurements everywhere downstream (in
    particular in the engine's content-addressed result store, where a
    Table VIII cell must never collide with the clean Table IV cell it
    perturbs).
    """
    spec = task if isinstance(task, TaskSpec) else get_task(task)
    sc = get_scale(scale)
    seq_len, _ = sc.windows_for(dataset)
    config = spec.make_config(seq_len, setting, batch_size=sc.batch_size,
                              max_train_batches=sc.max_train_batches,
                              max_eval_batches=sc.max_eval_batches, seed=seed)
    if spec.needs_split:
        data = get_dataset(dataset, sc, seed=seed)
        if noise_rho > 0.0:
            rng = np.random.default_rng(
                [seed + 777, int(round(noise_rho * 1e6))])
            data = SplitData(train=inject_noise(data.train, noise_rho, rng),
                             val=data.val, test=data.test,
                             scaler=data.scaler, name=data.name)
    else:
        data = spec.load_data(dataset, sc.steps_for(dataset), seed, config)

    set_seed(seed)
    overrides = dict(_model_overrides(sc))
    overrides.update(model_overrides or {})
    model = spec.build(model_name, config, c_in=spec.channels(data),
                       preset=sc.preset, **overrides)

    result = run_task(spec, model, data, config, _train_config(sc))
    return {**result.metrics, **_timing_fields(result)}


def run_forecast_cell(model_name: str, dataset: str, pred_len: int,
                      scale: str = "tiny", seed: int = 0,
                      noise_rho: float = 0.0,
                      model_overrides: Optional[Dict] = None) -> Dict[str, float]:
    """Train + evaluate one Table IV cell; returns ``{"mse", "mae"}``."""
    return run_task_cell("forecast", model_name, dataset, pred_len,
                         scale=scale, seed=seed, noise_rho=noise_rho,
                         model_overrides=model_overrides)


def run_imputation_cell(model_name: str, dataset: str, mask_ratio: float,
                        scale: str = "tiny", seed: int = 0,
                        model_overrides: Optional[Dict] = None) -> Dict[str, float]:
    """Train + evaluate one Table V cell; returns ``{"mse", "mae"}``."""
    return run_task_cell("imputation", model_name, dataset, mask_ratio,
                         scale=scale, seed=seed,
                         model_overrides=model_overrides)
