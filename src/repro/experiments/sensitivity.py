"""Extended design-choice ablations (beyond the paper's Table IX).

DESIGN.md calls out the remaining knobs the paper fixes without sweeping;
this module sweeps them with the same harness:

* number of stacked TF-Blocks (the paper defaults to 2, mentions 3);
* number of wavelet branches ``m``;
* ``S^0 = 0`` vs. ``S^0 = S^1`` in the spectrum gradient (Eq. 9's choice);
* top-k periods used for S-GD chunking.

Usage::

    python -m repro.experiments.sensitivity --knob num_blocks --scale tiny
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional, Sequence

from .configs import get_scale
from .engine import add_engine_args, forecast_cell, run_grid
from .results import ResultTable

KNOBS: Dict[str, Sequence] = {
    "num_blocks": (1, 2, 3),
    "num_branches": (1, 2, 3),
    "first_chunk_zero": (True, False),
    "top_k_periods": (1, 2, 3),
}

DEFAULT_DATASETS = ("ETTh1", "Exchange")


def run(knob: str, scale: str = "tiny",
        datasets: Optional[Sequence[str]] = None,
        pred_lens: Optional[Sequence[int]] = None,
        values: Optional[Sequence] = None, seed: int = 0,
        verbose: bool = False, workers: int = 1,
        cache_dir: Optional[str] = None) -> ResultTable:
    if knob not in KNOBS:
        raise KeyError(f"unknown knob {knob!r}; choose from {sorted(KNOBS)}")
    sc = get_scale(scale)
    datasets = list(datasets or DEFAULT_DATASETS)
    values = list(values if values is not None else KNOBS[knob])

    rows, specs = [], []
    for dataset in datasets:
        _, horizon_list = sc.windows_for(dataset)
        for pred_len in list(pred_lens or horizon_list[:1]):
            for value in values:
                rows.append((dataset, pred_len, f"{knob}={value}"))
                specs.append(forecast_cell(
                    "TS3Net", dataset, pred_len, scale=scale, seed=seed,
                    overrides={knob: value}))
    grid = run_grid(specs, workers=workers, cache_dir=cache_dir,
                    progress=verbose)

    table = ResultTable(f"Sensitivity of TS3Net to {knob} (scale={scale})")
    for (dataset, pred_len, column), metrics in zip(rows, grid.results):
        table.add(dataset, pred_len, column, metrics)
    return table


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--knob", required=True, choices=sorted(KNOBS))
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--pred-lens", nargs="*", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", default=None)
    add_engine_args(parser)
    args = parser.parse_args(argv)
    table = run(knob=args.knob, scale=args.scale, datasets=args.datasets,
                pred_lens=args.pred_lens, seed=args.seed, verbose=True,
                workers=args.workers, cache_dir=args.cache_dir)
    print(table.render())
    if args.save:
        table.save_json(args.save)


if __name__ == "__main__":
    main()
