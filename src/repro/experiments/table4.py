"""Table IV — long-term forecasting comparison.

Regenerates the paper's main table: MSE/MAE for TS3Net and the 10 baselines
on all 9 datasets across the prediction horizons, with per-dataset averages
and the first-place count. The paper's expected shape: TS3Net wins most
cells (66 firsts), MICN and PatchTST trade second place.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..baselines.registry import MODEL_NAMES
from ..data.specs import FORECAST_DATASETS
from .configs import get_scale
from .engine import add_engine_args, forecast_cell, run_grid
from .results import ResultTable

DEFAULT_MODELS = MODEL_NAMES


def run(scale: str = "tiny", datasets: Optional[Sequence[str]] = None,
        models: Optional[Sequence[str]] = None,
        pred_lens: Optional[Sequence[int]] = None, seed: int = 0,
        verbose: bool = False, workers: int = 1,
        cache_dir: Optional[str] = None) -> ResultTable:
    """Run the forecasting grid; subset arguments allow cheap slices."""
    sc = get_scale(scale)
    datasets = list(datasets or FORECAST_DATASETS)
    models = list(models or DEFAULT_MODELS)

    rows, specs = [], []
    for dataset in datasets:
        _, horizon_list = sc.windows_for(dataset)
        for pred_len in list(pred_lens or horizon_list):
            for model in models:
                rows.append((dataset, pred_len, model))
                specs.append(forecast_cell(model, dataset, pred_len,
                                           scale=scale, seed=seed))
    grid = run_grid(specs, workers=workers, cache_dir=cache_dir,
                    progress=verbose)

    table = ResultTable(f"Table IV — Long-term forecasting (scale={scale})")
    for (dataset, pred_len, model), metrics in zip(rows, grid.results):
        table.add(dataset, pred_len, model, metrics)
    return table


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--models", nargs="*", default=None)
    parser.add_argument("--pred-lens", nargs="*", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", default=None, help="write results JSON here")
    add_engine_args(parser)
    args = parser.parse_args(argv)
    table = run(scale=args.scale, datasets=args.datasets, models=args.models,
                pred_lens=args.pred_lens, seed=args.seed, verbose=True,
                workers=args.workers, cache_dir=args.cache_dir)
    print(table.render())
    if args.save:
        table.save_json(args.save)


if __name__ == "__main__":
    main()
