"""Table II — dataset descriptions.

Prints the benchmark inventory: the paper's dimensions/sizes/frequencies
side by side with the synthetic stand-in actually generated at a scale.
"""

from __future__ import annotations

import argparse

from ..data.specs import FORECAST_DATASETS, IMPUTATION_DATASETS, get_spec
from .configs import get_scale
from .runner import get_dataset


def describe(scale: str = "tiny") -> str:
    sc = get_scale(scale)
    lines = [
        "Table II — Description of datasets (paper vs. generated stand-in)",
        f"{'Dataset':>12s} {'Dim':>5s} {'Frequency':>10s} "
        f"{'Paper size (tr/va/te)':>24s} {'Generated (tr/va/te)':>22s} {'Info':>16s}",
    ]
    for name in FORECAST_DATASETS:
        spec = get_spec(name)
        split = get_dataset(name, sc)
        gen = f"{len(split.train)}/{len(split.val)}/{len(split.test)}"
        paper = "/".join(str(s) for s in spec.paper_sizes)
        lines.append(
            f"{name:>12s} {spec.dim:>5d} {spec.frequency:>10s} "
            f"{paper:>24s} {gen:>22s} {spec.info:>16s}")
    lines.append("")
    lines.append("Imputation datasets: " + ", ".join(IMPUTATION_DATASETS)
                 + " (length-96 windows, mask ratios 12.5/25/37.5/50%)")
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--cache-dir", default=None,
                        help="share the engine's on-disk dataset cache")
    args = parser.parse_args(argv)
    if args.cache_dir:
        from . import runner
        import os
        runner.set_data_cache_dir(os.path.join(args.cache_dir, "data"))
    print(describe(args.scale))


if __name__ == "__main__":
    main()
