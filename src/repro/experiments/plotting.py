"""Terminal plotting helpers for the figure reproductions.

No plotting library is available offline, so figures render as ASCII line
charts and heat maps plus CSV files a user can replot elsewhere.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

_HEAT_CHARS = " .:-=+*#%@"


def ascii_lineplot(series: Dict[str, np.ndarray], width: int = 72,
                   height: int = 14) -> str:
    """Overlay named series on one character grid (first letter = marker)."""
    all_vals = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    for name, values in series.items():
        values = np.asarray(values, dtype=float)
        marker = name[0]
        xs = np.linspace(0, len(values) - 1, width).astype(int)
        for col, xi in enumerate(xs):
            frac = (values[xi] - lo) / (hi - lo)
            row = height - 1 - int(round(frac * (height - 1)))
            grid[row][col] = marker

    lines = ["".join(row) for row in grid]
    legend = "   ".join(f"{name[0]} = {name}" for name in series)
    footer = f"y in [{lo:.2f}, {hi:.2f}], x = time steps | {legend}"
    return "\n".join(lines + [footer])


def ascii_heatmap(matrix: np.ndarray, width: int = 72, height: int = 12,
                  label: str = "") -> str:
    """Render a 2-D array (rows = frequency, cols = time) as a char density map."""
    m = np.asarray(matrix, dtype=float)
    lo, hi = float(m.min()), float(m.max())
    scale = (hi - lo) if hi > lo else 1.0

    rows = np.linspace(0, m.shape[0] - 1, height).astype(int)
    cols = np.linspace(0, m.shape[1] - 1, width).astype(int)
    lines = []
    for r in rows:
        chars = []
        for c in cols:
            level = int((m[r, c] - lo) / scale * (len(_HEAT_CHARS) - 1))
            chars.append(_HEAT_CHARS[level])
        lines.append("".join(chars))
    if label:
        lines.append(f"{label}  (rows: low->high frequency, cols: time; "
                     f"values in [{lo:.2f}, {hi:.2f}])")
    return "\n".join(lines)


def save_csv(path: str, columns: Dict[str, Sequence[float]]) -> None:
    """Write named columns (equal length) as a CSV for external replotting."""
    names = list(columns)
    arrays = [np.asarray(columns[n], dtype=float).reshape(-1) for n in names]
    length = max(len(a) for a in arrays)
    with open(path, "w") as fh:
        fh.write(",".join(names) + "\n")
        for i in range(length):
            cells = [f"{a[i]:.6f}" if i < len(a) else "" for a in arrays]
            fh.write(",".join(cells) + "\n")
