"""Table IX — sensitivity to lambda (number of spectral sub-bands).

TS3Net is retrained at several values of lambda on ETTh1/ETTh2/Exchange.
The paper sweeps {50, 100, 150, 200}; at reduced scales the sweep covers
the proportional range. Expected shape: too-small lambda is slightly worse,
then performance plateaus — the model is insensitive above a threshold.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .configs import get_scale
from .engine import add_engine_args, forecast_cell, run_grid
from .results import ResultTable

DEFAULT_DATASETS = ("ETTh1", "ETTh2", "Exchange")
PAPER_LAMBDAS = (50, 100, 150, 200)
TINY_LAMBDAS = (4, 8, 16)


def run(scale: str = "tiny", datasets: Optional[Sequence[str]] = None,
        pred_lens: Optional[Sequence[int]] = None,
        lambdas: Optional[Sequence[int]] = None, seed: int = 0,
        verbose: bool = False, workers: int = 1,
        cache_dir: Optional[str] = None) -> ResultTable:
    sc = get_scale(scale)
    datasets = list(datasets or DEFAULT_DATASETS)
    if lambdas is None:
        lambdas = PAPER_LAMBDAS if scale == "paper" else TINY_LAMBDAS

    rows, specs = [], []
    for dataset in datasets:
        _, horizon_list = sc.windows_for(dataset)
        for pred_len in list(pred_lens or horizon_list):
            for lam in lambdas:
                rows.append((dataset, pred_len, f"lambda={lam}"))
                specs.append(forecast_cell(
                    "TS3Net", dataset, pred_len, scale=scale, seed=seed,
                    overrides={"num_scales": int(lam)}))
    grid = run_grid(specs, workers=workers, cache_dir=cache_dir,
                    progress=verbose)

    table = ResultTable(f"Table IX — lambda sensitivity (scale={scale})")
    for (dataset, pred_len, column), metrics in zip(rows, grid.results):
        table.add(dataset, pred_len, column, metrics)
    return table


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--pred-lens", nargs="*", type=int, default=None)
    parser.add_argument("--lambdas", nargs="*", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", default=None)
    add_engine_args(parser)
    args = parser.parse_args(argv)
    table = run(scale=args.scale, datasets=args.datasets,
                pred_lens=args.pred_lens, lambdas=args.lambdas,
                seed=args.seed, verbose=True,
                workers=args.workers, cache_dir=args.cache_dir)
    print(table.render())
    if args.save:
        table.save_json(args.save)


if __name__ == "__main__":
    main()
