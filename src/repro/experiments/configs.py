"""Experiment scales and the Table III configuration.

The paper's experiments (Table III) run at lookback 96 (36 for ILI) with
lambda=100 on a V100; on a CPU-only box the same code runs at reduced
scales. Three presets:

* ``tiny``  — seconds per cell; used by the test/benchmark suite;
* ``small`` — minutes per table; closer statistics;
* ``paper`` — Table III's exact hyper-parameters and the paper's split
  sizes (slow on CPU, provided for completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..data.synthetic import paper_scale_steps


@dataclass(frozen=True)
class Scale:
    """One experiment scale: data sizes, window sizes, and training budget."""

    name: str
    n_steps: Optional[int]            # None = the paper's split sizes
    seq_len: int
    pred_lens: Tuple[int, ...]
    ili_seq_len: int
    ili_pred_lens: Tuple[int, ...]
    epochs: int
    batch_size: int
    max_train_batches: Optional[int]
    max_eval_batches: Optional[int]
    preset: str                       # model size preset for the registry
    lr: float = 1e-3
    patience: int = 3
    num_scales: Optional[int] = None  # lambda override (None = preset default)

    def steps_for(self, dataset: str) -> Optional[int]:
        if self.n_steps is None:
            return paper_scale_steps(dataset)
        if dataset == "ILI":
            # ILI is small in reality (weekly data) — keep it proportionally
            # small, but large enough that every split fits the 36-step
            # lookback plus the longest horizon.
            return max(800, self.n_steps // 2)
        return self.n_steps

    def windows_for(self, dataset: str) -> Tuple[int, Tuple[int, ...]]:
        """(seq_len, pred_lens) for a dataset (ILI uses short windows)."""
        if dataset == "ILI":
            return self.ili_seq_len, self.ili_pred_lens
        return self.seq_len, self.pred_lens


SCALES: Dict[str, Scale] = {
    "micro": Scale(
        name="micro", n_steps=400, seq_len=24, pred_lens=(8,),
        ili_seq_len=24, ili_pred_lens=(8,), epochs=1, batch_size=8,
        max_train_batches=2, max_eval_batches=1, preset="tiny", lr=2e-3,
        num_scales=4),
    "tiny": Scale(
        name="tiny", n_steps=1200, seq_len=48, pred_lens=(12, 24),
        ili_seq_len=36, ili_pred_lens=(12, 24), epochs=2, batch_size=16,
        max_train_batches=12, max_eval_batches=6, preset="tiny", lr=2e-3),
    "small": Scale(
        name="small", n_steps=2000, seq_len=48, pred_lens=(24, 48),
        ili_seq_len=36, ili_pred_lens=(24, 36), epochs=4, batch_size=16,
        max_train_batches=40, max_eval_batches=10, preset="tiny", lr=2e-3,
        num_scales=8),
    "paper": Scale(
        name="paper", n_steps=None, seq_len=96,
        pred_lens=(96, 192, 336, 720), ili_seq_len=36,
        ili_pred_lens=(24, 36, 48, 60), epochs=10, batch_size=32,
        max_train_batches=None, max_eval_batches=None, preset="paper",
        lr=1e-4, num_scales=100),
}


def get_scale(name: str) -> Scale:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(SCALES)}") from None


TABLE3_ROWS = (
    ("Long-term Forecasting", {"lambda": 100, "layers": 2, "d_min": 32,
                               "d_max": 512, "lr": 1e-4, "loss": "MSE",
                               "batch_size": 32, "epochs": 10}),
    ("Imputation", {"lambda": 100, "layers": 2, "d_min": 64, "d_max": 128,
                    "lr": 1e-3, "loss": "MSE", "batch_size": 16,
                    "epochs": 10}),
)


def format_table3() -> str:
    """Render Table III (experiment configuration of TS3Net)."""
    lines = ["Table III — Experiment configuration of TS3Net "
             "(Adam, betas=(0.9, 0.999))",
             f"{'Task':24s} {'lambda':>7s} {'Layers':>7s} {'d_min':>6s} "
             f"{'d_max':>6s} {'LR':>8s} {'Loss':>5s} {'Batch':>6s} {'Epochs':>7s}"]
    for task, cfg in TABLE3_ROWS:
        lines.append(
            f"{task:24s} {cfg['lambda']:>7d} {cfg['layers']:>7d} "
            f"{cfg['d_min']:>6d} {cfg['d_max']:>6d} {cfg['lr']:>8.0e} "
            f"{cfg['loss']:>5s} {cfg['batch_size']:>6d} {cfg['epochs']:>7d}")
    return "\n".join(lines)
