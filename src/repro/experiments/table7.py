"""Table VII — triple decomposition vs. trend-seasonal decomposition.

Compares TS3Net with two trend-seasonal controls: TSD-CNN (same conv
backbone, no S-GD) and TSD-Trans (vanilla Transformer backbone), on
ETTm1, ETTm2, and Exchange. Expected shape: TS3Net best on most of the
15 comparisons.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .configs import get_scale
from .engine import add_engine_args, forecast_cell, run_grid
from .results import ResultTable

MODELS = ("TSD-CNN", "TSD-Trans", "TS3Net")
DEFAULT_DATASETS = ("ETTm1", "ETTm2", "Exchange")


def run(scale: str = "tiny", datasets: Optional[Sequence[str]] = None,
        pred_lens: Optional[Sequence[int]] = None, seed: int = 0,
        verbose: bool = False, workers: int = 1,
        cache_dir: Optional[str] = None) -> ResultTable:
    sc = get_scale(scale)
    datasets = list(datasets or DEFAULT_DATASETS)

    rows, specs = [], []
    for dataset in datasets:
        _, horizon_list = sc.windows_for(dataset)
        for pred_len in list(pred_lens or horizon_list):
            for model in MODELS:
                rows.append((dataset, pred_len, model))
                specs.append(forecast_cell(model, dataset, pred_len,
                                           scale=scale, seed=seed))
    grid = run_grid(specs, workers=workers, cache_dir=cache_dir,
                    progress=verbose)

    table = ResultTable(
        f"Table VII — Triple vs. trend-seasonal decomposition (scale={scale})")
    for (dataset, pred_len, model), metrics in zip(rows, grid.results):
        table.add(dataset, pred_len, model, metrics)
    return table


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--pred-lens", nargs="*", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", default=None)
    add_engine_args(parser)
    args = parser.parse_args(argv)
    table = run(scale=args.scale, datasets=args.datasets,
                pred_lens=args.pred_lens, seed=args.seed, verbose=True,
                workers=args.workers, cache_dir=args.cache_dir)
    print(table.render())
    if args.save:
        table.save_json(args.save)


if __name__ == "__main__":
    main()
