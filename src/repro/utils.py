"""Shared utilities: global seeding and small helpers."""

from __future__ import annotations

import numpy as np

_global_rng = np.random.default_rng(0)


def set_seed(seed: int) -> None:
    """Seed the library-wide RNG used for weight init, dropout, and shuffling.

    Call before building a model to make an experiment fully reproducible,
    mirroring ``torch.manual_seed`` in the original code base.
    """
    global _global_rng
    _global_rng = np.random.default_rng(seed)


def get_rng() -> np.random.Generator:
    """Return the library-wide RNG (see :func:`set_seed`)."""
    return _global_rng
