"""Spectrum-Gradient Decomposition (S-GD), Eq. 9-11.

Pipeline per the paper, for a seasonal input ``X_seasonal`` of shape
(B, T, C):

1. expand into the temporal-frequency tensor ``X_2D = Amp(WT(X))`` of shape
   (B, C, lambda, T) via the CWT operator (Eq. 7-8);
2. split ``X_2D`` along time into ``u = ceil(T / T_f)`` non-overlapping
   sub-series of length ``T_f`` (the dominant FFT period);
3. the spectrum gradient of sub-series ``i`` is
   ``Delta^i = S^i - S^{i-1}`` with ``S^0 = 0`` (Eq. 9);
4. ``Delta_1D = IWT(Delta_2D)`` collapses the gradient back to 1-D;
5. ``X_regular = X_seasonal - Delta_1D`` and ``X_fluctuant = Delta_2D``
   (Eq. 10), so ``X_regular + Delta_1D == X_seasonal`` exactly.

The whole operation is differentiable (fixed linear CWT/IWT + slicing), so
the same layer is reused between TF-Blocks inside TS3Net (Eq. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..autodiff import Tensor, ops
from ..nn.module import Module
from ..spectral.cwt import CWTOperator
from ..spectral.periods import dominant_period


def chunk_gradient(x2d: Tensor, period: int, first_chunk_zero: bool = True) -> Tensor:
    """Difference of consecutive length-``period`` chunks along the last axis.

    ``x2d`` is (..., T). Output has the same shape; positions in chunk ``i``
    hold ``S^i - S^{i-1}``. With ``first_chunk_zero=True`` (the paper's
    ``S^0 = 0``), chunk 1's gradient is its own spectrum; otherwise chunk 1
    is zero (an ablation knob).
    """
    t = x2d.shape[-1]
    period = max(1, min(period, t))
    u = -(-t // period)                               # ceil division
    pad_len = u * period - t
    x = x2d
    if pad_len:
        widths = [(0, 0)] * (x.ndim - 1) + [(0, pad_len)]
        x = ops.pad(x, widths)
    lead = x.shape[:-1]
    chunked = x.reshape(*lead, u, period)

    if u == 1:
        delta = chunked if first_chunk_zero else chunked * 0.0
    else:
        diffs = chunked[..., 1:, :] - chunked[..., :-1, :]
        first = chunked[..., :1, :]
        if not first_chunk_zero:
            first = first * 0.0
        delta = ops.concat([first, diffs], axis=-2)

    delta = delta.reshape(*lead, u * period)
    if pad_len:
        index = [slice(None)] * delta.ndim
        index[-1] = slice(0, t)
        delta = delta[tuple(index)]
    return delta


@dataclass
class SGDResult:
    """Output bundle of one S-GD application."""

    regular: Tensor          # (B, T, C) — X_seasonal minus the 1-D gradient
    fluctuant: Tensor        # (B, C, lambda, T) — the spectrum gradient Delta_2D
    delta_1d: Tensor         # (B, T, C) — IWT(Delta_2D)
    tf_distribution: Tensor  # (B, C, lambda, T) — Amp(WT(X)), for analysis
    period: int              # the T_f used for chunking


class SpectrumGradientDecomposition(Module):
    """The S-GD layer (Eq. 11): ``S-GD(X_seasonal) = [X_regular, X_fluctuant]``.

    Parameters
    ----------
    seq_len:
        Series length T the operator is built for.
    num_scales:
        The hyper-parameter ``lambda`` (spectral sub-bands).
    wavelet:
        Mother wavelet name; the paper's default is the complex Gaussian.
    period:
        Fixed sub-series length ``T_f``. When None, the dominant FFT period
        of each batch is detected on the fly (Eq. 2 with k=1).
    first_chunk_zero:
        Paper-faithful ``S^0 = 0`` when True.
    """

    def __init__(self, seq_len: int, num_scales: int, wavelet: str = "cgau1",
                 period: Optional[int] = None, first_chunk_zero: bool = True):
        super().__init__()
        self.seq_len = seq_len
        self.num_scales = num_scales
        self.operator = CWTOperator.cached(seq_len, num_scales, wavelet)
        self.period = period
        self.first_chunk_zero = first_chunk_zero

    def forward(self, x: Tensor, period: Optional[int] = None) -> SGDResult:
        """Decompose (B, T, C) into regular/fluctuant parts.

        ``period`` overrides the sub-series length T_f for this call (TS3Net
        detects the period once on the raw input and shares it across its
        internal S-GD layers).
        """
        if x.shape[-2] != self.seq_len:
            raise ValueError(
                f"S-GD built for T={self.seq_len}, got series of length {x.shape[-2]}")
        period = (period or self.period
                  or dominant_period(x.data if x.ndim == 3 else x.data[None]))

        x_t = x.swapaxes(-2, -1)                              # (B, C, T)
        tf = self.operator.amplitude(x_t)                     # (B, C, lam, T)
        delta2d = chunk_gradient(tf, period, self.first_chunk_zero)
        delta1d = self.operator.inverse(delta2d)              # (B, C, T)
        delta1d = delta1d.swapaxes(-2, -1)                    # (B, T, C)
        regular = x - delta1d
        return SGDResult(regular=regular, fluctuant=delta2d, delta_1d=delta1d,
                         tf_distribution=tf, period=period)
