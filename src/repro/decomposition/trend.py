"""Trend decomposition (Eq. 1): X_trend = AvgPool(Padding(X)), seasonal = X - trend.

This is the "recently popular decoupling approach" the paper adopts from
MICN/FEDformer/Autoformer: moving averages at several window sizes with
replicate padding (so the output keeps length T), averaged across windows.
Works on autodiff tensors, so it can also sit inside model blocks
(Autoformer uses it between attention layers).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..autodiff import Tensor
from ..autodiff.ops import avg_pool1d
from ..nn.module import Module

DEFAULT_KERNELS = (13, 17)


class SeriesDecomposition(Module):
    """Multi-scale moving-average trend/seasonal split on (B, T, C) tensors."""

    def __init__(self, kernel_sizes: Sequence[int] = DEFAULT_KERNELS):
        super().__init__()
        for k in kernel_sizes:
            if k < 1 or k % 2 == 0:
                raise ValueError(f"kernel sizes must be odd and >= 1, got {k}")
        self.kernel_sizes = tuple(kernel_sizes)

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(seasonal, trend)`` with ``seasonal + trend == x``."""
        x_t = x.swapaxes(-2, -1)                      # (B, C, T)
        trends = []
        for k in self.kernel_sizes:
            pooled = avg_pool1d(x_t, k, stride=1, padding=(k - 1) // 2,
                                pad_mode="edge")
            trends.append(pooled)
        trend = trends[0]
        for t in trends[1:]:
            trend = trend + t
        trend = trend / float(len(trends))
        trend = trend.swapaxes(-2, -1)                # (B, T, C)
        return x - trend, trend


def decompose_trend_array(x: np.ndarray,
                          kernel_sizes: Sequence[int] = DEFAULT_KERNELS
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """NumPy fast path for data-level use: returns ``(seasonal, trend)``.

    Accepts (T,), (T, C) or (B, T, C); the trend is the average of centred
    moving averages with replicate padding at each window size.
    """
    x = np.asarray(x, dtype=float)
    squeeze_channels = x.ndim == 1
    if squeeze_channels:
        x = x[:, None]
    squeeze_batch = x.ndim == 2
    if squeeze_batch:
        x = x[None]

    b, t, c = x.shape
    trend = np.zeros_like(x)
    for k in kernel_sizes:
        half = (k - 1) // 2
        padded = np.pad(x, ((0, 0), (half, half), (0, 0)), mode="edge")
        kernel = np.ones(k) / k
        smoothed = np.apply_along_axis(
            lambda s: np.convolve(s, kernel, mode="valid"), 1, padded)
        trend += smoothed
    trend /= len(kernel_sizes)

    seasonal = x - trend
    if squeeze_batch:
        seasonal, trend = seasonal[0], trend[0]
    if squeeze_channels:
        seasonal, trend = seasonal[..., 0], trend[..., 0]
    return seasonal, trend
