"""Triple Decomposition (TD) — the paper's headline contribution.

``TripleDecomposition`` chains the two stages of Fig. 1:

1. trend decomposition: ``X = X_trend + X_seasonal`` (Eq. 1);
2. spectrum-gradient decomposition of the seasonal part:
   ``S-GD(X_seasonal) = [X_regular, X_fluctuant]`` (Eq. 9-11).

The invariants, both enforced by tests:

* ``trend + seasonal == x`` exactly;
* ``regular + delta_1d == seasonal`` exactly (Eq. 10 defines regular by
  subtraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..autodiff import Tensor
from ..nn.module import Module
from .spectrum_gradient import SGDResult, SpectrumGradientDecomposition
from .trend import DEFAULT_KERNELS, SeriesDecomposition


@dataclass
class TripleDecompositionResult:
    """The three components (plus diagnostics) of one decomposition."""

    trend: Tensor            # (B, T, C)
    seasonal: Tensor         # (B, T, C) — intermediate, = regular + delta_1d
    regular: Tensor          # (B, T, C)
    fluctuant: Tensor        # (B, C, lambda, T) spectrum-gradient tensor
    delta_1d: Tensor         # (B, T, C) — the 1-D image of the fluctuant part
    tf_distribution: Tensor  # (B, C, lambda, T) — Amp(WT(seasonal))
    period: int


class TripleDecomposition(Module):
    """Decouple (B, T, C) series into trend / regular / fluctuant parts."""

    def __init__(self, seq_len: int, num_scales: int = 16,
                 wavelet: str = "cgau1",
                 trend_kernels: Sequence[int] = DEFAULT_KERNELS,
                 period: Optional[int] = None,
                 first_chunk_zero: bool = True):
        super().__init__()
        self.trend_decomp = SeriesDecomposition(trend_kernels)
        self.sgd = SpectrumGradientDecomposition(
            seq_len, num_scales, wavelet=wavelet, period=period,
            first_chunk_zero=first_chunk_zero)

    def forward(self, x: Tensor) -> TripleDecompositionResult:
        seasonal, trend = self.trend_decomp(x)
        sgd: SGDResult = self.sgd(seasonal)
        return TripleDecompositionResult(
            trend=trend, seasonal=seasonal, regular=sgd.regular,
            fluctuant=sgd.fluctuant, delta_1d=sgd.delta_1d,
            tf_distribution=sgd.tf_distribution, period=sgd.period)


def decompose_array(x: np.ndarray, num_scales: int = 16,
                    wavelet: str = "cgau1",
                    trend_kernels: Sequence[int] = DEFAULT_KERNELS,
                    period: Optional[int] = None) -> TripleDecompositionResult:
    """Convenience NumPy entry point: triple-decompose a (T,), (T, C) or
    (B, T, C) array, returning tensors whose ``.data`` holds the components.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    if x.ndim == 2:
        x = x[None]
    td = TripleDecomposition(seq_len=x.shape[1], num_scales=num_scales,
                             wavelet=wavelet, period=period)
    return td(Tensor(x))
