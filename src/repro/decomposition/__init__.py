"""Triple decomposition: trend + spectrum-gradient decompositions."""

from .trend import DEFAULT_KERNELS, SeriesDecomposition, decompose_trend_array
from .spectrum_gradient import (
    SGDResult, SpectrumGradientDecomposition, chunk_gradient,
)
from .triple import TripleDecomposition, TripleDecompositionResult, decompose_array

__all__ = [
    "DEFAULT_KERNELS", "SeriesDecomposition", "decompose_trend_array",
    "SGDResult", "SpectrumGradientDecomposition", "chunk_gradient",
    "TripleDecomposition", "TripleDecompositionResult", "decompose_array",
]
