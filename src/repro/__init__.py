"""repro — a full reproduction of TS3Net (ICDE 2024).

TS3Net: Triple Decomposition with Spectrum Gradient for Long-Term Time
Series Analysis (Ma, Hong, Lu, Li).

The package is self-contained on NumPy: it ships its own autodiff engine
(:mod:`repro.autodiff`), neural-network layers (:mod:`repro.nn`),
optimisers (:mod:`repro.optim`), the wavelet/CWT spectral substrate
(:mod:`repro.spectral`), the paper's triple decomposition
(:mod:`repro.decomposition`) and TS3Net model (:mod:`repro.core`), ten
baselines (:mod:`repro.baselines`), synthetic benchmark datasets
(:mod:`repro.data`), task drivers (:mod:`repro.tasks`), and one experiment
module per paper table/figure (:mod:`repro.experiments`).

Quick start::

    from repro import TS3Net, TS3NetConfig, Tensor
    from repro.data import load_dataset
    from repro.tasks import ForecastTask, run_forecast

    split = load_dataset("ETTh1", n_steps=1200)
    model = TS3Net(TS3NetConfig(seq_len=48, pred_len=24,
                                c_in=split.train.shape[1]))
    result = run_forecast(model, split, ForecastTask(seq_len=48, pred_len=24))
    print(result.mse, result.mae)
"""

from .autodiff import Tensor, no_grad
from .core import TS3Net, TS3NetConfig
from .decomposition import TripleDecomposition, decompose_array
from .utils import get_rng, set_seed

__version__ = "1.0.0"

__all__ = [
    "Tensor", "no_grad", "TS3Net", "TS3NetConfig", "TripleDecomposition",
    "decompose_array", "get_rng", "set_seed", "__version__",
]
