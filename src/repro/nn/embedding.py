"""Input embeddings shared by TS3Net and every baseline.

The paper states: "For a fair comparison, we design the same input embedding
and final prediction layer for all base models." This module is that shared
embedding: a token (value) embedding via 1-D convolution plus a fixed
sinusoidal positional encoding, i.e. the standard ``DataEmbedding`` of the
TimesNet/Autoformer code family (without calendar features, which the
synthetic datasets do not carry).
"""

from __future__ import annotations

import math

import numpy as np

from ..autodiff import Tensor
from .layers import Conv1d, Dropout, Linear
from .module import Module


def sinusoidal_position_encoding(length: int, d_model: int) -> np.ndarray:
    """The classic fixed sin/cos positional table of shape (length, d_model)."""
    position = np.arange(length)[:, None].astype(float)
    div = np.exp(np.arange(0, d_model, 2) * (-math.log(10000.0) / d_model))
    table = np.zeros((length, d_model))
    table[:, 0::2] = np.sin(position * div)
    table[:, 1::2] = np.cos(position * div[: table[:, 1::2].shape[1]])
    return table


class TokenEmbedding(Module):
    """Value embedding: circular 1-D conv from C input channels to d_model."""

    def __init__(self, c_in: int, d_model: int, kernel_size: int = 3):
        super().__init__()
        self.conv = Conv1d(c_in, d_model, kernel_size, padding=kernel_size // 2,
                           bias=False)

    def forward(self, x: Tensor) -> Tensor:
        # x: (B, T, C) -> conv over time -> (B, T, d_model)
        out = self.conv(x.transpose(0, 2, 1))
        return out.transpose(0, 2, 1)


class PositionalEmbedding(Module):
    """Fixed sinusoidal positional encoding (not trained)."""

    def __init__(self, d_model: int, max_len: int = 4096):
        super().__init__()
        self._table = sinusoidal_position_encoding(max_len, d_model)

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[1]
        return Tensor(self._table[:length][None, :, :])


class DataEmbedding(Module):
    """TokenEmbedding + PositionalEmbedding + dropout, on (B, T, C) input."""

    def __init__(self, c_in: int, d_model: int, dropout: float = 0.1):
        super().__init__()
        self.value = TokenEmbedding(c_in, d_model)
        self.position = PositionalEmbedding(d_model)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        out = self.value(x) + self.position(x)
        return self.dropout(out)


class LinearEmbedding(Module):
    """Lightweight per-timestep linear embedding (used by MLP baselines)."""

    def __init__(self, c_in: int, d_model: int, dropout: float = 0.0):
        super().__init__()
        self.proj = Linear(c_in, d_model)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.proj(x))
