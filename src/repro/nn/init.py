"""Weight initialisers (Xavier/Kaiming), seeded through ``repro.utils``."""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..utils import get_rng


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:                       # Linear: (in, out) layout used here
        return shape[0], shape[1]
    if len(shape) >= 3:                       # Conv: (out, in, *kernel)
        receptive = int(np.prod(shape[2:]))
        return shape[1] * receptive, shape[0] * receptive
    return shape[0], shape[0]


def xavier_uniform(shape: Tuple[int, ...], gain: float = 1.0,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or get_rng()
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], a: float = math.sqrt(5.0),
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """PyTorch's default Linear/Conv init (uniform He with a=sqrt(5))."""
    rng = rng or get_rng()
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def bias_uniform(shape: Tuple[int, ...], fan_in: int,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or get_rng()
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: Tuple[int, ...], std: float = 0.02,
           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or get_rng()
    return rng.normal(0.0, std, size=shape)
