"""Vanilla Transformer encoder building blocks used by several baselines."""

from __future__ import annotations

from typing import Optional

from ..autodiff import Tensor
from .attention import MultiHeadAttention
from .layers import Dropout, GELU, LayerNorm, Linear
from .module import Module, ModuleList, Sequential


class FeedForward(Module):
    """Position-wise feed-forward network (Linear - GELU - Linear)."""

    def __init__(self, d_model: int, d_ff: Optional[int] = None,
                 dropout: float = 0.1):
        super().__init__()
        d_ff = d_ff or 4 * d_model
        self.net = Sequential(
            Linear(d_model, d_ff), GELU(), Dropout(dropout),
            Linear(d_ff, d_model), Dropout(dropout),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class EncoderLayer(Module):
    """Pre-norm Transformer encoder layer."""

    def __init__(self, d_model: int, n_heads: int, d_ff: Optional[int] = None,
                 dropout: float = 0.1, attention: Optional[Module] = None):
        super().__init__()
        self.attn = attention or MultiHeadAttention(d_model, n_heads, dropout)
        self.ff = FeedForward(d_model, d_ff, dropout)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)

    def forward(self, x: Tensor, **attn_kwargs) -> Tensor:
        x = x + self.attn(self.norm1(x), **attn_kwargs)
        x = x + self.ff(self.norm2(x))
        return x


class TransformerEncoder(Module):
    """Stack of encoder layers with a final LayerNorm."""

    def __init__(self, d_model: int, n_heads: int, num_layers: int = 2,
                 d_ff: Optional[int] = None, dropout: float = 0.1,
                 attention_factory=None):
        super().__init__()
        self.layers = ModuleList([
            EncoderLayer(
                d_model, n_heads, d_ff, dropout,
                attention=attention_factory() if attention_factory else None,
            )
            for _ in range(num_layers)
        ])
        self.norm = LayerNorm(d_model)

    def forward(self, x: Tensor, **attn_kwargs) -> Tensor:
        for layer in self.layers:
            x = layer(x, **attn_kwargs)
        return self.norm(x)
