"""Checkpoint saving/loading for modules (``.npz`` format).

A checkpoint stores every named parameter plus optional user metadata
(config dicts, epoch counters). Loading validates names and shapes via
``Module.load_state_dict``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .module import Module

_META_KEY = "__repro_meta__"

#: Metadata a checkpoint must carry for the model to be rebuilt from it
#: (``repro forecast``, the serving ModelRegistry).
REQUIRED_METADATA_KEYS = ("model", "task", "seq_len", "pred_len", "c_in")


def validate_checkpoint_metadata(meta: Dict[str, Any],
                                 expect_task: Optional[str] = None,
                                 source: str = "checkpoint") -> Dict[str, Any]:
    """Check that ``meta`` describes a rebuildable model; return it.

    Raises ``ValueError`` when required keys are missing (e.g. a bare
    ``.npz`` not written by ``repro train --save``), when the checkpoint's
    task is not in the task registry (the error names the known tasks),
    when a task-specific required key declared by that task's ``TaskSpec``
    is absent, or when the checkpoint was trained for a different task than
    ``expect_task`` — loading an imputation checkpoint into a forecast path
    produces garbage, so this is rejected up front rather than detected
    downstream.
    """
    # Imported here: repro.tasks.registry is a higher layer than nn.
    from ..tasks.registry import UnknownTaskError, get_task

    missing = [key for key in REQUIRED_METADATA_KEYS if key not in meta]
    if missing:
        raise ValueError(
            f"{source} is missing metadata {missing}; pass a checkpoint "
            "written by `repro train --save`")
    for key in ("seq_len", "pred_len", "c_in"):
        value = meta[key]
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise ValueError(
                f"{source} metadata {key}={value!r} is not a positive integer")
    try:
        spec = get_task(meta["task"])
    except UnknownTaskError as exc:
        raise ValueError(f"{source} {exc}") from None
    task_missing = [key for key in spec.required_metadata if key not in meta]
    if task_missing:
        raise ValueError(
            f"{source} is missing task {spec.name!r} metadata {task_missing}")
    if expect_task is not None and meta["task"] != expect_task:
        raise ValueError(
            f"{source} was trained for task {meta['task']!r}, not "
            f"{expect_task!r}; its outputs would be meaningless here")
    return meta


def save_checkpoint(model: Module, path: str,
                    metadata: Optional[Dict[str, Any]] = None) -> None:
    """Write the model's parameters (and JSON-serialisable metadata) to ``path``."""
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    payload = dict(state)
    meta = dict(metadata or {})
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **payload)


def read_checkpoint(path: str) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Read a checkpoint's ``(state, metadata)`` without needing a model.

    Used by consumers that re-publish the raw arrays instead of loading
    them into a module (the serving cluster's shared-memory weight spool).
    """
    with np.load(path) as archive:
        meta_raw = archive[_META_KEY] if _META_KEY in archive.files else None
        state = {name: archive[name] for name in archive.files
                 if name != _META_KEY}
    meta = ({} if meta_raw is None
            else json.loads(bytes(meta_raw.tobytes()).decode("utf-8")))
    return state, meta


def load_checkpoint(model: Module, path: str) -> Dict[str, Any]:
    """Load parameters from ``path`` into ``model``; returns the metadata.

    Raises ``KeyError``/``ValueError`` on name or shape mismatches, so a
    checkpoint can never be silently loaded into the wrong architecture.
    """
    state, meta = read_checkpoint(path)
    model.load_state_dict(state)
    return meta


def peek_metadata(path: str) -> Dict[str, Any]:
    """Read only the metadata of a checkpoint (no model needed)."""
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            return {}
        return json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
