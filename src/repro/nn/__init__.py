"""Neural-network layer library on the autodiff substrate."""

from .module import Module, ModuleList, Parameter, Sequential
from .layers import (
    BatchNorm2d, Conv1d, Conv2d, Dropout, GELU, Identity, LayerNorm, Linear,
    ReLU, RevIN, Sigmoid, Tanh,
)
from .embedding import (
    DataEmbedding, LinearEmbedding, PositionalEmbedding, TokenEmbedding,
    sinusoidal_position_encoding,
)
from .attention import (
    AutoCorrelation, MultiHeadAttention, ProbSparseAttention,
    scaled_dot_attention,
)
from .inception import ConvBackbone2d, InceptionBlock2d
from .transformer import EncoderLayer, FeedForward, TransformerEncoder
from .serialization import (
    load_checkpoint, peek_metadata, read_checkpoint, save_checkpoint,
    validate_checkpoint_metadata,
)
from . import init

__all__ = [
    "Module", "ModuleList", "Parameter", "Sequential",
    "BatchNorm2d", "Conv1d", "Conv2d", "Dropout", "GELU", "Identity",
    "LayerNorm", "Linear", "ReLU", "RevIN", "Sigmoid", "Tanh",
    "DataEmbedding", "LinearEmbedding", "PositionalEmbedding",
    "TokenEmbedding", "sinusoidal_position_encoding",
    "AutoCorrelation", "MultiHeadAttention", "ProbSparseAttention",
    "scaled_dot_attention", "ConvBackbone2d", "InceptionBlock2d",
    "EncoderLayer", "FeedForward", "TransformerEncoder", "init",
    "load_checkpoint", "peek_metadata", "read_checkpoint",
    "save_checkpoint",
    "validate_checkpoint_metadata",
]
