"""Core layers: Linear, Conv1d/2d, normalisation, dropout, activations.

These mirror the PyTorch layers the original TS3Net implementation uses,
running on the :mod:`repro.autodiff` substrate.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..autodiff import Tensor, ops
from ..autodiff.ops import conv1d as _conv1d
from ..autodiff.ops import conv2d as _conv2d
from ..utils import get_rng
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine map on the last axis: ``y = x @ W + b`` with W of (in, out)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features)))
        if bias:
            self.bias = Parameter(init.bias_uniform((out_features,), in_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self):
        return f"Linear({self.in_features}, {self.out_features})"


class Conv1d(Module):
    """1-D convolution over (N, C, L) tensors."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True):
        super().__init__()
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape))
        fan_in = in_channels * kernel_size
        self.bias = Parameter(init.bias_uniform((out_channels,), fan_in)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return _conv1d(x, self.weight, self.bias, stride=self.stride,
                       padding=self.padding)


class Conv2d(Module):
    """2-D convolution over (N, C, H, W) tensors."""

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: Union[int, Tuple[int, int]],
                 stride: int = 1, padding: Union[int, Tuple[int, int]] = 0,
                 bias: bool = True):
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, *kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape))
        fan_in = in_channels * kernel_size[0] * kernel_size[1]
        self.bias = Parameter(init.bias_uniform((out_channels,), fan_in)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return _conv2d(x, self.weight, self.bias, stride=self.stride,
                       padding=self.padding)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class BatchNorm2d(Module):
    """Batch normalisation for NCHW tensors with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mu
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mu.data.reshape(-1))
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var.data.reshape(-1))
        else:
            mu = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
            centered = x - mu
        normed = centered / (var + self.eps).sqrt()
        w = self.weight.reshape(1, -1, 1, 1)
        b = self.bias.reshape(1, -1, 1, 1)
        return normed * w + b


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(self, p: float = 0.1):
        super().__init__()
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.p, self.training, rng=get_rng())


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class RevIN(Module):
    """Reversible instance normalisation (Non-stationary Transformer trick).

    Normalises each series instance by its own mean/std on the way in and
    de-normalises predictions on the way out. Shapes are (B, T, C).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, affine: bool = False):
        super().__init__()
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_features))
            self.bias = Parameter(np.zeros(num_features))
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def normalize(self, x: Tensor) -> Tensor:
        self._mean = x.data.mean(axis=1, keepdims=True)
        self._std = np.sqrt(x.data.var(axis=1, keepdims=True) + self.eps)
        out = (x - Tensor(self._mean)) / Tensor(self._std)
        if self.affine:
            out = out * self.weight + self.bias
        return out

    def denormalize(self, x: Tensor) -> Tensor:
        if self._mean is None:
            raise RuntimeError("denormalize() called before normalize()")
        if self.affine:
            x = (x - self.bias) / (self.weight + self.eps)
        return x * Tensor(self._std) + Tensor(self._mean)

    def forward(self, x: Tensor) -> Tensor:
        return self.normalize(x)
