"""Attention mechanisms for the Transformer-family baselines.

Implements full scaled-dot-product attention, the ProbSparse-style top-u
attention used by Informer, de-stationary attention (Non-stationary
Transformer), and the auto-correlation mechanism of Autoformer — each in a
reduced but faithful form on the NumPy autodiff substrate.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..autodiff import Tensor, ops
from .layers import Dropout, Linear
from .module import Module


def scaled_dot_attention(q: Tensor, k: Tensor, v: Tensor,
                         scale: Optional[float] = None,
                         tau: Optional[Tensor] = None,
                         delta: Optional[Tensor] = None) -> Tensor:
    """Attention over (B, H, L, D) tensors.

    ``tau``/``delta`` are the de-stationary factors of the Non-stationary
    Transformer: scores become ``tau * QK^T + delta``.
    """
    d = q.shape[-1]
    scale = scale or 1.0 / math.sqrt(d)
    scores = (q @ k.swapaxes(-1, -2)) * scale
    if tau is not None:
        scores = scores * tau
    if delta is not None:
        scores = scores + delta
    attn = ops.softmax(scores, axis=-1)
    return attn @ v


class MultiHeadAttention(Module):
    """Standard multi-head self/cross attention on (B, L, D) tensors."""

    def __init__(self, d_model: int, n_heads: int, dropout: float = 0.0):
        super().__init__()
        if d_model % n_heads:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.w_q = Linear(d_model, d_model)
        self.w_k = Linear(d_model, d_model)
        self.w_v = Linear(d_model, d_model)
        self.w_o = Linear(d_model, d_model)
        self.dropout = Dropout(dropout)

    def _split(self, x: Tensor) -> Tensor:
        b, l, _ = x.shape
        return x.reshape(b, l, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def _join(self, x: Tensor) -> Tensor:
        b, h, l, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, l, h * d)

    def forward(self, query: Tensor, key: Optional[Tensor] = None,
                value: Optional[Tensor] = None,
                tau: Optional[Tensor] = None,
                delta: Optional[Tensor] = None) -> Tensor:
        key = key if key is not None else query
        value = value if value is not None else query
        q = self._split(self.w_q(query))
        k = self._split(self.w_k(key))
        v = self._split(self.w_v(value))
        out = scaled_dot_attention(q, k, v, tau=tau, delta=delta)
        return self.dropout(self.w_o(self._join(out)))


class ProbSparseAttention(Module):
    """Informer-style attention: only the top-u most "active" queries attend.

    The remaining queries output the mean of the values, as in the paper's
    lazy-query approximation.
    """

    def __init__(self, d_model: int, n_heads: int, factor: int = 5,
                 dropout: float = 0.0):
        super().__init__()
        self.inner = MultiHeadAttention(d_model, n_heads, dropout=dropout)
        self.factor = factor

    def forward(self, x: Tensor) -> Tensor:
        b, l, d = x.shape
        h = self.inner.n_heads
        q = self.inner._split(self.inner.w_q(x))
        k = self.inner._split(self.inner.w_k(x))
        v = self.inner._split(self.inner.w_v(x))

        u = min(l, max(1, int(self.factor * math.ceil(math.log1p(l)))))
        scores = (q @ k.swapaxes(-1, -2)) / math.sqrt(self.inner.d_head)
        # Sparsity measurement: max - mean of each query's score row.
        sparsity = scores.data.max(axis=-1) - scores.data.mean(axis=-1)   # (B,H,L)
        top_idx = np.argsort(-sparsity, axis=-1)[..., :u]                  # (B,H,u)

        attn = ops.softmax(scores, axis=-1)
        full = attn @ v                                                    # (B,H,L,Dh)
        # Lazy queries get mean(v); active queries keep their attention output.
        mean_v = v.mean(axis=2, keepdims=True)                             # (B,H,1,Dh)
        active = np.zeros((b, h, l, 1), dtype=bool)
        bi = np.arange(b)[:, None, None]
        hi = np.arange(h)[None, :, None]
        active[bi, hi, top_idx, 0] = True
        out = ops.where(active, full, mean_v * Tensor(np.ones_like(full.data)))
        return self.inner.dropout(self.inner.w_o(self.inner._join(out)))


class AutoCorrelation(Module):
    """Autoformer's auto-correlation: aggregate top-k period-lag rolls.

    Correlations are estimated per (batch, head, channel) via FFT; the top-k
    lags are selected on the detached correlation and the values are rolled
    and combined with softmax weights.
    """

    def __init__(self, d_model: int, n_heads: int, factor: int = 1,
                 dropout: float = 0.0):
        super().__init__()
        if d_model % n_heads:
            raise ValueError("d_model must divide n_heads")
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.factor = factor
        self.w_q = Linear(d_model, d_model)
        self.w_k = Linear(d_model, d_model)
        self.w_v = Linear(d_model, d_model)
        self.w_o = Linear(d_model, d_model)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        b, l, d = x.shape
        q = self.w_q(x)
        k = self.w_k(x)
        v = self.w_v(x)

        # Lag *selection* is discrete, so it runs on detached activations via
        # FFT correlation; the lag *weights* are then recomputed
        # differentiably, so gradients reach Q and K.
        q_f = np.fft.rfft(q.data, axis=1)
        k_f = np.fft.rfft(k.data, axis=1)
        corr = np.fft.irfft(q_f * np.conj(k_f), n=l, axis=1)    # (B, L, D)
        mean_corr = corr.mean(axis=(0, 2))                      # (L,)
        top_k = max(1, int(self.factor * math.log1p(l)))
        lags = np.argsort(-mean_corr)[:top_k]

        # Differentiable correlation score per selected lag.
        scores = [
            (q * _roll(k, -int(lag))).mean(axis=(1, 2)).reshape(b, 1)
            for lag in lags
        ]
        from ..autodiff.ops import concat, softmax
        weights = softmax(concat(scores, axis=1) * math.sqrt(l), axis=1)  # (B, k)

        agg = None
        for idx, lag in enumerate(lags):
            rolled = _roll(v, -int(lag))
            term = rolled * weights[:, idx:idx + 1].reshape(b, 1, 1)
            agg = term if agg is None else agg + term
        return self.dropout(self.w_o(agg))


def _roll(x: Tensor, shift: int) -> Tensor:
    """Differentiable circular roll along axis 1 (same sign as ``np.roll``)."""
    length = x.shape[1]
    shift = shift % length
    if shift == 0:
        return x
    split = length - shift
    return ops.concat([x[:, split:, :], x[:, :split, :]], axis=1)
