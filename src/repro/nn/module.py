"""Module/Parameter abstractions mirroring the ``torch.nn`` API surface.

Modules register parameters and child modules automatically through
``__setattr__`` so that ``parameters()`` / ``state_dict()`` walk the whole
model, exactly the ergonomics TS3Net's original PyTorch code relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..autodiff import Tensor, resolve_dtype
from ..autodiff.graph import HookHandle


class Parameter(Tensor):
    """A tensor that is trainable by construction."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_forward_pre_hooks", OrderedDict())
        object.__setattr__(self, "_forward_hooks", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs, root first (like torch)."""
        yield prefix, self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def num_parameters(self) -> int:
        """Total number of trainable scalars in the module tree."""
        return sum(p.size for p in self.parameters())

    def parameter_table(self) -> str:
        """Per-parameter name/shape/size table (printed under ``--profile``)."""
        rows = [(name, tuple(p.shape), p.size)
                for name, p in self.named_parameters()]
        width = max([len(name) for name, _, _ in rows] + [len("parameter")])
        lines = [f"{'parameter':<{width}s} {'shape':>20s} {'params':>12s}"]
        for name, shape, size in rows:
            lines.append(f"{name:<{width}s} {str(shape):>20s} {size:>12,d}")
        lines.append(f"{'total':<{width}s} {'':>20s} "
                     f"{self.num_parameters():>12,d}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays by name, preserving each parameter's dtype.

        A float64 checkpoint loaded into a model moved to float32 (or vice
        versa) is cast to the parameter's dtype rather than silently
        flipping parameter dtypes mid-model.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = state[name]
            if param.data.shape != value.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {value.shape}")
            if (param.data.dtype != value.dtype
                    and np.issubdtype(param.data.dtype, np.floating)
                    and np.issubdtype(value.dtype, np.floating)):
                param.data = value.astype(param.data.dtype)
            else:
                param.data = value.copy()

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def to(self, precision_or_dtype) -> "Module":
        """Cast every parameter (and float buffer) to the given precision.

        Accepts ``'float32'``/``'float64'`` or a NumPy float dtype, casting
        in place like ``torch.nn.Module.to``.  Plain float ``np.ndarray``
        attributes (running statistics, cached normalisation state) are
        cast too so mixed-dtype broadcasting cannot silently re-promote
        activations to float64.
        """
        dtype = resolve_dtype(precision_or_dtype)
        for module in self.modules():
            for param in module._parameters.values():
                if np.issubdtype(param.data.dtype, np.floating):
                    param.data = param.data.astype(dtype, copy=False)
                    if param.grad is not None:
                        param.grad = param.grad.astype(dtype, copy=False)
            for name, value in vars(module).items():
                if name in ("_parameters", "_modules"):
                    continue
                if (isinstance(value, np.ndarray)
                        and np.issubdtype(value.dtype, np.floating)):
                    object.__setattr__(module, name,
                                       value.astype(dtype, copy=False))
        return self

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def register_forward_pre_hook(self, fn) -> HookHandle:
        """Fire ``fn(module, args)`` before every ``forward``; removable."""
        hooks = self._forward_pre_hooks
        key = max(hooks, default=0) + 1
        hooks[key] = fn
        return HookHandle(hooks, key)

    def register_forward_hook(self, fn) -> HookHandle:
        """Fire ``fn(module, args, output)`` after every ``forward``."""
        hooks = self._forward_hooks
        key = max(hooks, default=0) + 1
        hooks[key] = fn
        return HookHandle(hooks, key)

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        pre = self._forward_pre_hooks
        if pre:
            for hook in tuple(pre.values()):
                hook(self, args)
        out = self.forward(*args, **kwargs)
        post = self._forward_hooks
        if post:
            for hook in tuple(post.values()):
                hook(self, args, out)
        return out

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Chain modules, feeding each output to the next."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)


class ModuleList(Module):
    """A list of modules whose parameters are registered."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._items))] = module
        self._items.append(module)
        return self

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")
