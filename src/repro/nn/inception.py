"""Inception-style 2-D convolution backbone.

TS3Net processes each 2-D temporal-frequency tensor with "the inception
block, one of the most well-acknowledged vision backbones involving a
multi-scale 2D kernel" (Sec. III-C). This is the parameter-efficient
``Inception_Block_V1`` shape used by the TimesNet code family: several
parallel square convolutions of increasing kernel size whose outputs are
averaged.
"""

from __future__ import annotations

from ..autodiff import Tensor
from .layers import Conv2d, GELU
from .module import Module, ModuleList


class InceptionBlock2d(Module):
    """Parallel multi-scale 2-D convolutions, averaged.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of the NCHW input/output.
    num_kernels:
        Number of parallel branches; branch ``i`` uses a ``(2i+1)``-sized
        square kernel with "same" padding.
    """

    def __init__(self, in_channels: int, out_channels: int, num_kernels: int = 3):
        super().__init__()
        if num_kernels < 1:
            raise ValueError("num_kernels must be >= 1")
        self.branches = ModuleList([
            Conv2d(in_channels, out_channels, kernel_size=2 * i + 1, padding=i)
            for i in range(num_kernels)
        ])

    def forward(self, x: Tensor) -> Tensor:
        outs = [branch(x) for branch in self.branches]
        total = outs[0]
        for out in outs[1:]:
            total = total + out
        return total / float(len(outs))


class ConvBackbone2d(Module):
    """The ``ConvBackbone`` of Eq. 13: inception -> GELU -> inception."""

    def __init__(self, channels: int, hidden_channels: int, num_kernels: int = 3):
        super().__init__()
        self.block1 = InceptionBlock2d(channels, hidden_channels, num_kernels)
        self.act = GELU()
        self.block2 = InceptionBlock2d(hidden_channels, channels, num_kernels)

    def forward(self, x: Tensor) -> Tensor:
        return self.block2(self.act(self.block1(x)))
