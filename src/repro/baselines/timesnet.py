"""TimesNet (Wu et al., ICLR 2023): temporal 2D-variation modeling.

The strongest published general baseline in the paper's tables. Each
TimesBlock (a) finds the top-k periods by FFT, (b) folds the 1-D sequence
into a (period x cycles) 2-D tensor per period, (c) applies an inception
conv, (d) unfolds and aggregates the k branches with amplitude-derived
softmax weights, plus a residual connection.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, ops
from ..nn import (
    DataEmbedding, GELU, InceptionBlock2d, LayerNorm, Module, ModuleList,
    Sequential,
)
from ..spectral.periods import detect_periods
from .common import BaselineModel, InstanceNorm, TimeProjectionHead


class TimesBlock(Module):
    """One period-folding inception block."""

    def __init__(self, seq_len: int, d_model: int, d_ff: int, top_k: int = 2,
                 num_kernels: int = 3):
        super().__init__()
        self.seq_len = seq_len
        self.top_k = top_k
        self.conv = Sequential(
            InceptionBlock2d(d_model, d_ff, num_kernels),
            GELU(),
            InceptionBlock2d(d_ff, d_model, num_kernels),
        )
        self.norm = LayerNorm(d_model)

    def forward(self, x: Tensor) -> Tensor:
        b, t, d = x.shape
        periods, weights = detect_periods(x.data, k=self.top_k)
        outs = []
        for period in periods:
            period = int(max(2, min(period, t)))
            cycles = -(-t // period)
            pad_len = cycles * period - t
            h = x
            if pad_len:
                h = ops.pad(h, ((0, 0), (0, pad_len), (0, 0)))
            # (B, T', D) -> (B, D, cycles, period) as an image
            img = h.reshape(b, cycles, period, d).transpose(0, 3, 1, 2)
            img = self.conv(img)
            h = img.transpose(0, 2, 3, 1).reshape(b, cycles * period, d)
            outs.append(h[:, :t, :])

        w = np.asarray(weights[:len(outs)], dtype=float)
        w = np.exp(w - w.max())
        w = w / w.sum()
        agg = None
        for out, wi in zip(outs, w):
            term = out * float(wi)
            agg = term if agg is None else agg + term
        return self.norm(x + agg)


class TimesNet(BaselineModel):
    """Stacked TimesBlocks with the shared embedding/head."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", d_model: int = 32, d_ff: int = 32,
                 num_blocks: int = 2, top_k: int = 2, num_kernels: int = 3,
                 dropout: float = 0.1, **_):
        super().__init__(seq_len, pred_len, c_in, task)
        self.embedding = DataEmbedding(c_in, d_model, dropout=dropout)
        self.blocks = ModuleList([
            TimesBlock(seq_len, d_model, d_ff, top_k=top_k,
                       num_kernels=num_kernels)
            for _ in range(num_blocks)
        ])
        self.head = TimeProjectionHead(seq_len, self.out_len, d_model, c_in)
        self.norm = InstanceNorm()

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm.normalize(x)
        h = self.embedding(x)
        for block in self.blocks:
            h = block(h)
        out = self.head(h)
        return self.norm.denormalize(out)
