"""PatchTST (Nie et al., ICLR 2023): patching + channel independence.

Each channel is treated as an independent univariate series, split into
overlapping patches that become Transformer tokens; instance normalisation
(RevIN) wraps the model. A flatten head maps the encoded patches to the
horizon. The paper re-tests PatchTST with lookback 96, which is the
configuration used here.
"""

from __future__ import annotations

from ..autodiff import Tensor
from ..nn import Linear, TransformerEncoder
from ..nn.embedding import sinusoidal_position_encoding
from .common import BaselineModel, InstanceNorm


class PatchTST(BaselineModel):
    """Channel-independent patch Transformer."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", patch_len: int = 16, stride: int = 8,
                 d_model: int = 32, n_heads: int = 4, num_layers: int = 2,
                 d_ff: int = 64, dropout: float = 0.1, **_):
        super().__init__(seq_len, pred_len, c_in, task)
        patch_len = min(patch_len, seq_len)
        stride = min(stride, patch_len)
        self.patch_len = patch_len
        self.stride = stride
        self.num_patches = (seq_len - patch_len) // stride + 1
        self.patch_embed = Linear(patch_len, d_model)
        self._pos = sinusoidal_position_encoding(self.num_patches, d_model)
        self.encoder = TransformerEncoder(d_model, n_heads, num_layers,
                                          d_ff=d_ff, dropout=dropout)
        self.head = Linear(self.num_patches * d_model, self.out_len)
        self.norm = InstanceNorm()

    def _patch(self, x: Tensor) -> Tensor:
        """(B, C, T) -> (B*C, num_patches, patch_len) via strided slicing."""
        pieces = []
        for p in range(self.num_patches):
            start = p * self.stride
            pieces.append(x[:, :, start:start + self.patch_len].unsqueeze(2))
        from ..autodiff import ops
        return ops.concat(pieces, axis=2)            # (B, C, P, patch_len)

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm.normalize(x)
        b, t, c = x.shape
        patches = self._patch(x.swapaxes(-2, -1))    # (B, C, P, L_p)
        tokens = self.patch_embed(patches)           # (B, C, P, D)
        tokens = tokens.reshape(b * c, self.num_patches, -1)
        tokens = tokens + Tensor(self._pos[None])
        encoded = self.encoder(tokens)               # (B*C, P, D)
        flat = encoded.reshape(b, c, -1)             # (B, C, P*D)
        out = self.head(flat).swapaxes(-2, -1)       # (B, out_len, C)
        return self.norm.denormalize(out)
