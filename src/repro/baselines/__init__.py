"""The paper's ten baselines plus the Table VI/VII control models."""

from .autoformer import Autoformer
from .common import BaselineModel, InstanceNorm, TimeProjectionHead
from .dlinear import DLinear
from .fedformer import FEDformer, FourierBlock
from .informer import Informer
from .lightts import LightTS
from .micn import MICN
from .patchtst import PatchTST
from .pyraformer import Pyraformer
from .registry import (
    ABLATION_NAMES, MODEL_NAMES, TSD_NAMES, build_model, paper_d_model,
)
from .stationary import StationaryTransformer
from .timesnet import TimesBlock, TimesNet
from .tsd import TSDCNN, TSDTrans

__all__ = [
    "Autoformer", "BaselineModel", "InstanceNorm", "TimeProjectionHead",
    "DLinear", "FEDformer", "FourierBlock", "Informer", "LightTS", "MICN",
    "PatchTST", "Pyraformer", "ABLATION_NAMES", "MODEL_NAMES", "TSD_NAMES",
    "build_model", "paper_d_model", "StationaryTransformer", "TimesBlock",
    "TimesNet", "TSDCNN", "TSDTrans",
]
