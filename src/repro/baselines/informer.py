"""Informer (Zhou et al., AAAI 2021): ProbSparse attention encoder.

The defining ideas kept here: ProbSparse self-attention (only the top-u
"active" queries attend; lazy queries output mean values) and the conv
distillation between encoder layers that halves sequence length. The
generative decoder is replaced by the shared linear head, per the paper's
common-head fairness protocol.
"""

from __future__ import annotations

from ..autodiff import Tensor
from ..nn import (
    Conv1d, DataEmbedding, EncoderLayer, GELU, LayerNorm, Module,
    ModuleList, ProbSparseAttention,
)
from .common import BaselineModel, TimeProjectionHead


class DistillLayer(Module):
    """Conv + max-pool distillation halving the token count."""

    def __init__(self, d_model: int):
        super().__init__()
        self.conv = Conv1d(d_model, d_model, kernel_size=3, padding=1)
        self.act = GELU()

    def forward(self, x: Tensor) -> Tensor:
        h = self.act(self.conv(x.swapaxes(-2, -1)))      # (B, D, T)
        h = h[:, :, ::2]                                  # stride-2 downsample
        return h.swapaxes(-2, -1)


class Informer(BaselineModel):
    """ProbSparse encoder with distillation."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", d_model: int = 32, n_heads: int = 4,
                 num_layers: int = 2, d_ff: int = 64, factor: int = 3,
                 dropout: float = 0.1, **_):
        super().__init__(seq_len, pred_len, c_in, task)
        self.embedding = DataEmbedding(c_in, d_model, dropout=dropout)
        self.layers = ModuleList([
            EncoderLayer(d_model, n_heads, d_ff, dropout,
                         attention=ProbSparseAttention(d_model, n_heads,
                                                       factor=factor,
                                                       dropout=dropout))
            for _ in range(num_layers)
        ])
        self.distills = ModuleList([DistillLayer(d_model)
                                    for _ in range(num_layers - 1)])
        final_len = seq_len
        for _ in range(num_layers - 1):
            final_len = -(-final_len // 2)
        self.final_norm = LayerNorm(d_model)
        self.head = TimeProjectionHead(final_len, self.out_len, d_model, c_in)

    def forward(self, x: Tensor) -> Tensor:
        h = self.embedding(x)
        for i, layer in enumerate(self.layers):
            h = layer(h)
            if i < len(self.distills):
                h = self.distills[i](h)
        return self.head(self.final_norm(h))
