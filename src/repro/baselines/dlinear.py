"""DLinear (Zeng et al., AAAI 2023): decomposition + two linear layers.

The original decomposes the series with a moving average and learns one
linear map per component along the time axis (channel-shared here, the
paper's default "DLinear" variant).
"""

from __future__ import annotations

from ..autodiff import Tensor
from ..decomposition.trend import SeriesDecomposition
from ..nn import Linear
from .common import BaselineModel


class DLinear(BaselineModel):
    """Seasonal-linear + trend-linear forecaster."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", kernel_size: int = 25, **_):
        super().__init__(seq_len, pred_len, c_in, task)
        self.decomp = SeriesDecomposition((kernel_size,))
        self.seasonal_proj = Linear(seq_len, self.out_len)
        self.trend_proj = Linear(seq_len, self.out_len)

    def forward(self, x: Tensor) -> Tensor:
        seasonal, trend = self.decomp(x)
        seasonal_out = self.seasonal_proj(seasonal.swapaxes(-2, -1)).swapaxes(-2, -1)
        trend_out = self.trend_proj(trend.swapaxes(-2, -1)).swapaxes(-2, -1)
        return seasonal_out + trend_out
