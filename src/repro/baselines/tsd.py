"""Trend-Seasonal Decomposition control models (Table VII).

These isolate the value of the *triple* decomposition: both models use the
conventional two-way trend/seasonal split, predict the trend with the same
autoregression head as TS3Net, and differ only in the seasonal backbone:

* ``TSDCNN`` — "maintains the same backbone as TS3Net": the seasonal part
  goes through the same stacked TF-Blocks (wavelet expansion + inception
  convs), but *without* the S-GD layers or the fluctuant head;
* ``TSDTrans`` — "a vanilla Transformer as the backbone".
"""

from __future__ import annotations

from ..autodiff import Tensor
from ..core.heads import AutoregressionHead, PredictionHead
from ..core.tf_block import TFBlock
from ..decomposition.trend import DEFAULT_KERNELS, SeriesDecomposition
from ..nn import DataEmbedding, ModuleList, TransformerEncoder
from .common import BaselineModel, InstanceNorm


class _TSDBase(BaselineModel):
    """Shared trend/seasonal scaffolding of the two control models."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", d_model: int = 32,
                 dropout: float = 0.1):
        super().__init__(seq_len, pred_len, c_in, task)
        self.decomp = SeriesDecomposition(DEFAULT_KERNELS)
        self.trend_head = AutoregressionHead(seq_len, self.out_len)
        self.embedding = DataEmbedding(c_in, d_model, dropout=dropout)
        self.seasonal_head = PredictionHead(seq_len, self.out_len, d_model,
                                            c_in, dropout)
        self.inorm = InstanceNorm()

    def _backbone(self, h: Tensor) -> Tensor:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        x = self.inorm.normalize(x)
        seasonal, trend = self.decomp(x)
        y_trend = self.trend_head(trend)
        h = self._backbone(self.embedding(seasonal))
        y_seasonal = self.seasonal_head(h)
        return self.inorm.denormalize(y_trend + y_seasonal)


class TSDCNN(_TSDBase):
    """Trend-seasonal decomposition + the TS3Net conv backbone (no S-GD)."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", d_model: int = 32, num_blocks: int = 2,
                 num_scales: int = 16, num_branches: int = 2, d_ff: int = 32,
                 num_kernels: int = 3, dropout: float = 0.1, **_):
        super().__init__(seq_len, pred_len, c_in, task, d_model, dropout)
        self.blocks = ModuleList([
            TFBlock(seq_len, d_model, num_scales=num_scales,
                    num_branches=num_branches, d_ff=d_ff,
                    num_kernels=num_kernels, dropout=dropout)
            for _ in range(num_blocks)
        ])

    def _backbone(self, h: Tensor) -> Tensor:
        for block in self.blocks:
            h = block(h)
        return h


class TSDTrans(_TSDBase):
    """Trend-seasonal decomposition + a vanilla Transformer backbone."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", d_model: int = 32, n_heads: int = 4,
                 num_layers: int = 2, d_ff: int = 64, dropout: float = 0.1, **_):
        super().__init__(seq_len, pred_len, c_in, task, d_model, dropout)
        self.encoder = TransformerEncoder(d_model, n_heads, num_layers,
                                          d_ff=d_ff, dropout=dropout)

    def _backbone(self, h: Tensor) -> Tensor:
        return self.encoder(h)
