"""LightTS (Zhang et al., 2022): light sampling-oriented MLP structures.

Two sampling views of the input — *continuous* (adjacent chunks) and
*interval* (strided subsequences) — are each processed by an information
exchange block (MLP over both chunk axes), then merged and projected to
the horizon. This compact re-implementation keeps the two-view sampling
that defines the model.
"""

from __future__ import annotations

from ..autodiff import Tensor, ops
from ..nn import GELU, Linear, Module, Sequential
from .common import BaselineModel, InstanceNorm


class IEBlock(Module):
    """Information-exchange block: MLPs along both axes of a (B, C, a, b) view."""

    def __init__(self, inner: int, outer: int, hidden: int):
        super().__init__()
        self.inner_mlp = Sequential(Linear(inner, hidden), GELU(), Linear(hidden, inner))
        self.outer_mlp = Sequential(Linear(outer, hidden), GELU(), Linear(hidden, outer))

    def forward(self, x: Tensor) -> Tensor:
        # x: (B, C, outer, inner)
        x = x + self.inner_mlp(x)
        x_t = x.swapaxes(-2, -1)
        x_t = x_t + self.outer_mlp(x_t)
        return x_t.swapaxes(-2, -1)


class LightTS(BaselineModel):
    """Continuous + interval sampling MLP forecaster."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", chunk_size: int = 8,
                 hidden: int = 32, **_):
        super().__init__(seq_len, pred_len, c_in, task)
        while seq_len % chunk_size:
            chunk_size -= 1
        self.chunk_size = chunk_size
        self.num_chunks = seq_len // chunk_size
        self.continuous = IEBlock(chunk_size, self.num_chunks, hidden)
        self.interval = IEBlock(self.num_chunks, chunk_size, hidden)
        self.merge = Linear(2 * seq_len, self.out_len)
        self.norm = InstanceNorm()

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm.normalize(x)
        b, t, c = x.shape
        x_t = x.swapaxes(-2, -1)                                   # (B, C, T)

        cont = x_t.reshape(b, c, self.num_chunks, self.chunk_size)
        cont = self.continuous(cont).reshape(b, c, t)

        # Interval sampling: stride the sequence into chunk_size subsequences.
        inter = x_t.reshape(b, c, self.num_chunks, self.chunk_size)
        inter = inter.swapaxes(-2, -1)                             # (B,C,chunk,num)
        inter = self.interval(inter).swapaxes(-2, -1).reshape(b, c, t)

        feats = ops.concat([cont, inter], axis=-1)                 # (B, C, 2T)
        out = self.merge(feats).swapaxes(-2, -1)                   # (B, out, C)
        return self.norm.denormalize(out)
