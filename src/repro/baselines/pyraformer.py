"""Pyraformer (Liu et al., ICLR 2022): pyramidal attention.

A coarsening-scale pyramid is built with strided convolutions; attention
runs over the concatenated multi-resolution token set, so fine tokens can
reach distant context through coarse nodes — the low-complexity pyramidal
message passing, realised here with one shared attention over the pyramid
(exact masks omitted; the node set is small at these lengths).
"""

from __future__ import annotations

from ..autodiff import Tensor, ops
from ..nn import (
    Conv1d, DataEmbedding, GELU, LayerNorm, ModuleList,
    MultiHeadAttention, FeedForward,
)
from .common import BaselineModel, TimeProjectionHead


class Pyraformer(BaselineModel):
    """Pyramidal-attention encoder."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", d_model: int = 32, n_heads: int = 4,
                 num_levels: int = 3, num_layers: int = 2, d_ff: int = 64,
                 dropout: float = 0.1, **_):
        super().__init__(seq_len, pred_len, c_in, task)
        self.embedding = DataEmbedding(c_in, d_model, dropout=dropout)
        self.downsamplers = ModuleList([
            Conv1d(d_model, d_model, kernel_size=3, stride=2, padding=1)
            for _ in range(num_levels - 1)
        ])
        self.act = GELU()
        self.attn_layers = ModuleList([
            MultiHeadAttention(d_model, n_heads, dropout) for _ in range(num_layers)
        ])
        self.ff_layers = ModuleList([
            FeedForward(d_model, d_ff, dropout) for _ in range(num_layers)
        ])
        self.norms1 = ModuleList([LayerNorm(d_model) for _ in range(num_layers)])
        self.norms2 = ModuleList([LayerNorm(d_model) for _ in range(num_layers)])
        self.head = TimeProjectionHead(seq_len, self.out_len, d_model, c_in)

    def forward(self, x: Tensor) -> Tensor:
        h = self.embedding(x)                           # (B, T, D)
        t = h.shape[1]
        levels = [h]
        cur = h
        for down in self.downsamplers:
            cur = self.act(down(cur.swapaxes(-2, -1))).swapaxes(-2, -1)
            levels.append(cur)
        pyramid = ops.concat(levels, axis=1)            # (B, T + T/2 + ..., D)

        for attn, ff, n1, n2 in zip(self.attn_layers, self.ff_layers,
                                    self.norms1, self.norms2):
            pyramid = pyramid + attn(n1(pyramid))
            pyramid = pyramid + ff(n2(pyramid))

        fine = pyramid[:, :t, :]                        # finest-scale nodes
        return self.head(fine)
