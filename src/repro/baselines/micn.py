"""MICN (Wang et al., ICLR 2023): multi-scale local+global convolution.

The trend is predicted by a linear regression layer; the seasonal part goes
through parallel scale branches, each applying local downsampling
convolution followed by an isometric (global-context) convolution, then
upsampling back — keeping the local-global structure that defines MICN at
linear complexity.
"""

from __future__ import annotations

from ..autodiff import Tensor
from ..decomposition.trend import SeriesDecomposition
from ..nn import Conv1d, GELU, LayerNorm, Linear, Module, ModuleList
from ..nn.embedding import DataEmbedding
from .common import BaselineModel, InstanceNorm, TimeProjectionHead


class ScaleBranch(Module):
    """One MICN scale: downsample conv -> isometric conv -> upsample."""

    def __init__(self, seq_len: int, d_model: int, scale: int):
        super().__init__()
        self.scale = scale
        self.down = Conv1d(d_model, d_model, kernel_size=scale, stride=scale)
        down_len = seq_len // scale
        # Isometric convolution: a causal conv whose kernel spans the whole
        # downsampled sequence, giving each step a global receptive field.
        self.iso = Conv1d(d_model, d_model, kernel_size=max(down_len, 1),
                          padding=max(down_len - 1, 0))
        self.up = Linear(down_len, seq_len)
        self.act = GELU()
        self.down_len = down_len

    def forward(self, x: Tensor) -> Tensor:
        # x: (B, D, T)
        h = self.act(self.down(x))                   # (B, D, T//s)
        g = self.iso(h)[:, :, :self.down_len]        # causal crop
        h = self.act(h + g)
        return self.up(h)                            # (B, D, T)


class MICN(BaselineModel):
    """Multi-scale isometric convolution network."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", d_model: int = 32,
                 scales=(4, 8), dropout: float = 0.1, **_):
        super().__init__(seq_len, pred_len, c_in, task)
        self.decomp = SeriesDecomposition((25,))
        self.trend_proj = Linear(seq_len, self.out_len)
        self.embedding = DataEmbedding(c_in, d_model, dropout=dropout)
        self.branches = ModuleList([
            ScaleBranch(seq_len, d_model, s) for s in scales
            if seq_len // s >= 1
        ])
        self.merge_norm = LayerNorm(d_model)
        self.head = TimeProjectionHead(seq_len, self.out_len, d_model, c_in)
        self.norm = InstanceNorm()

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm.normalize(x)
        seasonal, trend = self.decomp(x)
        y_trend = self.trend_proj(trend.swapaxes(-2, -1)).swapaxes(-2, -1)

        h = self.embedding(seasonal).swapaxes(-2, -1)        # (B, D, T)
        outs = [branch(h) for branch in self.branches]
        agg = outs[0]
        for o in outs[1:]:
            agg = agg + o
        agg = agg / float(len(outs))
        merged = self.merge_norm((h + agg).swapaxes(-2, -1))  # (B, T, D)
        y_seasonal = self.head(merged)
        return self.norm.denormalize(y_trend + y_seasonal)
