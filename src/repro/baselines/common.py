"""Shared pieces for baseline models.

Every baseline maps a (B, seq_len, C) lookback window to a
(B, out_len, C) output (``out_len == seq_len`` for imputation), shares the
same input embedding and linear prediction head (the paper's fairness
protocol), and optionally applies instance normalisation.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..nn import Linear, Module


class TimeProjectionHead(Module):
    """The shared final layer: linear map along time + channel projection."""

    def __init__(self, seq_len: int, out_len: int, d_model: int, c_out: int):
        super().__init__()
        self.time = Linear(seq_len, out_len)
        self.channel = Linear(d_model, c_out)

    def forward(self, x: Tensor) -> Tensor:
        out = self.time(x.swapaxes(-2, -1)).swapaxes(-2, -1)
        return self.channel(out)


class InstanceNorm:
    """Stateless helper for the normalise-in / de-normalise-out pattern."""

    def __init__(self, eps: float = 1e-5):
        self.eps = eps
        self._mean = None
        self._std = None

    def normalize(self, x: Tensor) -> Tensor:
        self._mean = x.data.mean(axis=1, keepdims=True)
        self._std = np.sqrt(x.data.var(axis=1, keepdims=True) + self.eps)
        return (x - Tensor(self._mean)) / Tensor(self._std)

    def denormalize(self, x: Tensor) -> Tensor:
        return x * Tensor(self._std) + Tensor(self._mean)


class BaselineModel(Module):
    """Base class fixing the (seq_len, pred_len, c_in, task) interface."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast"):
        super().__init__()
        self.seq_len = seq_len
        self.pred_len = pred_len
        self.c_in = c_in
        self.task = task

    @property
    def out_len(self) -> int:
        return self.seq_len if self.task == "imputation" else self.pred_len
