"""Non-stationary Transformer (Liu et al., NeurIPS 2022).

Series stationarisation (instance normalisation) plus De-stationary
Attention: the attention scores of the normalised series are rescaled by
learned factors ``tau`` (from the window std) and ``delta`` (from the
window mean), restoring the non-stationary information the normalisation
removed.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, ops
from ..nn import (
    DataEmbedding, GELU, LayerNorm, Linear, Module, ModuleList,
    MultiHeadAttention, FeedForward, Sequential,
)
from .common import BaselineModel, InstanceNorm, TimeProjectionHead


class Projector(Module):
    """MLP from raw-window statistics to a de-stationary factor."""

    def __init__(self, c_in: int, seq_len: int, hidden: int = 32,
                 out_dim: int = 1):
        super().__init__()
        self.net = Sequential(
            Linear(c_in * 2, hidden), GELU(), Linear(hidden, out_dim),
        )
        self.seq_len = seq_len

    def forward(self, x_raw: np.ndarray) -> Tensor:
        # Summary statistics of the *raw* (un-normalised) window.
        stats = np.concatenate(
            [x_raw.mean(axis=1), x_raw.std(axis=1)], axis=-1)  # (B, 2C)
        return self.net(Tensor(stats))                          # (B, out_dim)


class StationaryTransformer(BaselineModel):
    """Stationarised Transformer with de-stationary attention factors."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", d_model: int = 32, n_heads: int = 4,
                 num_layers: int = 2, d_ff: int = 64, dropout: float = 0.1, **_):
        super().__init__(seq_len, pred_len, c_in, task)
        self.embedding = DataEmbedding(c_in, d_model, dropout=dropout)
        self.attn_layers = ModuleList([
            MultiHeadAttention(d_model, n_heads, dropout) for _ in range(num_layers)
        ])
        self.ff_layers = ModuleList([
            FeedForward(d_model, d_ff, dropout) for _ in range(num_layers)
        ])
        self.norms1 = ModuleList([LayerNorm(d_model) for _ in range(num_layers)])
        self.norms2 = ModuleList([LayerNorm(d_model) for _ in range(num_layers)])
        self.tau_proj = Projector(c_in, seq_len)
        self.delta_proj = Projector(c_in, seq_len)
        self.head = TimeProjectionHead(seq_len, self.out_len, d_model, c_in)
        self.inorm = InstanceNorm()

    def forward(self, x: Tensor) -> Tensor:
        raw = x.data
        x = self.inorm.normalize(x)
        tau = ops.sigmoid(self.tau_proj(raw)) * 2.0          # (B, 1) positive
        delta = self.delta_proj(raw)                          # (B, 1)
        tau_b = tau.reshape(-1, 1, 1, 1)
        delta_b = delta.reshape(-1, 1, 1, 1)

        h = self.embedding(x)
        for attn, ff, n1, n2 in zip(self.attn_layers, self.ff_layers,
                                    self.norms1, self.norms2):
            h = h + attn(n1(h), tau=tau_b, delta=delta_b)
            h = h + ff(n2(h))
        out = self.head(h)
        return self.inorm.denormalize(out)
