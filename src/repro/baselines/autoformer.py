"""Autoformer (Wu et al., NeurIPS 2021): decomposition Transformer with
auto-correlation.

Encoder layers replace self-attention with the auto-correlation mechanism
(period-lag aggregation) and interleave progressive series decomposition:
after every sublayer, the running trend is split off and accumulated, so
the attention stack only models the seasonal residue.
"""

from __future__ import annotations

from ..autodiff import Tensor
from ..decomposition.trend import SeriesDecomposition
from ..nn import (
    AutoCorrelation, DataEmbedding, FeedForward, LayerNorm, Linear, Module,
    ModuleList,
)
from .common import BaselineModel, InstanceNorm, TimeProjectionHead


class AutoformerLayer(Module):
    """Auto-correlation + FFN with progressive decomposition."""

    def __init__(self, d_model: int, n_heads: int, d_ff: int, dropout: float):
        super().__init__()
        self.attn = AutoCorrelation(d_model, n_heads, dropout=dropout)
        self.ff = FeedForward(d_model, d_ff, dropout)
        self.decomp1 = SeriesDecomposition((25,))
        self.decomp2 = SeriesDecomposition((25,))
        self.norm = LayerNorm(d_model)

    def forward(self, x: Tensor):
        h = x + self.attn(x)
        h, trend1 = self.decomp1(h)
        h2 = h + self.ff(h)
        h2, trend2 = self.decomp2(h2)
        return self.norm(h2), trend1 + trend2


class Autoformer(BaselineModel):
    """Decomposition transformer with auto-correlation attention."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", d_model: int = 32, n_heads: int = 4,
                 num_layers: int = 2, d_ff: int = 64, dropout: float = 0.1, **_):
        super().__init__(seq_len, pred_len, c_in, task)
        self.init_decomp = SeriesDecomposition((25,))
        self.trend_proj = Linear(seq_len, self.out_len)
        self.embedding = DataEmbedding(c_in, d_model, dropout=dropout)
        self.layers = ModuleList([
            AutoformerLayer(d_model, n_heads, d_ff, dropout)
            for _ in range(num_layers)
        ])
        self.head = TimeProjectionHead(seq_len, self.out_len, d_model, c_in)
        self.inner_trend_head = TimeProjectionHead(seq_len, self.out_len,
                                                   d_model, c_in)
        self.norm = InstanceNorm()

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm.normalize(x)
        seasonal, trend = self.init_decomp(x)
        y_trend = self.trend_proj(trend.swapaxes(-2, -1)).swapaxes(-2, -1)

        h = self.embedding(seasonal)
        inner_trend = None
        for layer in self.layers:
            h, t = layer(h)
            inner_trend = t if inner_trend is None else inner_trend + t
        y_seasonal = self.head(h)
        y_inner = self.inner_trend_head(inner_trend)
        return self.norm.denormalize(y_trend + y_seasonal + y_inner)
