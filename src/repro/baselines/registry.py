"""Model registry: one factory for TS3Net, every baseline, and the ablations.

``build_model(name, ...)`` constructs any model from Tables IV-VII by name
with consistent (seq_len, pred_len, c_in, task) plumbing and a size preset:

* ``tiny``  — CPU-friendly widths used by the CI-scale experiments;
* ``paper`` — Table III's configuration (lambda=100, d_model by the
  ``min(max(2^ceil(log2 C), d_min), d_max)`` rule).
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from ..core.ts3net import TS3Net, TS3NetConfig
from ..nn.module import Module
from .autoformer import Autoformer
from .dlinear import DLinear
from .fedformer import FEDformer
from .informer import Informer
from .lightts import LightTS
from .micn import MICN
from .patchtst import PatchTST
from .pyraformer import Pyraformer
from .stationary import StationaryTransformer
from .timesnet import TimesNet
from .tsd import TSDCNN, TSDTrans

#: Baseline ordering of Table IV (TS3Net first, then the paper's columns).
MODEL_NAMES = (
    "TS3Net", "PatchTST", "TimesNet", "MICN", "LightTS", "DLinear",
    "FEDformer", "Stationary", "Autoformer", "Pyraformer", "Informer",
)

ABLATION_NAMES = ("TS3Net-w/o-TD", "TS3Net-w/o-TFBlock", "TS3Net-w/o-Both")
TSD_NAMES = ("TSD-CNN", "TSD-Trans")


def paper_d_model(c_in: int, task: str = "forecast") -> int:
    """Table III's d_model rule."""
    d_min, d_max = (64, 128) if task == "imputation" else (32, 512)
    return min(max(2 ** math.ceil(math.log2(max(c_in, 1))), d_min), d_max)


def _size_kwargs(c_in: int, task: str, preset: str) -> Dict:
    if preset == "paper":
        return {"d_model": paper_d_model(c_in, task), "d_ff": 2 * paper_d_model(c_in, task),
                "num_scales": 100, "num_blocks": 2, "num_layers": 2}
    if preset == "tiny":
        return {"d_model": 16, "d_ff": 16, "num_scales": 8, "num_blocks": 1,
                "num_layers": 1, "n_heads": 4, "num_kernels": 2,
                "dropout": 0.1}
    raise ValueError(f"unknown preset {preset!r}; use 'tiny' or 'paper'")


def _ts3net(seq_len, pred_len, c_in, task, size, **overrides) -> TS3Net:
    allowed = {f for f in TS3NetConfig.__dataclass_fields__}
    kwargs = {k: v for k, v in size.items() if k in allowed}
    kwargs.update({k: v for k, v in overrides.items() if k in allowed})
    return TS3Net(TS3NetConfig(seq_len=seq_len, pred_len=pred_len, c_in=c_in,
                               task=task, **kwargs))


def build_model(name: str, seq_len: int, pred_len: int, c_in: int,
                task: str = "forecast", preset: str = "tiny",
                **overrides) -> Module:
    """Construct a model by its Table IV/VI/VII name."""
    size = _size_kwargs(c_in, task, preset)
    size.update(overrides)

    if name == "TS3Net":
        return _ts3net(seq_len, pred_len, c_in, task, size)
    if name == "TS3Net-w/o-TD":
        return _ts3net(seq_len, pred_len, c_in, task, size, use_td=False)
    if name == "TS3Net-w/o-TFBlock":
        return _ts3net(seq_len, pred_len, c_in, task, size, tf_mode="replicate")
    if name == "TS3Net-w/o-Both":
        return _ts3net(seq_len, pred_len, c_in, task, size,
                       use_td=False, tf_mode="replicate")

    classes: Dict[str, Callable] = {
        "PatchTST": PatchTST, "TimesNet": TimesNet, "MICN": MICN,
        "LightTS": LightTS, "DLinear": DLinear, "FEDformer": FEDformer,
        "Stationary": StationaryTransformer, "Autoformer": Autoformer,
        "Pyraformer": Pyraformer, "Informer": Informer,
        "TSD-CNN": TSDCNN, "TSD-Trans": TSDTrans,
    }
    if name not in classes:
        raise KeyError(f"unknown model {name!r}; known: "
                       f"{MODEL_NAMES + ABLATION_NAMES + TSD_NAMES}")
    return classes[name](seq_len=seq_len, pred_len=pred_len, c_in=c_in,
                         task=task, **size)
