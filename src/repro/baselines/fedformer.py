"""FEDformer (Zhou et al., ICML 2022): frequency-enhanced decomposition.

Self-attention is replaced by a Fourier-enhanced block: the sequence is
projected onto a random subset of Fourier modes, each kept mode is mixed
by a learnable complex weight, and the result is transformed back. The
DFT is expressed as fixed cos/sin matmuls so it stays differentiable on
the autodiff substrate.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..decomposition.trend import SeriesDecomposition
from ..nn import (
    DataEmbedding, FeedForward, LayerNorm, Linear, Module, ModuleList,
    Parameter,
)
from .common import BaselineModel, InstanceNorm, TimeProjectionHead


class FourierBlock(Module):
    """Frequency-domain token mixing on (B, T, D) tensors.

    A fixed random subset of ``modes`` rFFT frequencies is retained; each
    gets a learnable complex scale (stored as two real parameters).
    """

    def __init__(self, seq_len: int, d_model: int, modes: int = 8, seed: int = 0):
        super().__init__()
        n_freq = seq_len // 2 + 1
        modes = min(modes, n_freq)
        rng = np.random.default_rng(seed)
        self.mode_idx = np.sort(rng.choice(n_freq, size=modes, replace=False))

        t = np.arange(seq_len)
        freqs = self.mode_idx
        angle = 2.0 * np.pi * np.outer(t, freqs) / seq_len     # (T, M)
        # Forward DFT (selected modes) and inverse with standard 2/N scaling
        # (1/N for the DC/Nyquist-free approximation is folded into weights).
        self._cos = np.cos(angle)
        self._sin = np.sin(angle)
        scale = 2.0 / seq_len
        self._inv_cos = self._cos * scale
        self._inv_sin = self._sin * scale

        self.w_real = Parameter(np.ones((modes, d_model)) * 0.5)
        self.w_imag = Parameter(np.zeros((modes, d_model)))

    def forward(self, x: Tensor) -> Tensor:
        # x: (B, T, D). Project onto modes: (B, M, D)
        xt = x.swapaxes(-2, -1)                                  # (B, D, T)
        re = xt @ Tensor(self._cos)                              # (B, D, M)
        im = xt @ Tensor(-self._sin)
        re, im = re.swapaxes(-2, -1), im.swapaxes(-2, -1)        # (B, M, D)
        # Complex multiply by learnable weights.
        out_re = re * self.w_real - im * self.w_imag
        out_im = re * self.w_imag + im * self.w_real
        # Inverse transform back to time domain.
        out_re, out_im = out_re.swapaxes(-2, -1), out_im.swapaxes(-2, -1)
        back = out_re @ Tensor(self._inv_cos.T) - out_im @ Tensor(self._inv_sin.T)
        return back.swapaxes(-2, -1)                             # (B, T, D)


class FEDformerLayer(Module):
    """Fourier mixing + FFN with progressive decomposition."""

    def __init__(self, seq_len: int, d_model: int, d_ff: int, modes: int,
                 dropout: float, seed: int):
        super().__init__()
        self.fourier = FourierBlock(seq_len, d_model, modes=modes, seed=seed)
        self.ff = FeedForward(d_model, d_ff, dropout)
        self.decomp = SeriesDecomposition((25,))
        self.norm = LayerNorm(d_model)

    def forward(self, x: Tensor):
        h = x + self.fourier(x)
        h, trend = self.decomp(h)
        h = self.norm(h + self.ff(h))
        return h, trend


class FEDformer(BaselineModel):
    """Frequency-enhanced decomposition transformer."""

    def __init__(self, seq_len: int, pred_len: int, c_in: int,
                 task: str = "forecast", d_model: int = 32, d_ff: int = 64,
                 num_layers: int = 2, modes: int = 8, dropout: float = 0.1, **_):
        super().__init__(seq_len, pred_len, c_in, task)
        self.init_decomp = SeriesDecomposition((25,))
        self.trend_proj = Linear(seq_len, self.out_len)
        self.embedding = DataEmbedding(c_in, d_model, dropout=dropout)
        self.layers = ModuleList([
            FEDformerLayer(seq_len, d_model, d_ff, modes, dropout, seed=i)
            for i in range(num_layers)
        ])
        self.head = TimeProjectionHead(seq_len, self.out_len, d_model, c_in)
        self.inner_trend_head = TimeProjectionHead(seq_len, self.out_len,
                                                   d_model, c_in)
        self.norm = InstanceNorm()

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm.normalize(x)
        seasonal, trend = self.init_decomp(x)
        y_trend = self.trend_proj(trend.swapaxes(-2, -1)).swapaxes(-2, -1)

        h = self.embedding(seasonal)
        inner = None
        for layer in self.layers:
            h, t = layer(h)
            inner = t if inner is None else inner + t
        out = self.head(h) + self.inner_trend_head(inner) + y_trend
        return self.norm.denormalize(out)
