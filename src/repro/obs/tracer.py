"""Hierarchical span tracer bound to an event sink and a metrics registry.

An :class:`Observer` is the run-scoped bundle every instrumented layer
talks to: it opens :class:`Span`\\ s (context managers that push/pop the
thread-local context stack), emits point events, records retroactive
spans (work measured elsewhere, e.g. a grid cell that ran in a worker
process), and owns a :class:`~repro.obs.metrics.MetricsRegistry` for
training-side counters.

Zero-cost contract: code must obtain the observer once via
``repro.obs.active()`` and skip every call below when it is ``None`` —
nothing in this module is ever imported into a hot loop's disabled path.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from . import context, events
from .metrics import MetricsRegistry


class Span:
    """One open span; use only via ``with observer.span(...)``."""

    __slots__ = ("_observer", "name", "attrs", "ref", "parent", "_t0")

    def __init__(self, observer: "Observer", name: str,
                 attrs: Optional[Dict] = None,
                 parent: Optional[context.SpanRef] = None):
        self._observer = observer
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.parent = parent
        self.ref: Optional[context.SpanRef] = None
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes; they ride on the ``span_end`` record."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        parent = self.parent if self.parent is not None else context.current()
        trace_id = parent.trace_id if parent else context.new_trace_id()
        self.ref = context.SpanRef(trace_id, context.new_span_id())
        self.parent = parent
        context.push(self.ref)
        self._observer.sink.emit(events.record(
            "span_start", self.name, self.attrs, trace=trace_id,
            span=self.ref.span_id,
            parent=parent.span_id if parent else None))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        context.pop()
        attrs = dict(self.attrs)
        attrs["status"] = "error" if exc_type is not None else "ok"
        if exc is not None:
            attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._observer.sink.emit(events.record(
            "span_end", self.name, attrs, trace=self.ref.trace_id,
            span=self.ref.span_id,
            parent=self.parent.span_id if self.parent else None, dur_s=dur))
        return False


class Observer:
    """Run-scoped tracer: sink + registry + (optionally) a resource sampler."""

    def __init__(self, sink, registry: Optional[MetricsRegistry] = None,
                 run_id: Optional[str] = None):
        import platform
        self.sink = sink
        self.registry = registry or MetricsRegistry()
        self.run_id = run_id or context.new_span_id()
        self.sampler = None          # attached by runtime.configure
        self._closed = False
        import os
        self.sink.emit(events.record("run_start", "run", {
            "run_id": self.run_id, "pid": os.getpid(),
            "python": platform.python_version(),
        }))

    # -- spans ----------------------------------------------------------
    def span(self, name: str, attrs: Optional[Dict] = None,
             parent: Optional[context.SpanRef] = None) -> Span:
        """Open a span; parents to the thread's current span by default."""
        return Span(self, name, attrs, parent=parent)

    def emit_span(self, name: str, dur_s: float,
                  attrs: Optional[Dict] = None,
                  parent: Optional[context.SpanRef] = None) -> Dict:
        """Record a span measured elsewhere (worker process, past work).

        The span is stamped as a child of ``parent`` (or the thread's
        current span) in the *current* trace and returned so callers can
        also hand it to a console formatter.
        """
        parent = parent if parent is not None else context.current()
        trace_id = parent.trace_id if parent else context.new_trace_id()
        rec = events.record(
            "span_end", name, attrs, trace=trace_id,
            span=context.new_span_id(),
            parent=parent.span_id if parent else None, dur_s=dur_s)
        rec["attrs"].setdefault("status", "ok")
        self.sink.emit(rec)
        return rec

    # -- events ---------------------------------------------------------
    def event(self, name: str, attrs: Optional[Dict] = None) -> Dict:
        """Emit a point-in-time event under the thread's current span."""
        ref = context.current()
        rec = events.record(
            "event", name, attrs,
            trace=ref.trace_id if ref else None,
            span=ref.span_id if ref else None)
        self.sink.emit(rec)
        return rec

    # -- context hand-off ----------------------------------------------
    @staticmethod
    def current_ref() -> Optional[context.SpanRef]:
        """Snapshot of this thread's span context for cross-thread linking."""
        return context.current()

    # -- metrics --------------------------------------------------------
    def metrics_text(self) -> str:
        """Prometheus rendering of the observer's registry."""
        return self.registry.render()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.sampler is not None:
            self.sampler.stop()
        self.sink.emit(events.record("run_end", "run",
                                     {"run_id": self.run_id}))
        self.sink.close()
