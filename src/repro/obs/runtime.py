"""Process-global observer slot: the disabled fast path is one load.

Instrumented code does::

    ob = obs.active()
    if ob is not None:
        with ob.span("trainer.fit", {...}):
            ...

With no observer configured, ``active()`` is a module-attribute read
returning ``None`` — no allocation, no branching beyond the caller's
``is None`` check.  This is the property the
``trainer_obs_disabled_overhead`` benchmark fact locks in.

``configure()`` installs a new global observer (closing any previous
one); ``shutdown()`` flushes and uninstalls it.  The :func:`observe`
context manager scopes both for tests and short runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

import os

from .events import JsonlSink, MultiSink, NullSink
from .console import ConsoleSink
from .metrics import MetricsRegistry
from .resource import ResourceSampler
from .store import RotatingJsonlSink
from .tracer import Observer

_active: Optional[Observer] = None

#: Environment override for trace rotation: a size in MiB.  Lets CI and
#: long soak runs opt into rotation without threading a flag through
#: every entry point.
ROTATE_ENV = "REPRO_TRACE_ROTATE_MB"


def active() -> Optional[Observer]:
    """The installed observer, or ``None`` when observability is off."""
    return _active


def _rotate_bytes_from_env() -> Optional[int]:
    raw = os.environ.get(ROTATE_ENV)
    if not raw:
        return None
    try:
        mib = float(raw)
    except ValueError:
        return None
    return int(mib * (1 << 20)) if mib > 0 else None


def configure(path: Optional[str] = None, console: bool = False,
              stream=None, resource_interval_s: Optional[float] = None,
              registry: Optional[MetricsRegistry] = None,
              rotate_bytes: Optional[int] = None) -> Observer:
    """Install a global observer writing to ``path`` and/or the console.

    ``rotate_bytes`` (or the ``REPRO_TRACE_ROTATE_MB`` env var) switches
    the JSONL sink to size-based rotation with footer-indexed segments —
    single-writer only, so cluster worker processes must not use it.
    """
    global _active
    if _active is not None:
        _active.close()
        _active = None
    if rotate_bytes is None:
        rotate_bytes = _rotate_bytes_from_env()
    sinks = []
    if path:
        if rotate_bytes:
            sinks.append(RotatingJsonlSink(path, max_segment_bytes=rotate_bytes))
        else:
            sinks.append(JsonlSink(path))
    if console:
        sinks.append(ConsoleSink(stream))
    sink = sinks[0] if len(sinks) == 1 else (
        MultiSink(sinks) if sinks else NullSink())
    observer = Observer(sink, registry=registry)
    if resource_interval_s:
        observer.sampler = ResourceSampler(
            sink, interval_s=resource_interval_s).start()
    _active = observer
    return observer


def shutdown() -> None:
    """Close and uninstall the global observer (no-op when disabled)."""
    global _active
    if _active is not None:
        _active.close()
        _active = None


def swap(observer: Optional[Observer]) -> Optional[Observer]:
    """Replace the global slot without closing anything (test harness use)."""
    global _active
    previous = _active
    _active = observer
    return previous


@contextmanager
def observe(path: Optional[str] = None, **kwargs):
    """Scoped observability: configure on entry, shutdown on exit."""
    observer = configure(path=path, **kwargs)
    try:
        yield observer
    finally:
        if _active is observer:
            shutdown()
        else:                        # someone replaced it mid-scope
            observer.close()
