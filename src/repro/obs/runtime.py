"""Process-global observer slot: the disabled fast path is one load.

Instrumented code does::

    ob = obs.active()
    if ob is not None:
        with ob.span("trainer.fit", {...}):
            ...

With no observer configured, ``active()`` is a module-attribute read
returning ``None`` — no allocation, no branching beyond the caller's
``is None`` check.  This is the property the
``trainer_obs_disabled_overhead`` benchmark fact locks in.

``configure()`` installs a new global observer (closing any previous
one); ``shutdown()`` flushes and uninstalls it.  The :func:`observe`
context manager scopes both for tests and short runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .events import JsonlSink, MultiSink, NullSink
from .console import ConsoleSink
from .metrics import MetricsRegistry
from .resource import ResourceSampler
from .tracer import Observer

_active: Optional[Observer] = None


def active() -> Optional[Observer]:
    """The installed observer, or ``None`` when observability is off."""
    return _active


def configure(path: Optional[str] = None, console: bool = False,
              stream=None, resource_interval_s: Optional[float] = None,
              registry: Optional[MetricsRegistry] = None) -> Observer:
    """Install a global observer writing to ``path`` and/or the console."""
    global _active
    if _active is not None:
        _active.close()
        _active = None
    sinks = []
    if path:
        sinks.append(JsonlSink(path))
    if console:
        sinks.append(ConsoleSink(stream))
    sink = sinks[0] if len(sinks) == 1 else (
        MultiSink(sinks) if sinks else NullSink())
    observer = Observer(sink, registry=registry)
    if resource_interval_s:
        observer.sampler = ResourceSampler(
            sink, interval_s=resource_interval_s).start()
    _active = observer
    return observer


def shutdown() -> None:
    """Close and uninstall the global observer (no-op when disabled)."""
    global _active
    if _active is not None:
        _active.close()
        _active = None


def swap(observer: Optional[Observer]) -> Optional[Observer]:
    """Replace the global slot without closing anything (test harness use)."""
    global _active
    previous = _active
    _active = observer
    return previous


@contextmanager
def observe(path: Optional[str] = None, **kwargs):
    """Scoped observability: configure on entry, shutdown on exit."""
    observer = configure(path=path, **kwargs)
    try:
        yield observer
    finally:
        if _active is observer:
            shutdown()
        else:                        # someone replaced it mid-scope
            observer.close()
