"""``repro top``: a live terminal dashboard over the ``/metrics`` scrape.

Curses-free by design: each refresh repaints the screen with plain ANSI
(clear + home), so it works in any terminal, inside CI logs
(``--iterations 1`` prints one frame and exits), and over ssh.  The
poller speaks the same Prometheus text format everything else in the
repo renders, parsed with the cluster federation reader — single
servers and cluster front ends are both valid targets.

Shown per refresh:

* **QPS** — the delta of ``repro_requests_total`` (or the front-end
  ``repro_frontend_requests_total``) over the poll interval;
* **latency** — the p50/p95/p99 ``{quantile=...}`` series of
  ``repro_request_latency_seconds`` (on a cluster scrape these are the
  max across workers — an upper bound, as the merged HELP text says);
* **queue depth / batch size** — current gauges;
* **cluster health** — workers alive/configured and restart totals,
  when the target is a cluster front end;
* **error budget** — ``repro_slo_error_budget_remaining{slo=...}``
  per objective, when an SLO tracker is attached.
"""

from __future__ import annotations

import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

#: ANSI: clear screen + cursor home (the whole "UI framework").
CLEAR = "\x1b[2J\x1b[H"


def fetch_metrics(url: str, timeout: float = 5.0) -> str:
    """One scrape of a ``/metrics`` (or ``/admin/metrics``) endpoint."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def parse_snapshot(text: str) -> Dict[Tuple[str, Tuple], float]:
    """Flatten an exposition into ``{(series, labels): value}``."""
    from ..serving.cluster.metrics import parse_exposition
    out: Dict[Tuple[str, Tuple], float] = {}
    for block in parse_exposition(text):
        for series, labels, value, _raw in block["samples"]:
            out[(series, labels)] = value
    return out


def _series_sum(snap: Dict, name: str) -> float:
    return sum(v for (series, _), v in snap.items() if series == name)


def _labeled(snap: Dict, name: str) -> List[Tuple[Dict, float]]:
    return [(dict(labels), value) for (series, labels), value in snap.items()
            if series == name and labels]


def _quantiles(snap: Dict, name: str) -> Dict[str, float]:
    out = {}
    for labels, value in _labeled(snap, name):
        if "quantile" in labels:
            out[labels["quantile"]] = value
    return out


def render_frame(snap: Dict, previous: Optional[Dict], elapsed_s: float,
                 url: str) -> str:
    """One dashboard frame from a parsed snapshot (pure, testable)."""
    lines = [f"repro top — {url}", ""]

    # Requests + QPS: prefer the front-end counter on cluster scrapes
    # (one increment per client request, not per proxy hop).
    counter = "repro_frontend_requests_total"
    total = _series_sum(snap, counter)
    if not any(series == counter for series, _ in snap):
        counter = "repro_requests_total"
        total = _series_sum(snap, counter)
    qps = None
    if previous is not None and elapsed_s > 0:
        qps = max(0.0, (total - _series_sum(previous, counter)) / elapsed_s)
    lines.append(f"requests   total {int(total):>8d}"
                 + (f"   qps {qps:8.1f}" if qps is not None
                    else "   qps       --"))

    by_class: Dict[str, float] = {}
    for labels, value in _labeled(snap, counter):
        cls = labels.get("class")
        if cls:
            by_class[cls] = by_class.get(cls, 0.0) + value
    if by_class:
        lines.append("by class   " + "   ".join(
            f"{cls} {int(n)}" for cls, n in sorted(by_class.items())))

    quantiles = _quantiles(snap, "repro_request_latency_seconds")
    if quantiles:
        lines.append("latency    " + "   ".join(
            f"p{str(float(q) * 100).rstrip('0').rstrip('.')} "
            f"{value * 1e3:7.1f}ms"
            for q, value in sorted(quantiles.items(), key=lambda kv:
                                   float(kv[0]))))

    depth = _series_sum(snap, "repro_queue_depth")
    lines.append(f"queue      depth {int(depth)}")

    workers = _series_sum(snap, "repro_cluster_workers")
    if workers:
        alive = _series_sum(snap, "repro_cluster_workers_alive")
        restarts = _series_sum(snap, "repro_cluster_worker_restarts_total")
        shed = _series_sum(snap, "repro_frontend_shed_total")
        lines.append(f"cluster    {int(alive)}/{int(workers)} workers alive, "
                     f"{int(restarts)} restarts, {int(shed)} shed")

    budgets = _labeled(snap, "repro_slo_error_budget_remaining")
    slo_budgets = [(labels["slo"], value) for labels, value in budgets
                   if "slo" in labels]
    if slo_budgets:
        lines.append("slo budget " + "   ".join(
            f"{slo} {value:7.1%}" for slo, value in sorted(slo_budgets)))
        burns = _labeled(snap, "repro_slo_burn_rate")
        fast = {labels["slo"]: value for labels, value in burns
                if labels.get("window") == "5m"}
        if fast:
            lines.append("burn (5m)  " + "   ".join(
                f"{slo} {value:6.2f}x" for slo, value in sorted(fast.items())))
    return "\n".join(lines) + "\n"


def run_top(url: str, interval_s: float = 2.0,
            iterations: Optional[int] = None, stream=None,
            clear: bool = True) -> int:
    """Poll-render loop; returns the number of frames rendered.

    ``iterations=None`` runs until interrupted; ``clear=False`` (used by
    the smoke test and CI) appends frames instead of repainting.
    """
    stream = stream or sys.stdout
    previous: Optional[Dict] = None
    prev_t: Optional[float] = None
    frames = 0
    try:
        while iterations is None or frames < iterations:
            try:
                text = fetch_metrics(url)
            except (urllib.error.URLError, OSError) as err:
                stream.write(f"repro top — {url}: scrape failed: {err}\n")
                stream.flush()
                frames += 1
                if iterations is not None and frames >= iterations:
                    return frames
                time.sleep(interval_s)
                continue
            snap = parse_snapshot(text)
            now = time.monotonic()
            elapsed = (now - prev_t) if prev_t is not None else 0.0
            frame = render_frame(snap, previous, elapsed, url)
            if clear:
                stream.write(CLEAR)
            stream.write(frame)
            stream.flush()
            previous, prev_t = snap, now
            frames += 1
            if iterations is None or frames < iterations:
                time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return frames
