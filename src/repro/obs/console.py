"""Console formatter: renders run events as human lines on stderr.

This module is the one sanctioned home (outside ``cli.py``) for
``print`` in the library — ``scripts/lint_ops.py`` enforces that every
other module routes user-facing output through here (usually by emitting
an event record and letting :class:`ConsoleSink` format it).

The formatter reproduces the exact lines the trainer and grid engine used
to print directly, so switching them onto the event sink changed the
transport, not the output.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional

from . import events


def emit_line(text: str, stream=None) -> None:
    """Write one console line (stderr by default), flushing immediately."""
    print(text, file=stream if stream is not None else sys.stderr, flush=True)


def format_record(rec: Dict) -> Optional[str]:
    """Human line for a record, or ``None`` for kinds the console skips."""
    kind = rec.get("kind")
    name = rec.get("name", "")
    attrs = rec.get("attrs", {})
    if name == "trainer.epoch":
        return (f"  epoch {attrs.get('epoch')}: "
                f"train {attrs.get('train_loss', float('nan')):.4f} "
                f"val {attrs.get('val_loss', float('nan')):.4f}")
    if name == "grid.cell":
        status = ("cache" if attrs.get("cached")
                  else f"{rec.get('dur_s', 0.0):.2f}s")
        total = attrs.get("total", 0)
        width = len(str(total))
        return (f"[{attrs.get('done', 0):>{width}d}/{total}] "
                f"{attrs.get('cell', ''):<44s} "
                f"mse={attrs.get('mse', float('nan')):.3f} "
                f"({status}, ETA {attrs.get('eta_s', 0.0):5.1f}s)")
    if name == "server.lifecycle":
        return attrs.get("message", "")
    if kind == "span_end":
        return (f"[span] {name} {rec.get('dur_s', 0.0):.3f}s "
                f"trace={rec.get('trace')}")
    if kind == "event":
        detail = " ".join(f"{k}={v}" for k, v in attrs.items())
        return f"[event] {name}{(' ' + detail) if detail else ''}"
    return None          # span_start / resource / run_* stay quiet


class ConsoleSink:
    """An event sink that prints the formatted line for each record."""

    def __init__(self, stream=None):
        self.stream = stream

    def emit(self, rec: Dict) -> None:
        line = format_record(rec)
        if line is not None:
            emit_line(line, stream=self.stream)

    def close(self) -> None:
        pass


def emit_record(rec: Optional[Dict], stream=None) -> None:
    """Format-and-print one record (library verbose paths with no observer)."""
    if rec is not None:
        ConsoleSink(stream).emit(rec)


def event_line(name: str, attrs: Dict, stream=None) -> None:
    """Shorthand: build an event record and print its console form."""
    emit_record(events.record("event", name, attrs), stream=stream)
