"""Shared metrics primitives + one Prometheus text renderer.

The registry generalises what ``repro.serving.metrics.ServerMetrics``
used to hard-code: counters (optionally labelled), gauges (set or
callback-backed), fixed-bucket histograms with optional ring-buffer
quantiles, and exact-value size histograms.  The serving ``/metrics``
endpoint and any training-side snapshot render through the same
:meth:`MetricsRegistry.render`, so there is exactly one place that knows
the exposition format (and its label escaping rules).

Naming conventions (enforced by convention, documented in README):
``repro_`` prefix, ``_total`` suffix for counters, base units in seconds
(``_seconds``) or bytes (``_bytes``), lowercase snake-case label names.

Every mutating method is thread-safe: each metric shares its registry's
lock.
"""

from __future__ import annotations

import math
import threading
from collections import Counter as _TallyCounter
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def escape_label_value(value: str) -> str:
    """Prometheus text-format label escaping: backslash, quote, newline."""
    return (str(value).replace("\\", "\\\\")
            .replace("\n", "\\n").replace('"', '\\"'))


def format_labels(labels: Dict) -> str:
    """Render ``{k="v",...}`` preserving the caller's label order."""
    if not labels:
        return ""
    inner = ",".join(f'{key}="{escape_label_value(value)}"'
                     for key, value in labels.items())
    return "{" + inner + "}"


class Metric:
    """Base: a name, a HELP string, a TYPE, and the shared lock."""

    prom_type = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        self.name = name
        self.help = help_text
        self._lock = lock

    # -- rendering ------------------------------------------------------
    def header_lines(self) -> List[str]:
        return [f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} {self.prom_type}"]

    def sample_lines(self) -> List[str]:
        raise NotImplementedError

    def render_lines(self) -> List[str]:
        return self.header_lines() + self.sample_lines()

    def data(self) -> Dict:
        """Plain-data snapshot of this metric (tests, JSON dumps)."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing counter, optionally with labels.

    Label sets are rendered sorted by their value tuple, preserving the
    insertion order of label *names* within each series.
    """

    prom_type = "counter"

    def __init__(self, name, help_text, lock):
        super().__init__(name, help_text, lock)
        self._series: Dict[Tuple, float] = {}
        self._label_names: Dict[Tuple, Tuple] = {}

    def inc(self, amount: float = 1, labels: Optional[Dict] = None) -> None:
        key = tuple(str(v) for v in (labels or {}).values())
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount
            if key not in self._label_names:
                self._label_names[key] = tuple((labels or {}).keys())

    def value(self, labels: Optional[Dict] = None) -> float:
        key = tuple(str(v) for v in (labels or {}).values())
        with self._lock:
            return self._series.get(key, 0)

    def samples(self) -> List[Tuple[Dict, float]]:
        """``(labels_dict, value)`` pairs sorted by label values."""
        with self._lock:
            items = sorted(self._series.items())
            names = dict(self._label_names)
        return [(dict(zip(names[key], key)), value) for key, value in items]

    def sample_lines(self) -> List[str]:
        return [f"{self.name}{format_labels(labels)} {_fmt_value(value)}"
                for labels, value in self.samples()]

    def data(self) -> Dict:
        return {format_labels(labels) or "": value
                for labels, value in self.samples()}


class Gauge(Metric):
    """A point-in-time value, set directly or read through a callback.

    A gauge is unlabelled by default (one ``name value`` sample, present
    from registration — the pre-existing rendering, locked by goldens).
    Passing ``labels=`` to :meth:`set` turns on labelled series (one
    sample per label set, like :class:`Counter`); the unlabelled sample
    is then only rendered if it was ever set explicitly.
    """

    prom_type = "gauge"

    def __init__(self, name, help_text, lock):
        super().__init__(name, help_text, lock)
        self._value = 0
        self._fn: Optional[Callable[[], float]] = None
        self._default_used = False
        self._series: Dict[Tuple, float] = {}
        self._label_names: Dict[Tuple, Tuple] = {}

    def set(self, value: float, labels: Optional[Dict] = None) -> None:
        if labels:
            key = tuple(str(v) for v in labels.values())
            with self._lock:
                self._series[key] = value
                if key not in self._label_names:
                    self._label_names[key] = tuple(labels.keys())
            return
        with self._lock:
            self._value = value
            self._fn = None
            self._default_used = True

    def set_fn(self, fn: Callable[[], float]) -> None:
        """Register a callable polled at render/read time."""
        self._fn = fn
        self._default_used = True

    def value(self, labels: Optional[Dict] = None) -> float:
        if labels:
            key = tuple(str(v) for v in labels.values())
            with self._lock:
                return self._series.get(key, 0)
        fn = self._fn
        if fn is not None:
            # Same contract the old queue-depth gauge had: a broken
            # callback reads as 0, never an exception in the scrape path.
            try:
                return int(fn())
            except Exception:
                return 0
        with self._lock:
            return self._value

    def samples(self) -> List[Tuple[Dict, float]]:
        """Labelled ``(labels_dict, value)`` pairs sorted by label values."""
        with self._lock:
            items = sorted(self._series.items())
            names = dict(self._label_names)
        return [(dict(zip(names[key], key)), value) for key, value in items]

    def sample_lines(self) -> List[str]:
        with self._lock:
            has_series = bool(self._series)
        if not has_series:
            return [f"{self.name} {_fmt_value(self.value())}"]
        lines = []
        if self._default_used:
            lines.append(f"{self.name} {_fmt_value(self.value())}")
        lines += [f"{self.name}{format_labels(labels)} {_fmt_value(value)}"
                  for labels, value in self.samples()]
        return lines

    def data(self) -> Dict:
        out: Dict = {"value": self.value()}
        series = {format_labels(labels): value
                  for labels, value in self.samples()}
        if series:
            out["series"] = series
        return out


class Histogram(Metric):
    """Fixed-bucket histogram with optional exact ring-buffer quantiles.

    Renders cumulative ``_bucket`` series, ``_sum``/``_count``, and — when
    ``quantiles`` is set — ``{quantile="q"}`` series computed exactly over
    a bounded window of recent observations.
    """

    prom_type = "histogram"

    def __init__(self, name, help_text, lock, buckets: Sequence[float],
                 quantiles: Sequence[float] = (), quantile_window: int = 4096,
                 sum_format: str = "{:.6f}"):
        super().__init__(name, help_text, lock)
        self.buckets = tuple(buckets)
        self.quantile_points = tuple(quantiles)
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._window: deque = deque(maxlen=quantile_window)
        self._sum_format = sum_format

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            if self.quantile_points:
                self._window.append(value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break
            else:
                self._bucket_counts[-1] += 1

    def quantiles(self, points: Optional[Sequence[float]] = None
                  ) -> Dict[float, float]:
        """Exact quantiles over the recent-observation ring buffer."""
        points = self.quantile_points if points is None else points
        with self._lock:
            samples = sorted(self._window)
        if not samples:
            return {q: 0.0 for q in points}
        last = len(samples) - 1
        return {q: samples[min(last, int(round(q * last)))] for q in points}

    def snapshot(self) -> Tuple[float, int]:
        with self._lock:
            return self._sum, self._count

    def sample_lines(self) -> List[str]:
        with self._lock:
            counts = list(self._bucket_counts)
            total_sum, total_count = self._sum, self._count
        lines = []
        cumulative = 0
        for bound, n in zip(self.buckets, counts):
            cumulative += n
            lines.append(f'{self.name}_bucket{{le="{bound}"}} {cumulative}')
        lines += [
            f'{self.name}_bucket{{le="+Inf"}} {total_count}',
            f"{self.name}_sum {self._sum_format.format(total_sum)}",
            f"{self.name}_count {total_count}",
        ]
        for q, value in self.quantiles().items():
            lines.append(f'{self.name}{{quantile="{q}"}} {value:.6f}')
        return lines

    def data(self) -> Dict:
        total_sum, total_count = self.snapshot()
        return {"sum": total_sum, "count": total_count,
                "quantiles": {str(q): v for q, v in self.quantiles().items()}}


class SizeHistogram(Metric):
    """Exact counts per observed integer value (micro-batch sizes).

    Rendered as a cumulative histogram whose ``le`` bounds are the sizes
    actually seen — no pre-declared bucket grid.
    """

    prom_type = "histogram"

    def __init__(self, name, help_text, lock):
        super().__init__(name, help_text, lock)
        self._counts: _TallyCounter = _TallyCounter()
        self._sum = 0
        self._count = 0

    def observe(self, size: int) -> None:
        size = int(size)
        with self._lock:
            self._counts[size] += 1
            self._sum += size
            self._count += 1

    def counts(self) -> Dict[int, int]:
        with self._lock:
            return dict(self._counts)

    def snapshot(self) -> Tuple[int, int]:
        with self._lock:
            return self._sum, self._count

    def sample_lines(self) -> List[str]:
        with self._lock:
            items = sorted(self._counts.items())
            total_sum, total_count = self._sum, self._count
        lines = []
        cumulative = 0
        for size, n in items:
            cumulative += n
            lines.append(f'{self.name}_bucket{{le="{size}"}} {cumulative}')
        lines += [
            f'{self.name}_bucket{{le="+Inf"}} {total_count}',
            f"{self.name}_sum {total_sum}",
            f"{self.name}_count {total_count}",
        ]
        return lines

    def data(self) -> Dict:
        total_sum, total_count = self.snapshot()
        return {"counts": {str(k): v for k, v in sorted(self.counts().items())},
                "sum": total_sum, "count": total_count}


def _fmt_value(value) -> str:
    if isinstance(value, float):
        # Canonical Prometheus text-format spellings for the specials —
        # `float("NaN")`/`float("+Inf")` round-trip through any reader.
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
    return str(value)


class MetricsRegistry:
    """Creates, deduplicates, and renders metrics in registration order."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    # -- constructors (get-or-create, erroring on a type clash) ---------
    def _get_or_create(self, name: str, cls, factory) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}")
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str) -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, help_text, self._lock))

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._get_or_create(
            name, Gauge, lambda: Gauge(name, help_text, self._lock))

    def histogram(self, name: str, help_text: str, buckets: Sequence[float],
                  quantiles: Sequence[float] = (),
                  quantile_window: int = 4096,
                  sum_format: str = "{:.6f}") -> Histogram:
        return self._get_or_create(
            name, Histogram,
            lambda: Histogram(name, help_text, self._lock, buckets,
                              quantiles=quantiles,
                              quantile_window=quantile_window,
                              sum_format=sum_format))

    def size_histogram(self, name: str, help_text: str) -> SizeHistogram:
        return self._get_or_create(
            name, SizeHistogram,
            lambda: SizeHistogram(name, help_text, self._lock))

    # -- reading --------------------------------------------------------
    def get(self, name: str) -> Metric:
        with self._lock:
            return self._metrics[name]

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    def render(self) -> str:
        """The Prometheus text exposition over every registered metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render_lines())
        return "\n".join(lines) + "\n"

    def data(self) -> Dict:
        """Plain-dict snapshot of every metric (the training-side view)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.data() for name, metric in metrics}
