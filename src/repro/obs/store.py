"""Trace store: size-rotated JSONL segments with footer indexes.

Long runs (a serving cluster under sustained traffic, a paper-scale
grid) grow a single JSONL run log without bound.  The store bounds that
two ways:

* :class:`RotatingJsonlSink` — a drop-in for
  :class:`~repro.obs.events.JsonlSink` that seals the active file once
  it crosses ``max_segment_bytes``: it appends one ``segment_footer``
  record summarising the segment (record count, per-kind counts,
  timestamp range), renames the file to ``<path>.<seq>`` and starts a
  fresh ``<path>``.  Sealed segments are immutable.
* :class:`TraceStore` — the read side.  It discovers the segment chain
  for a base path (rotated segments in sequence order, then the active
  file) and streams records one line at a time.  When a caller only
  needs some kinds (``repro trace --analyze`` wants spans and events,
  not resource samples), the per-segment footer lets whole segments be
  skipped without reading their bodies — the indexed-read property the
  ``trace_indexed_over_full`` benchmark fact locks in.

Rotation is single-writer: the multi-process cluster trace (workers
appending to one file with O_APPEND) keeps using the plain
:class:`~repro.obs.events.JsonlSink`, because concurrent appenders
cannot coordinate a rename.  A plain un-rotated file is just a chain of
one segment, so every reader below also accepts the old format.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from . import events

#: How many bytes of file tail are searched for a footer record.
_FOOTER_TAIL_BYTES = 16 << 10

#: Default segment bound: large enough that short runs never rotate.
DEFAULT_SEGMENT_BYTES = 64 << 20


def segment_name(path: str, seq: int) -> str:
    """The on-disk name of sealed segment ``seq`` for base ``path``."""
    return f"{path}.{seq:05d}"


class RotatingJsonlSink:
    """JSONL sink that seals the file into footer-indexed segments.

    API-compatible with :class:`~repro.obs.events.JsonlSink` (``emit`` /
    ``close``); every method is thread-safe.  The active file carries no
    footer (it is still growing); only sealed segments are indexed.
    """

    def __init__(self, path: str,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        if max_segment_bytes < 4096:
            raise ValueError("max_segment_bytes must be >= 4096")
        self.path = str(path)
        self.max_segment_bytes = int(max_segment_bytes)
        self._lock = threading.Lock()
        self._seq = self._next_seq()
        self._fh = open(self.path, "a", encoding="utf-8")
        self._bytes = self._fh.tell()
        self._count = 0
        self._kinds: Dict[str, int] = {}
        self._ts_min: Optional[float] = None
        self._ts_max: Optional[float] = None

    def _next_seq(self) -> int:
        """First unused segment number (resuming an existing chain)."""
        seq = 1
        while os.path.exists(segment_name(self.path, seq)):
            seq += 1
        return seq

    # ------------------------------------------------------------------
    def emit(self, rec: Dict) -> None:
        line = json.dumps(rec, default=events._json_default) + "\n"
        with self._lock:
            if self._fh.closed:
                return
            if (self._count > 0
                    and self._bytes + len(line) > self.max_segment_bytes):
                self._seal_locked()
            self._fh.write(line)
            self._fh.flush()
            self._bytes += len(line)
            self._count += 1
            kind = rec.get("kind", "?")
            self._kinds[kind] = self._kinds.get(kind, 0) + 1
            ts = rec.get("ts")
            if isinstance(ts, (int, float)):
                if self._ts_min is None or ts < self._ts_min:
                    self._ts_min = ts
                if self._ts_max is None or ts > self._ts_max:
                    self._ts_max = ts

    def _seal_locked(self) -> None:
        """Append the footer, rename to ``<path>.<seq>``, start fresh."""
        footer = events.record("segment_footer", "segment", {
            "segment": self._seq,
            "records": self._count,
            "kinds": dict(self._kinds),
            "ts_min": self._ts_min,
            "ts_max": self._ts_max,
        })
        self._fh.write(json.dumps(footer, default=events._json_default) + "\n")
        self._fh.close()
        os.replace(self.path, segment_name(self.path, self._seq))
        self._seq += 1
        self._fh = open(self.path, "a", encoding="utf-8")
        self._bytes = 0
        self._count = 0
        self._kinds = {}
        self._ts_min = self._ts_max = None

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


# ----------------------------------------------------------------------
def read_footer(path: str) -> Optional[Dict]:
    """The ``segment_footer`` record ending ``path``, or ``None``.

    Reads only the file's tail — the whole point of the footer index is
    that deciding whether to scan a segment costs O(1), not O(bytes).
    """
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            fh.seek(max(0, size - _FOOTER_TAIL_BYTES))
            tail = fh.read()
    except OSError:
        return None
    lines = tail.splitlines()
    # The very last line must be the footer; anything else means the
    # segment was not sealed (or is a plain JSONL file).
    for raw in reversed(lines):
        raw = raw.strip()
        if not raw:
            continue
        try:
            rec = json.loads(raw)
        except ValueError:
            return None
        return rec if rec.get("kind") == "segment_footer" else None
    return None


class TraceStore:
    """Read side of a (possibly rotated) JSONL run log."""

    def __init__(self, path: str):
        self.path = str(path)

    # ------------------------------------------------------------------
    def segments(self) -> List[str]:
        """Segment paths in write order (sealed first, active last)."""
        out: List[str] = []
        seq = 1
        while True:
            candidate = segment_name(self.path, seq)
            if not os.path.exists(candidate):
                break
            out.append(candidate)
            seq += 1
        if os.path.exists(self.path):
            out.append(self.path)
        if not out:
            raise OSError(f"no trace log at {self.path} "
                          f"(nor rotated segments {self.path}.NNNNN)")
        return out

    def footers(self) -> List[Optional[Dict]]:
        """One footer per segment (``None`` for unsealed / plain files)."""
        return [read_footer(seg) for seg in self.segments()]

    # ------------------------------------------------------------------
    def iter_events(self, kinds: Optional[Iterable[str]] = None
                    ) -> Iterator[Dict]:
        """Stream schema-validated records across every segment.

        With ``kinds`` given, sealed segments whose footer proves they
        contain none of the requested kinds are skipped without reading
        their bodies; within scanned segments, non-matching records are
        filtered out.  ``segment_footer`` records are never yielded.
        """
        wanted = set(kinds) if kinds is not None else None
        for seg in self.segments():
            if wanted is not None:
                footer = read_footer(seg)
                if footer is not None:
                    seg_kinds = footer.get("attrs", {}).get("kinds", {})
                    if not any(seg_kinds.get(k) for k in wanted):
                        continue
            yield from _iter_segment(seg, wanted)

    def read_all(self) -> List[Dict]:
        """Every record of every segment (the old load-everything shape)."""
        return list(self.iter_events())


def _iter_segment(path: str, wanted: Optional[set]) -> Iterator[Dict]:
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(
                    f"{path}:{line_no}: malformed JSONL record: {err}"
                ) from None
            version = rec.get("v")
            if version != events.SCHEMA_VERSION:
                raise ValueError(
                    f"{path}:{line_no}: schema version {version!r} is not "
                    f"supported (expected {events.SCHEMA_VERSION})")
            kind = rec.get("kind")
            if kind not in events.KINDS:
                raise ValueError(
                    f"{path}:{line_no}: unknown record kind {kind!r}")
            if kind == "segment_footer":
                continue
            if wanted is not None and kind not in wanted:
                continue
            yield rec


def load_records(path: str,
                 kinds: Optional[Sequence[str]] = None) -> List[Dict]:
    """Convenience: stream a (rotated or plain) log into a list."""
    return list(TraceStore(path).iter_events(kinds=kinds))
