"""Unified observability: span tracing, run events, shared metrics.

One subsystem replaces the three telemetry islands that grew up around
training (`print`), experiments (stderr progress), and serving
(``ServerMetrics``):

* **Spans + events** — ``obs.configure(path="run.jsonl")`` installs a
  global :class:`~repro.obs.tracer.Observer`; the trainer, grid engine,
  and HTTP front end then emit hierarchical spans and structured events
  into a schema-versioned JSONL log (`repro trace run.jsonl` renders it).
* **Metrics** — :class:`~repro.obs.metrics.MetricsRegistry` provides the
  counter/gauge/histogram/quantile primitives behind the serving
  ``/metrics`` endpoint and any training-side snapshot, with one shared
  Prometheus text renderer.
* **Zero cost when off** — ``obs.active()`` returns ``None`` unless
  configured; instrumented code checks that one reference and does no
  other work (gated by the ``trainer_obs_disabled_overhead`` benchmark
  fact in ``BENCH_substrate.json``).

See DESIGN.md §5g for the span-context contract.
"""

from . import analysis, console, context, events, report, slo, store, top
from .analysis import (
    fit_attributions, folded_stacks, render_analysis, request_attributions,
)
from .console import ConsoleSink
from .context import SpanRef
from .events import (
    SCHEMA_VERSION, JsonlSink, MultiSink, NullSink, read_events, record,
)
from .metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, SizeHistogram,
    escape_label_value, format_labels,
)
from .resource import ResourceSampler, sample_process
from .runtime import active, configure, observe, shutdown
from .slo import SLObjective, SLOTracker, default_objectives, load_objectives
from .store import RotatingJsonlSink, TraceStore, load_records, read_footer
from .tracer import Observer, Span

__all__ = [
    "analysis", "console", "context", "events", "report", "slo", "store",
    "top",
    "fit_attributions", "folded_stacks", "render_analysis",
    "request_attributions",
    "ConsoleSink", "SpanRef",
    "SCHEMA_VERSION", "JsonlSink", "MultiSink", "NullSink", "read_events",
    "record",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "SizeHistogram",
    "escape_label_value", "format_labels",
    "ResourceSampler", "sample_process",
    "active", "configure", "observe", "shutdown",
    "SLObjective", "SLOTracker", "default_objectives", "load_objectives",
    "RotatingJsonlSink", "TraceStore", "load_records", "read_footer",
    "Observer", "Span",
]
