"""Thread-local span context: who is the current span on *this* thread.

The tracer keeps a stack of :class:`SpanRef` per thread (the same
``threading.local`` pattern as the autodiff ``_EngineState``), so nested
``with observer.span(...)`` blocks parent correctly and a span opened on a
serving worker thread can never adopt a training thread's parent by
accident.

Cross-thread propagation is explicit: the producer captures
:func:`current` (e.g. when a request handler submits a window to the
micro-batcher) and the consumer passes that ref as ``parent=`` when it
opens or emits its own span.
"""

from __future__ import annotations

import os
import threading
from typing import NamedTuple, Optional


class SpanRef(NamedTuple):
    """Identity of one span: enough to parent children or link across threads."""

    trace_id: str
    span_id: str


_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current() -> Optional[SpanRef]:
    """The innermost open span on this thread, or ``None``."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def push(ref: SpanRef) -> None:
    _stack().append(ref)


def pop() -> Optional[SpanRef]:
    stack = getattr(_local, "stack", None)
    return stack.pop() if stack else None


def depth() -> int:
    stack = getattr(_local, "stack", None)
    return len(stack) if stack else 0


def new_trace_id() -> str:
    """A fresh 128-bit trace id (W3C-style 32 hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars)."""
    return os.urandom(8).hex()
