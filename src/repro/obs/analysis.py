"""Critical-path attribution and flamegraph export over the span DAG.

Raw traces answer "what happened"; this module answers "where did the
time go" per request and per training fit:

* :func:`request_attributions` — for every served inference request
  (cluster traces stitched across processes via the
  ``X-Trace-Id``/``X-Parent-Span`` propagation, single-server traces
  as-is), apportion the front-end wall-clock into **proxy hop**, **queue
  wait**, **batch execute** (the stacked model forward), and
  **postprocess** components.  Components are reconstructed from the
  span timestamps, so their sum self-validates against the measured
  request duration (``coverage`` per request; the cluster smoke gate
  requires it within 5%).
* :func:`fit_attributions` — for every ``trainer.fit`` span, join the
  ``trainer.profile`` event (the GraphProfiler summary recorded by
  ``Trainer.fit(profile=True)``) and apportion the fit wall-clock to
  per-op forward/backward time.
* :func:`folded_stacks` — the whole trace as folded-stack flamegraph
  text (``a;b;c <microseconds>`` per line, self-time semantics), with
  per-op frames grafted under their ``trainer.fit`` span so a training
  run's flamegraph bottoms out in ops, not in one opaque fit frame.

Everything is a pure function over record dicts (see
:mod:`repro.obs.events`); the ``repro trace --analyze/--flamegraph``
CLI sections are thin renderers on top.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import report as _report


def _span_ends(records: Sequence[Dict]) -> List[Dict]:
    return [r for r in records if r.get("kind") == "span_end"]


def _window(rec: Dict) -> Tuple[float, float]:
    """(start, end) wall-clock seconds of a span_end record.

    ``ts`` is stamped when the record is built — at span exit — so the
    start is reconstructed as ``ts - dur_s``.
    """
    end = float(rec.get("ts", 0.0))
    return end - float(rec.get("dur_s", 0.0)), end


# ----------------------------------------------------------------------
# Request critical path
# ----------------------------------------------------------------------
def request_attributions(records: Sequence[Dict]) -> List[Dict]:
    """Per-request wall-clock attribution for every inference POST.

    Returns one dict per request::

        {"trace": ..., "path": "/v1/forecast", "tier": "cluster"|"single",
         "status": ..., "total_s": ...,
         "components": {"proxy_hop": ..., "queue_wait": ...,
                        "batch_execute": ..., "postprocess": ...},
         "coverage": sum(components)/total_s}

    Cluster traces contribute both hops: the front-end ``http.request``
    span is the total, its worker-side child (stitched via the trace
    headers) bounds the in-worker components, and the ``batch.execute``
    span that lists the worker span in ``member_spans`` splits the
    worker time into queue wait / forward / postprocess.
    """
    ended = _span_ends(records)
    requests = [r for r in ended if r.get("name") == "http.request"
                and r.get("attrs", {}).get("method") == "POST"
                and str(r.get("attrs", {}).get("path", "")).startswith("/v1/")]
    if not requests:
        return []
    # batch.execute spans indexed by every member request span they served
    batch_by_member: Dict[str, Dict] = {}
    for rec in ended:
        if rec.get("name") != "batch.execute":
            continue
        for member in rec.get("attrs", {}).get("member_spans", []) or []:
            batch_by_member[member] = rec
    # worker-side request spans indexed by their parent (the front-end
    # span id forwarded as X-Parent-Span)
    worker_by_parent: Dict[str, Dict] = {}
    frontend_ids = set()
    for rec in requests:
        if rec.get("attrs", {}).get("tier") == "frontend":
            frontend_ids.add(rec.get("span"))
    for rec in requests:
        parent = rec.get("parent")
        if parent in frontend_ids:
            worker_by_parent[parent] = rec

    out: List[Dict] = []
    for rec in requests:
        attrs = rec.get("attrs", {})
        if attrs.get("tier") == "frontend":
            worker = worker_by_parent.get(rec.get("span"))
            out.append(_attribute_one(rec, worker,
                                      batch_by_member, tier="cluster"))
        elif rec.get("parent") not in frontend_ids:
            # Single-server request (no front-end hop above it).
            out.append(_attribute_one(rec, rec, batch_by_member,
                                      tier="single"))
    return out


def _attribute_one(total_rec: Dict, worker_rec: Optional[Dict],
                   batch_by_member: Dict[str, Dict], tier: str) -> Dict:
    attrs = total_rec.get("attrs", {})
    total = float(total_rec.get("dur_s", 0.0))
    components = {"proxy_hop": 0.0, "queue_wait": 0.0,
                  "batch_execute": 0.0, "postprocess": 0.0}
    if worker_rec is not None:
        worker_dur = float(worker_rec.get("dur_s", 0.0))
        if tier == "cluster":
            components["proxy_hop"] = max(0.0, total - worker_dur)
        w_start, w_end = _window(worker_rec)
        batch = batch_by_member.get(worker_rec.get("span"))
        if batch is not None:
            b_start, b_end = _window(batch)
            components["queue_wait"] = max(0.0, b_start - w_start)
            components["batch_execute"] = float(batch.get("dur_s", 0.0))
            components["postprocess"] = max(0.0, w_end - b_end)
        else:
            # No batched forward under this request (an error response,
            # a shed request): the worker handling is one component.
            components["queue_wait"] = worker_dur
    else:
        # Front-end span with no stitched worker child (all candidates
        # failed, or the worker trace was lost): everything is the hop.
        components["proxy_hop"] = total
    covered = sum(components.values())
    return {
        "trace": total_rec.get("trace"),
        "path": attrs.get("path"),
        "tier": tier,
        "status": attrs.get("status_code", attrs.get("status")),
        "total_s": total,
        "components": components,
        "coverage": (covered / total) if total > 0 else 1.0,
    }


def summarize_attributions(rows: Sequence[Dict]) -> Optional[Dict]:
    """Mean per-component share and worst coverage across requests."""
    if not rows:
        return None
    keys = list(rows[0]["components"])
    total = sum(r["total_s"] for r in rows)
    shares = {k: (sum(r["components"][k] for r in rows) / total
                  if total > 0 else 0.0) for k in keys}
    coverages = [r["coverage"] for r in rows]
    return {
        "requests": len(rows),
        "total_s": total,
        "component_shares": shares,
        "coverage_min": min(coverages),
        "coverage_max": max(coverages),
    }


# ----------------------------------------------------------------------
# Trainer fit attribution (GraphProfiler join)
# ----------------------------------------------------------------------
def fit_attributions(records: Sequence[Dict]) -> List[Dict]:
    """Join each ``trainer.fit`` span with its ``trainer.profile`` event.

    Returns one dict per profiled fit with the fit wall-clock, the op
    table, per-op share of the fit, and the profiled fraction (op
    forward+backward time over fit wall-clock — the rest is data
    loading, optimizer steps, and Python glue).
    """
    fits = {r.get("span"): r for r in _span_ends(records)
            if r.get("name") == "trainer.fit"}
    out = []
    for ev in records:
        if ev.get("kind") != "event" or ev.get("name") != "trainer.profile":
            continue
        attrs = ev.get("attrs", {})
        ops = attrs.get("ops", {}) or {}
        fit = fits.get(ev.get("span"))
        fit_s = float(fit.get("dur_s", 0.0)) if fit else 0.0
        op_rows = []
        for name, stats in ops.items():
            op_s = (float(stats.get("forward_s", 0.0))
                    + float(stats.get("backward_s", 0.0)))
            op_rows.append({"op": name, "seconds": op_s,
                            "forward_s": float(stats.get("forward_s", 0.0)),
                            "backward_s": float(stats.get("backward_s", 0.0)),
                            "calls": int(stats.get("calls", 0)),
                            "share_of_fit": (op_s / fit_s) if fit_s else 0.0})
        op_rows.sort(key=lambda r: r["seconds"], reverse=True)
        profiled = sum(r["seconds"] for r in op_rows)
        out.append({
            "model": attrs.get("model", "?"),
            "trace": ev.get("trace"),
            "fit_s": fit_s,
            "ops": op_rows,
            "modules": attrs.get("modules", {}) or {},
            "profiled_s": profiled,
            "profiled_fraction": (profiled / fit_s) if fit_s else 0.0,
        })
    return out


# ----------------------------------------------------------------------
# Folded-stack flamegraph export
# ----------------------------------------------------------------------
def folded_stacks(records: Sequence[Dict]) -> List[str]:
    """The trace as folded-stack lines: ``frame;frame;... <usec>``.

    Span frames carry **self time** (aggregate duration minus aggregate
    child duration along the name path, clamped at zero — sibling
    threads can make children overlap their parent).  ``trainer.fit``
    frames additionally expand into per-op child frames from the
    GraphProfiler summary, with the op time subtracted from the fit's
    self time so nothing is counted twice.
    """
    stats = _report.aggregate_spans(records)
    if not stats:
        return []
    totals = {path: entry["total_s"] for path, entry in stats.items()}
    child_sums: Dict[Tuple[str, ...], float] = {}
    for path, total in totals.items():
        if len(path) > 1:
            parent = path[:-1]
            child_sums[parent] = child_sums.get(parent, 0.0) + total

    # Op frames grafted under every trainer.fit path, scaled nothing —
    # the profiler measured the same wall clock the span did.
    op_frames: Dict[Tuple[str, ...], float] = {}
    op_time_by_fit_path: Dict[Tuple[str, ...], float] = {}
    fit_paths = [p for p in totals if p[-1] == "trainer.fit"]
    if fit_paths:
        for fit in fit_attributions(records):
            for path in fit_paths:
                for row in fit["ops"]:
                    if row["forward_s"] > 0:
                        key = path + (f"op:{row['op']} (forward)",)
                        op_frames[key] = (op_frames.get(key, 0.0)
                                          + row["forward_s"])
                    if row["backward_s"] > 0:
                        key = path + (f"op:{row['op']} (backward)",)
                        op_frames[key] = (op_frames.get(key, 0.0)
                                          + row["backward_s"])
                op_time_by_fit_path[path] = (
                    op_time_by_fit_path.get(path, 0.0) + fit["profiled_s"])

    lines = []
    for path in sorted(totals):
        self_s = totals[path] - child_sums.get(path, 0.0)
        self_s -= op_time_by_fit_path.get(path, 0.0)
        usec = int(round(max(0.0, self_s) * 1e6))
        if usec > 0:
            lines.append(";".join(path) + f" {usec}")
    for path in sorted(op_frames):
        usec = int(round(op_frames[path] * 1e6))
        if usec > 0:
            lines.append(";".join(path) + f" {usec}")
    return lines


def render_folded(records: Sequence[Dict]) -> str:
    return "\n".join(folded_stacks(records))


# ----------------------------------------------------------------------
# Rendering (the `repro trace --analyze` section)
# ----------------------------------------------------------------------
def render_analysis(records: Sequence[Dict]) -> Optional[str]:
    """Human-readable critical-path section, or ``None`` when empty."""
    req_rows = request_attributions(records)
    fit_rows = fit_attributions(records)
    if not req_rows and not fit_rows:
        return None
    blocks: List[str] = []
    summary = summarize_attributions(req_rows)
    if summary is not None:
        lines = [f"{summary['requests']} attributed requests, "
                 f"{summary['total_s'] * 1e3:.1f}ms total; component shares:"]
        for key, share in summary["component_shares"].items():
            lines.append(f"  {key:14s} {share:7.1%}")
        lines.append(f"coverage (component sum / measured duration): "
                     f"{summary['coverage_min']:.1%} .. "
                     f"{summary['coverage_max']:.1%}")
        worst = sorted(req_rows, key=lambda r: r["total_s"],
                       reverse=True)[:3]
        lines.append("slowest requests:")
        for row in worst:
            parts = ", ".join(f"{k} {v * 1e3:.1f}ms"
                              for k, v in row["components"].items() if v > 0)
            lines.append(f"  {row['total_s'] * 1e3:7.1f}ms  {row['path']} "
                         f"[{row['tier']}]  ({parts})")
        blocks.append("\n".join(lines))
    for fit in fit_rows:
        lines = [f"fit {fit['model']}: {fit['fit_s']:.2f}s wall, "
                 f"{fit['profiled_s']:.2f}s in ops "
                 f"({fit['profiled_fraction']:.1%} profiled); top ops:"]
        for row in fit["ops"][:5]:
            lines.append(f"  {row['op']:24s} {row['seconds'] * 1e3:8.1f}ms "
                         f"({row['share_of_fit']:6.1%} of fit, "
                         f"{row['calls']} calls)")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
