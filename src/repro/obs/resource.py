"""Background resource sampler: periodic ``/proc`` RSS + CPU events.

A daemon thread wakes every ``interval_s`` and emits one ``resource``
record with the process's resident set size (``/proc/self/status``
``VmRSS``) and cumulative CPU seconds (``/proc/self/stat`` utime+stime).
From the second sample on, each record also carries ``cpu_pct`` — CPU
use over the interval since the previous sample, derived from the delta
of the cumulative counter (100 = one core fully busy) — so a reader can
see utilisation without re-deriving deltas itself.  On platforms without
``/proc`` the sampler degrades to whatever fields it can read (possibly
none) instead of failing.

Lifecycle: ``start()`` and ``stop()`` are both idempotent; ``stop()``
joins the thread so no sample can land after it returns.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional, Tuple

from . import events

_CLK_TCK = None


def _clock_ticks() -> float:
    global _CLK_TCK
    if _CLK_TCK is None:
        try:
            _CLK_TCK = float(os.sysconf("SC_CLK_TCK"))
        except (AttributeError, ValueError, OSError):
            _CLK_TCK = 100.0
    return _CLK_TCK


def sample_process(pid: str = "self") -> Dict[str, float]:
    """One RSS/CPU reading; missing ``/proc`` files yield a partial dict."""
    out: Dict[str, float] = {}
    try:
        with open(f"/proc/{pid}/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    out["rss_bytes"] = int(line.split()[1]) * 1024
                    break
    except OSError:
        pass
    try:
        with open(f"/proc/{pid}/stat") as fh:
            fields = fh.read().rsplit(") ", 1)[-1].split()
            # fields[0] is state; utime/stime are stat fields 14/15,
            # i.e. indices 11/12 after the "(comm) " prefix is stripped.
            utime, stime = int(fields[11]), int(fields[12])
            out["cpu_s"] = (utime + stime) / _clock_ticks()
    except (OSError, IndexError, ValueError):
        pass
    return out


class ResourceSampler:
    """Emits ``resource`` records to a sink on a fixed interval."""

    def __init__(self, sink, interval_s: float = 1.0):
        self.sink = sink
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ResourceSampler":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> "ResourceSampler":
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None
        return self

    def _run(self) -> None:
        # Sample once immediately so short runs still get a reading, then
        # on the interval until stop() fires.
        previous: Optional[Tuple[float, float]] = None
        while True:
            sample = sample_process()
            now = time.monotonic()
            cpu_s = sample.get("cpu_s")
            if cpu_s is not None:
                if previous is not None:
                    prev_t, prev_cpu = previous
                    elapsed = now - prev_t
                    if elapsed > 0:
                        sample["cpu_pct"] = max(
                            0.0, 100.0 * (cpu_s - prev_cpu) / elapsed)
                previous = (now, cpu_s)
            self.sink.emit(events.record("resource", "proc.sample", sample))
            if self._stop.wait(self.interval_s):
                return
