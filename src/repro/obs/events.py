"""Structured run events: schema-versioned records and JSONL sinks.

Every record is one flat dict (one JSON line on disk):

``{"v": 1, "ts": <unix seconds>, "kind": <kind>, "name": <name>,
   "trace": <trace id or None>, "span": <span id or None>,
   "parent": <parent span id or None>, "attrs": {...}}``

Kinds:

* ``run_start`` / ``run_end`` — sink lifecycle (pid, python version);
* ``span_start`` / ``span_end`` — hierarchical spans; ``span_end`` carries
  ``dur_s`` and ``status`` inside ``attrs``;
* ``event`` — a point-in-time fact (an epoch's losses, a lifecycle note);
* ``resource`` — a background ``/proc`` RSS + CPU sample;
* ``alert`` — an SLO burn-rate alert transition (firing/resolved) from
  :mod:`repro.obs.slo`;
* ``segment_footer`` — the index record sealing a rotated trace segment
  (:mod:`repro.obs.store`); never emitted into unrotated logs.

``SCHEMA_VERSION`` is bumped on any incompatible change;
:func:`read_events` refuses records from a different major version so the
``repro trace`` aggregator never mis-parses old logs silently.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Iterable, List, Optional

SCHEMA_VERSION = 1

KINDS = ("run_start", "run_end", "span_start", "span_end", "event",
         "resource", "alert", "segment_footer")


def record(kind: str, name: str, attrs: Optional[Dict] = None, *,
           trace: Optional[str] = None, span: Optional[str] = None,
           parent: Optional[str] = None, dur_s: Optional[float] = None,
           ts: Optional[float] = None) -> Dict:
    """Build one schema-v1 record (shared by the observer and ad-hoc emitters)."""
    rec: Dict = {
        "v": SCHEMA_VERSION,
        "ts": time.time() if ts is None else ts,
        "kind": kind,
        "name": name,
        "trace": trace,
        "span": span,
        "parent": parent,
        "attrs": dict(attrs) if attrs else {},
    }
    if dur_s is not None:
        rec["dur_s"] = float(dur_s)
    return rec


class NullSink:
    """Swallows records; the disabled-path stand-in."""

    def emit(self, rec: Dict) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one JSON line per record; every method is thread-safe.

    Lines are flushed as they are written so a live run can be tailed (and
    a crashed run keeps everything emitted before the crash).
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")

    def emit(self, rec: Dict) -> None:
        line = json.dumps(rec, default=_json_default) + "\n"
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line)
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


class MultiSink:
    """Fans each record out to several sinks (JSONL + console, typically)."""

    def __init__(self, sinks: Iterable):
        self.sinks = list(sinks)

    def emit(self, rec: Dict) -> None:
        for sink in self.sinks:
            sink.emit(rec)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def _json_default(value):
    """Serialise numpy scalars and other stragglers without importing numpy."""
    for attr in ("item",):          # numpy scalars expose .item()
        if hasattr(value, attr):
            return value.item()
    return str(value)


def read_events(path: str) -> List[Dict]:
    """Parse a JSONL run log, validating the schema version of every record.

    Raises ``ValueError`` on malformed JSON or an unknown schema version —
    the trace aggregator must never silently mis-read a log.
    """
    records = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(
                    f"{path}:{line_no}: malformed JSONL record: {err}") from None
            version = rec.get("v")
            if version != SCHEMA_VERSION:
                raise ValueError(
                    f"{path}:{line_no}: schema version {version!r} is not "
                    f"supported (expected {SCHEMA_VERSION})")
            if rec.get("kind") not in KINDS:
                raise ValueError(
                    f"{path}:{line_no}: unknown record kind {rec.get('kind')!r}")
            records.append(rec)
    return records
