"""Aggregate a JSONL run log into span-tree and per-phase summaries.

Pure functions over the record dicts produced by
:mod:`repro.obs.events` — the ``repro trace`` CLI is a thin wrapper that
reads a file and prints :func:`render_report`.

The span tree groups ``span_end`` records by their *name path* (the chain
of ancestor span names), so a thousand ``grid.cell`` spans under one
``grid.run`` collapse into a single aggregated row with count/total/mean/
max — the "where did the time go" table.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import events  # noqa: F401  (re-exported; analysis imports via here)
from .store import TraceStore

#: The record kinds the report sections actually aggregate.  Streaming
#: loads with this filter let footer-indexed rotated logs skip whole
#: segments (e.g. ones holding only resource samples).
ANALYSIS_KINDS = ("span_start", "span_end", "event", "alert")


def load(path: str, kinds: Optional[Iterable[str]] = None) -> List[Dict]:
    """Stream + schema-validate a run log (rotated chains included).

    Replaces the old ``events.read_events`` single-file path: segments
    are streamed one line at a time, and when ``kinds`` is given, sealed
    segments whose footer proves they hold none of the requested kinds
    are skipped without reading their bodies.
    """
    return list(TraceStore(path).iter_events(kinds=kinds))


def spans(records: Sequence[Dict]) -> List[Dict]:
    return [r for r in records if r.get("kind") == "span_end"]


def span_paths(records: Sequence[Dict]) -> List[Tuple[Tuple[str, ...], Dict]]:
    """Each span's ancestor-name path (root first), orphans as roots."""
    ended = spans(records)
    by_id = {r["span"]: r for r in ended if r.get("span")}
    cache: Dict[str, Tuple[str, ...]] = {}

    def path_of(rec: Dict) -> Tuple[str, ...]:
        span_id = rec.get("span")
        if span_id in cache:
            return cache[span_id]
        seen = set()
        names = []
        node: Optional[Dict] = rec
        while node is not None and node.get("span") not in seen:
            seen.add(node.get("span"))
            names.append(node.get("name", "?"))
            node = by_id.get(node.get("parent"))
        path = tuple(reversed(names))
        if span_id:
            cache[span_id] = path
        return path

    return [(path_of(rec), rec) for rec in ended]


def aggregate_spans(records: Sequence[Dict]) -> Dict[Tuple[str, ...], Dict]:
    """Per-path stats: count, total/min/max duration, error count."""
    stats: Dict[Tuple[str, ...], Dict] = {}
    for path, rec in span_paths(records):
        entry = stats.setdefault(path, {"count": 0, "total_s": 0.0,
                                        "min_s": float("inf"), "max_s": 0.0,
                                        "errors": 0})
        dur = float(rec.get("dur_s", 0.0))
        entry["count"] += 1
        entry["total_s"] += dur
        entry["min_s"] = min(entry["min_s"], dur)
        entry["max_s"] = max(entry["max_s"], dur)
        if rec.get("attrs", {}).get("status") == "error":
            entry["errors"] += 1
    return stats


def render_span_tree(records: Sequence[Dict]) -> str:
    """The indented span-profile table (one row per name path)."""
    stats = aggregate_spans(records)
    if not stats:
        return "(no spans recorded)"
    lines = [f"{'span':44s} {'count':>7s} {'total':>10s} {'mean':>10s} "
             f"{'max':>10s}"]
    for path in sorted(stats):
        entry = stats[path]
        label = "  " * (len(path) - 1) + path[-1]
        flag = f"  ({entry['errors']} errors)" if entry["errors"] else ""
        lines.append(
            f"{label:44s} {entry['count']:7d} "
            f"{entry['total_s'] * 1e3:8.1f}ms "
            f"{entry['total_s'] / entry['count'] * 1e3:8.1f}ms "
            f"{entry['max_s'] * 1e3:8.1f}ms{flag}")
    return "\n".join(lines)


def epoch_rows(records: Sequence[Dict]) -> List[Dict]:
    return [{"epoch": r["attrs"].get("epoch"),
             "train_loss": r["attrs"].get("train_loss"),
             "val_loss": r["attrs"].get("val_loss"),
             "seconds": r.get("dur_s", 0.0)}
            for r in spans(records) if r.get("name") == "trainer.epoch"]


def render_epochs(records: Sequence[Dict]) -> Optional[str]:
    rows = epoch_rows(records)
    if not rows:
        return None
    lines = [f"{'epoch':>5s} {'train':>10s} {'val':>10s} {'seconds':>9s}"]
    for row in rows:
        lines.append(f"{row['epoch']:5d} {row['train_loss']:10.4f} "
                     f"{row['val_loss']:10.4f} {row['seconds']:8.2f}s")
    return "\n".join(lines)


def cell_rows(records: Sequence[Dict]) -> List[Dict]:
    return [{"cell": r["attrs"].get("cell"),
             "cached": bool(r["attrs"].get("cached")),
             "mse": r["attrs"].get("mse"),
             "worker_pid": r["attrs"].get("worker_pid"),
             "seconds": r.get("dur_s", 0.0)}
            for r in spans(records) if r.get("name") == "grid.cell"]


def render_cells(records: Sequence[Dict], stragglers: int = 3
                 ) -> Optional[str]:
    rows = cell_rows(records)
    if not rows:
        return None
    executed = [r for r in rows if not r["cached"]]
    cached = len(rows) - len(executed)
    lines = [f"{len(rows)} cells: {len(executed)} executed, "
             f"{cached} cache hits"]
    if executed:
        total = sum(r["seconds"] for r in executed)
        lines.append(f"executed cell time: total {total:.2f}s, "
                     f"mean {total / len(executed):.2f}s")
        worst = sorted(executed, key=lambda r: r["seconds"],
                       reverse=True)[:stragglers]
        lines.append("slowest cells:")
        for row in worst:
            lines.append(f"  {row['seconds']:7.2f}s  {row['cell']}"
                         + (f"  (pid {row['worker_pid']})"
                            if row.get("worker_pid") else ""))
    return "\n".join(lines)


def render_requests(records: Sequence[Dict]) -> Optional[str]:
    reqs = [r for r in spans(records) if r.get("name") == "http.request"]
    if not reqs:
        return None
    by_status: Dict[str, int] = {}
    for r in reqs:
        key = str(r["attrs"].get("status_code", "?"))
        by_status[key] = by_status.get(key, 0) + 1
    total = sum(r.get("dur_s", 0.0) for r in reqs)
    parts = ", ".join(f"{code}: {n}" for code, n in sorted(by_status.items()))
    lines = [f"{len(reqs)} requests ({parts}); "
             f"mean latency {total / len(reqs) * 1e3:.1f}ms"]
    batches = [r for r in spans(records) if r.get("name") == "batch.execute"]
    if batches:
        sizes = [r["attrs"].get("size", 0) for r in batches]
        lines.append(f"{len(batches)} batched forwards, "
                     f"mean batch size {sum(sizes) / len(batches):.2f}")
    return "\n".join(lines)


def profile_events(records: Sequence[Dict]) -> List[Dict]:
    """``trainer.profile`` v=1 events: one GraphProfiler summary per fit."""
    return [r for r in records if r.get("kind") == "event"
            and r.get("name") == "trainer.profile"]


def render_profiles(records: Sequence[Dict]) -> Optional[str]:
    """Per-op profile tables recorded by ``Trainer.fit(profile=True)``.

    The event attrs are a ``GraphProfiler.summary()`` dict (plus the model
    name), so the rendering is the same table ``repro train --profile``
    prints — trace consumers see identical numbers.
    """
    evs = profile_events(records)
    if not evs:
        return None
    from ..autodiff import format_profile
    blocks = []
    for ev in evs:
        attrs = ev.get("attrs", {})
        blocks.append(f"model {attrs.get('model', '?')}:\n"
                      + format_profile(attrs))
    return "\n\n".join(blocks)


def render_compiled(records: Sequence[Dict]) -> Optional[str]:
    """Compiled-execution telemetry: per-fit stats plus fallback reasons."""
    fits = [r for r in records if r.get("kind") == "event"
            and r.get("name") == "trainer.compiled"]
    fallbacks = [r for r in records if r.get("kind") == "event"
                 and r.get("name") == "compile.fallback"]
    if not fits and not fallbacks:
        return None
    lines = []
    for ev in fits:
        attrs = ev.get("attrs", {})
        line = (f"{attrs.get('model', '?')}: {attrs.get('graphs', 0)} "
                f"graph(s), {attrs.get('captures', 0)} captures, "
                f"{attrs.get('validations', 0)} validations, "
                f"{attrs.get('replays', 0)} replays")
        if attrs.get("disabled"):
            line += f"  DISABLED: {attrs.get('disabled_reason')}"
        lines.append(line)
    for ev in fallbacks:
        attrs = ev.get("attrs", {})
        lines.append(f"fallback ({attrs.get('model', '?')}, "
                     f"{attrs.get('mode', '?')}): {attrs.get('reason')}")
    return "\n".join(lines)


def render_resources(records: Sequence[Dict]) -> Optional[str]:
    samples = [r for r in records if r.get("kind") == "resource"]
    if not samples:
        return None
    rss = [s["attrs"].get("rss_bytes") for s in samples
           if s["attrs"].get("rss_bytes") is not None]
    cpu = [s["attrs"].get("cpu_s") for s in samples
           if s["attrs"].get("cpu_s") is not None]
    pct = [s["attrs"].get("cpu_pct") for s in samples
           if s["attrs"].get("cpu_pct") is not None]
    parts = [f"{len(samples)} resource samples"]
    if rss:
        parts.append(f"peak RSS {max(rss) / (1 << 20):.1f} MiB")
    if cpu:
        parts.append(f"CPU {max(cpu) - min(cpu):.2f}s over the run")
    if pct:
        parts.append(f"CPU {sum(pct) / len(pct):.0f}% mean / "
                     f"{max(pct):.0f}% peak")
    return "; ".join(parts)


def render_report(records: Sequence[Dict]) -> str:
    """The full ``repro trace`` output: span tree + per-phase summaries."""
    if not records:
        return "(empty run log)"
    sections = [("span tree", render_span_tree(records)),
                ("epochs", render_epochs(records)),
                ("op profile", render_profiles(records)),
                ("compiled execution", render_compiled(records)),
                ("grid cells", render_cells(records)),
                ("serving", render_requests(records)),
                ("resources", render_resources(records))]
    blocks = []
    for title, body in sections:
        if body is not None:
            blocks.append(f"== {title} ==\n{body}")
    return "\n\n".join(blocks) if blocks else "(empty run log)"


def report_data(records: Sequence[Dict]) -> Dict:
    """One JSON-serialisable doc mirroring every rendered section.

    This is what ``repro trace --json`` prints: the same aggregates the
    human tables show (span tree, epochs, cells, serving, resources)
    plus the analysis layer (request/fit attributions, SLO statuses,
    logged alerts) in machine-readable form.
    """
    from . import analysis as _analysis          # avoid circular import
    from . import slo as _slo
    span_stats = aggregate_spans(records)
    spans_out = []
    for path in sorted(span_stats):
        entry = span_stats[path]
        spans_out.append({"path": list(path), **entry})
    requests = [r for r in spans(records) if r.get("name") == "http.request"]
    by_status: Dict[str, int] = {}
    for r in requests:
        key = str(r["attrs"].get("status_code", "?"))
        by_status[key] = by_status.get(key, 0) + 1
    samples = [r for r in records if r.get("kind") == "resource"]
    pct = [s["attrs"].get("cpu_pct") for s in samples
           if s["attrs"].get("cpu_pct") is not None]
    rss = [s["attrs"].get("rss_bytes") for s in samples
           if s["attrs"].get("rss_bytes") is not None]
    attributions = _analysis.request_attributions(records)
    return {
        "spans": spans_out,
        "epochs": epoch_rows(records),
        "grid_cells": cell_rows(records),
        "serving": {
            "requests": len(requests),
            "by_status": by_status,
            "mean_latency_s": (sum(r.get("dur_s", 0.0) for r in requests)
                               / len(requests)) if requests else None,
        },
        "resources": {
            "samples": len(samples),
            "peak_rss_bytes": max(rss) if rss else None,
            "mean_cpu_pct": (sum(pct) / len(pct)) if pct else None,
        },
        "analysis": {
            "requests": attributions,
            "summary": _analysis.summarize_attributions(attributions),
            "fits": _analysis.fit_attributions(records),
        },
        "slo": [status.data() for status in _slo.replay_trace(records)],
        "alerts": [r for r in records if r.get("kind") == "alert"],
    }
