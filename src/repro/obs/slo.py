"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLObjective` states a service-level target over the request
stream ("99.9% of requests succeed", "99% of requests finish under
250ms").  An :class:`SLOTracker` folds every observed request into
bucketed good/total rings, and evaluates the classic multi-window
burn-rate policy over them:

* **burn rate** = (bad fraction over a window) / (1 - target) — how
  fast the error budget is being spent relative to a full-budget spend
  over the SLO period (burn 1.0 = exactly on budget);
* **page** ("fast burn") when the burn exceeds ``fast_burn`` (default
  14.4x) over BOTH the 5-minute and the 1-hour window — the short
  window makes the alert fire promptly, the long window keeps one
  transient blip from paging;
* **ticket** ("slow burn") when the burn exceeds ``slow_burn`` (default
  6x) over the 6-hour window — a leak too slow to page on but fast
  enough to exhaust the budget in days.

Transitions are edge-triggered: one schema-v1 ``alert`` record per
firing/resolution is emitted through the active observer (nothing when
tracing is off), and the current state is always visible as Prometheus
gauges (``repro_slo_error_budget_remaining{slo=...}``,
``repro_slo_burn_rate{slo=...,window=...}``) on whatever registry the
tracker was attached to — the serving ``/metrics`` endpoint and the
cluster front end both re-evaluate on scrape.

The clock is injectable so tests can replay hours of traffic
synthetically; production uses ``time.time``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from . import runtime as _runtime
from .events import record as _record
from .metrics import MetricsRegistry

#: (label, seconds) of the evaluation windows, fast to slow.
FAST_WINDOWS = (("5m", 300.0), ("1h", 3600.0))
SLOW_WINDOWS = (("6h", 21600.0),)
ALL_WINDOWS = FAST_WINDOWS + SLOW_WINDOWS

#: Budget gauge name (the ISSUE-level contract; scraped by `repro top`).
BUDGET_GAUGE = "repro_slo_error_budget_remaining"
BURN_GAUGE = "repro_slo_burn_rate"


@dataclass
class SLObjective:
    """One declarative objective over the request stream."""

    name: str
    #: "availability" (non-5xx is good) or "latency" (non-5xx AND under
    #: ``threshold_s`` is good; requests without a measured latency are
    #: excluded rather than guessed).
    kind: str = "availability"
    #: Target good fraction, e.g. 0.999 → a 0.1% error budget.
    target: float = 0.999
    threshold_s: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == "latency" and not self.threshold_s:
            raise ValueError(f"latency SLO {self.name!r} needs threshold_s")

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    def is_good(self, status_code: int,
                latency_s: Optional[float]) -> Optional[bool]:
        """True/False, or ``None`` when this request doesn't count."""
        if self.kind == "availability":
            return int(status_code) < 500
        if latency_s is None:
            return None
        return int(status_code) < 500 and latency_s <= self.threshold_s


def default_objectives() -> List[SLObjective]:
    """The stock serving SLOs used when ``--slo default`` is passed."""
    return [
        SLObjective(name="availability", kind="availability", target=0.999,
                    description="non-5xx responses"),
        SLObjective(name="latency_p99_250ms", kind="latency", target=0.99,
                    threshold_s=0.25,
                    description="successful responses under 250ms"),
    ]


def load_objectives(source: str) -> List[SLObjective]:
    """Objectives from ``"default"`` or a JSON file.

    The file format is a list of objective dicts::

        [{"name": "availability", "kind": "availability", "target": 0.999},
         {"name": "latency_fast", "kind": "latency", "target": 0.99,
          "threshold_s": 0.1}]
    """
    if source == "default":
        return default_objectives()
    with open(source, encoding="utf-8") as fh:
        raw = json.load(fh)
    if not isinstance(raw, list) or not raw:
        raise ValueError(f"{source}: SLO config must be a non-empty JSON list")
    return [SLObjective(**item) for item in raw]


class _WindowRing:
    """Good/total counts in fixed-width time buckets over a horizon."""

    def __init__(self, bucket_s: float, horizon_s: float):
        self.bucket_s = float(bucket_s)
        self._buckets: deque = deque(
            maxlen=max(2, int(horizon_s / bucket_s) + 1))

    def add(self, now: float, good: int, total: int) -> None:
        key = int(now // self.bucket_s)
        if self._buckets and self._buckets[-1][0] == key:
            _, g, t = self._buckets[-1]
            self._buckets[-1] = (key, g + good, t + total)
        else:
            self._buckets.append((key, good, total))

    def counts(self, now: float, window_s: float) -> tuple:
        """(bad, total) over the trailing ``window_s`` seconds."""
        floor = int((now - window_s) // self.bucket_s)
        good = total = 0
        for key, g, t in self._buckets:
            if key > floor:
                good += g
                total += t
        return total - good, total


@dataclass
class SLOStatus:
    """One objective's evaluated state (what the report/JSON shows)."""

    objective: SLObjective
    burn_rates: Dict[str, float] = field(default_factory=dict)
    bad_fraction: Dict[str, float] = field(default_factory=dict)
    totals: Dict[str, int] = field(default_factory=dict)
    budget_remaining: float = 1.0
    severity: Optional[str] = None     # None | "page" | "ticket"

    def data(self) -> Dict:
        return {
            "slo": self.objective.name,
            "kind": self.objective.kind,
            "target": self.objective.target,
            "burn_rates": dict(self.burn_rates),
            "bad_fraction": dict(self.bad_fraction),
            "totals": dict(self.totals),
            "budget_remaining": self.budget_remaining,
            "severity": self.severity,
        }


class SLOTracker:
    """Folds request outcomes into windows; evaluates burn-rate alerts.

    ``observe()`` is hot-path cheap (a deque append per objective);
    evaluation runs at most every ``evaluate_every_s`` seconds from the
    observe path, plus on every explicit :meth:`evaluate` call (the
    ``/metrics`` scrape path), so gauges are fresh when read.
    """

    def __init__(self, objectives: Sequence[SLObjective],
                 registry: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = time.time,
                 bucket_s: float = 10.0,
                 fast_burn: float = 14.4, slow_burn: float = 6.0,
                 evaluate_every_s: float = 5.0):
        if not objectives:
            raise ValueError("SLOTracker needs at least one objective")
        self.objectives = list(objectives)
        self.registry = registry or MetricsRegistry()
        self.clock = clock
        self.fast_burn = float(fast_burn)
        self.slow_burn = float(slow_burn)
        self.evaluate_every_s = float(evaluate_every_s)
        horizon = max(seconds for _, seconds in ALL_WINDOWS)
        self._rings = {obj.name: _WindowRing(bucket_s, horizon)
                       for obj in self.objectives}
        self._severity: Dict[str, Optional[str]] = {
            obj.name: None for obj in self.objectives}
        self._last_eval = float("-inf")
        self._budget_gauge = self.registry.gauge(
            BUDGET_GAUGE,
            "Fraction of the SLO error budget left over the slow (6h) "
            "window; negative = budget blown.")
        self._burn_gauge = self.registry.gauge(
            BURN_GAUGE,
            "Error-budget burn rate per evaluation window (1.0 = "
            "spending exactly the budget).")
        self._alerts = self.registry.counter(
            "repro_slo_alerts_total",
            "SLO burn-rate alert firings, by objective and severity.")
        for obj in self.objectives:     # budget starts whole, visibly
            self._budget_gauge.set(1.0, labels={"slo": obj.name})

    # ------------------------------------------------------------------
    def observe(self, status_code: int, latency_s: Optional[float] = None,
                count: int = 1) -> None:
        """Fold one (or ``count`` identical) finished request(s) in."""
        now = self.clock()
        for obj in self.objectives:
            good = obj.is_good(status_code, latency_s)
            if good is None:
                continue
            self._rings[obj.name].add(now, count if good else 0, count)
        if now - self._last_eval >= self.evaluate_every_s:
            self.evaluate(now)

    # ------------------------------------------------------------------
    def evaluate(self, now: Optional[float] = None) -> List[SLOStatus]:
        """Re-derive burn rates, update gauges, emit alert transitions."""
        now = self.clock() if now is None else now
        self._last_eval = now
        statuses = []
        for obj in self.objectives:
            ring = self._rings[obj.name]
            status = SLOStatus(objective=obj)
            for label, seconds in ALL_WINDOWS:
                bad, total = ring.counts(now, seconds)
                frac = (bad / total) if total else 0.0
                status.bad_fraction[label] = frac
                status.totals[label] = total
                status.burn_rates[label] = frac / obj.budget
                self._burn_gauge.set(status.burn_rates[label],
                                     labels={"slo": obj.name,
                                             "window": label})
            slow_label = SLOW_WINDOWS[0][0]
            status.budget_remaining = (
                1.0 - status.bad_fraction[slow_label] / obj.budget)
            self._budget_gauge.set(status.budget_remaining,
                                   labels={"slo": obj.name})
            status.severity = self._severity_of(status)
            self._transition(obj, status)
            statuses.append(status)
        return statuses

    def _severity_of(self, status: SLOStatus) -> Optional[str]:
        if all(status.burn_rates[label] >= self.fast_burn
               and status.totals[label] > 0
               for label, _ in FAST_WINDOWS):
            return "page"
        if all(status.burn_rates[label] >= self.slow_burn
               and status.totals[label] > 0
               for label, _ in SLOW_WINDOWS):
            return "ticket"
        return None

    def _transition(self, obj: SLObjective, status: SLOStatus) -> None:
        previous = self._severity[obj.name]
        if status.severity == previous:
            return
        self._severity[obj.name] = status.severity
        if status.severity is not None:
            self._alerts.inc(labels={"slo": obj.name,
                                     "severity": status.severity})
        state = "firing" if status.severity is not None else "resolved"
        ob = _runtime.active()
        if ob is not None:
            ob.sink.emit(_record(
                "alert", f"slo.{obj.name}", {
                    "state": state,
                    "severity": status.severity or previous,
                    "burn_rates": dict(status.burn_rates),
                    "budget_remaining": status.budget_remaining,
                    "target": obj.target,
                    "kind": obj.kind,
                }))

    # ------------------------------------------------------------------
    def statuses(self) -> List[SLOStatus]:
        """Evaluate-and-return (the ``/metrics`` and report entry point)."""
        return self.evaluate()

    def data(self) -> List[Dict]:
        return [status.data() for status in self.statuses()]


# ----------------------------------------------------------------------
# Offline evaluation: replay a recorded trace through a tracker
# ----------------------------------------------------------------------
def replay_trace(records, objectives: Optional[Sequence[SLObjective]] = None,
                 registry: Optional[MetricsRegistry] = None) -> List[SLOStatus]:
    """Drive a tracker with a run log's ``http.request`` spans.

    The tracker's clock follows the record timestamps, so windows mean
    the same thing they meant live.  Returns the final statuses
    (evaluated at the last request's timestamp).
    """
    objectives = list(objectives) if objectives else default_objectives()
    requests = [r for r in records if r.get("kind") == "span_end"
                and r.get("name") == "http.request"
                and r.get("attrs", {}).get("tier") != "frontend"]
    clock_now = [0.0]
    tracker = SLOTracker(objectives, registry=registry,
                         clock=lambda: clock_now[0],
                         evaluate_every_s=float("inf"))
    last_ts = None
    for rec in sorted(requests, key=lambda r: r.get("ts", 0.0)):
        attrs = rec.get("attrs", {})
        status_code = attrs.get("status_code")
        if status_code is None:
            continue
        last_ts = float(rec.get("ts", 0.0))
        clock_now[0] = last_ts
        tracker.observe(int(status_code), rec.get("dur_s"))
    return tracker.evaluate(last_ts if last_ts is not None else 0.0)


def render_slo(records, objectives: Optional[Sequence[SLObjective]] = None
               ) -> Optional[str]:
    """The ``repro trace --slo`` section: replayed statuses + logged alerts."""
    statuses = replay_trace(records, objectives)
    alerts = [r for r in records if r.get("kind") == "alert"]
    if not alerts and all(not any(s.totals.values()) for s in statuses):
        return None
    lines = [f"{'slo':24s} {'target':>8s} {'burn 5m':>9s} {'burn 1h':>9s} "
             f"{'burn 6h':>9s} {'budget':>8s}  state"]
    for status in statuses:
        obj = status.objective
        lines.append(
            f"{obj.name:24s} {obj.target:8.3%} "
            f"{status.burn_rates['5m']:8.2f}x {status.burn_rates['1h']:8.2f}x "
            f"{status.burn_rates['6h']:8.2f}x "
            f"{status.budget_remaining:8.1%}  {status.severity or 'ok'}")
    if alerts:
        lines.append(f"{len(alerts)} alert transition(s) in the log:")
        for rec in alerts:
            attrs = rec.get("attrs", {})
            lines.append(f"  {rec.get('name')}: {attrs.get('state')} "
                         f"({attrs.get('severity')}), budget "
                         f"{attrs.get('budget_remaining', 0):.1%}")
    return "\n".join(lines)
