"""Differentiable continuous wavelet transform (CWT) and its linear inverse.

This implements the paper's spectrum expansion (Eq. 4-8): a series of length
``T`` is analysed at the ``lambda`` scales ``s_i = 2*lambda/i`` and expanded
into the temporal-frequency tensor ``X_2D = {TF_1 .. TF_lambda}``, where
``TF_i = Amp(WT(x, psi_i))``.

Because the wavelet filters are *fixed*, the transform is a fixed linear map
followed by a pointwise modulus — so we precompute two dense matrices (real
and imaginary filter banks) per ``(T, lambda, wavelet)`` and express the
whole thing as autodiff matmuls. Gradients therefore flow through the
TF-Block exactly as they do through PyTorch's conv-based CWT.

The inverse transform ``IWT`` (Eq. 9) is the linear single-integral ("delta")
reconstruction ``x(b) = sum_i w_i * C[i, b]`` with a per-scale weight vector
``w`` fit once per operator: we take a white-noise probe, compute its CWT,
rotate the coefficients by ``conj(psi(0))/|psi(0)|`` (for complex Gaussian
wavelets ``psi(0)`` is not real, which makes the naive real-part
reconstruction degenerate), and solve the least-squares problem
``min_w ||Re[rot * W(x)] w - x||``. The paper applies IWT to amplitude
tensors (where exact inversion is impossible since phase is discarded);
this calibrated linear inverse preserves scale and linearity, which is all
Eq. 9-10 and Eq. 15 require.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from ..autodiff import Tensor
from .wavelets import Wavelet, get_wavelet


def make_scales(num_scales: int) -> np.ndarray:
    """The scale set of Eq. 6: ``s_i = 2*lambda / i`` for i = 1..lambda."""
    if num_scales < 1:
        raise ValueError("num_scales must be >= 1")
    i = np.arange(1, num_scales + 1, dtype=float)
    return 2.0 * num_scales / i


class CWTOperator:
    """Precomputed CWT/IWT for a fixed series length and scale count.

    Parameters
    ----------
    seq_len:
        Length ``T`` of the analysed series.
    num_scales:
        The hyper-parameter ``lambda`` (number of spectral sub-bands).
    wavelet:
        Mother wavelet name (see :mod:`repro.spectral.wavelets`).

    Notes
    -----
    The operator exposes both a NumPy fast path (:meth:`transform_array`)
    used for data-level decomposition/visualisation, and a differentiable
    path (:meth:`transform`, :meth:`amplitude`) used inside TF-Blocks.
    """

    _registry: Dict[Tuple[int, int, str], "CWTOperator"] = {}

    def __init__(self, seq_len: int, num_scales: int, wavelet: str = "cgau1"):
        self.seq_len = seq_len
        self.num_scales = num_scales
        self.wavelet_name = wavelet
        self.wavelet: Wavelet = get_wavelet(wavelet)
        self.scales = make_scales(num_scales)
        self.frequencies = self.wavelet.central_frequency / self.scales

        # Filter bank: bank[i, b, t] = conj(psi((t - b)/s_i)) / sqrt(s_i)
        offsets = np.arange(seq_len)[None, :] - np.arange(seq_len)[:, None]
        bank = np.empty((num_scales, seq_len, seq_len), dtype=complex)
        for idx, s in enumerate(self.scales):
            bank[idx] = np.conj(self.wavelet(offsets / s)) / math.sqrt(s)
        self._bank = bank
        # Flattened matmul form: (T, lambda*T) so that x @ M -> (.., lambda*T)
        flat = bank.transpose(2, 0, 1).reshape(seq_len, num_scales * seq_len)
        self._m_real = np.ascontiguousarray(flat.real)
        self._m_imag = np.ascontiguousarray(flat.imag)

        psi0 = complex(self.wavelet(np.array([0.0]))[0])
        self._rotation = (np.conj(psi0) / abs(psi0)) if abs(psi0) > 1e-12 else 1.0
        self._iwt_weights = self._calibrate_inverse()

    # ------------------------------------------------------------------
    @classmethod
    def cached(cls, seq_len: int, num_scales: int,
               wavelet: str = "cgau1") -> "CWTOperator":
        """Shared-operator cache: filter banks are expensive to rebuild."""
        key = (seq_len, num_scales, wavelet)
        if key not in cls._registry:
            cls._registry[key] = cls(seq_len, num_scales, wavelet)
        return cls._registry[key]

    def _calibrate_inverse(self, ridge: float = 1e-2) -> np.ndarray:
        """Per-scale ridge-regression weights for the linear inverse transform.

        Adjacent scales are strongly collinear (especially at large
        ``lambda``), so a plain least-squares fit produces exploding
        alternating weights; the ridge penalty (relative to the design's
        energy) keeps the inverse well conditioned at any ``lambda``.
        """
        rng = np.random.default_rng(12345)
        probe = rng.standard_normal((8, self.seq_len))
        coeffs = (self.transform_array(probe) * self._rotation).real  # (8, lam, T)
        design = coeffs.transpose(0, 2, 1).reshape(-1, self.num_scales)
        target = probe.reshape(-1)
        gram = design.T @ design
        alpha = ridge * np.trace(gram) / self.num_scales
        weights = np.linalg.solve(
            gram + alpha * np.eye(self.num_scales), design.T @ target)
        return weights

    # ------------------------------------------------------------------
    # NumPy fast paths (data-level use)
    # ------------------------------------------------------------------
    def transform_array(self, x: np.ndarray) -> np.ndarray:
        """Complex CWT of ``x`` (..., T) -> (..., lambda, T)."""
        x = np.asarray(x, dtype=float)
        out = x @ (self._m_real + 1j * self._m_imag)
        return out.reshape(*x.shape[:-1], self.num_scales, self.seq_len)

    def amplitude_array(self, x: np.ndarray) -> np.ndarray:
        """``Amp(WT(x))`` of Eq. 7 on plain arrays."""
        return np.abs(self.transform_array(x))

    def rotated_real_array(self, x: np.ndarray) -> np.ndarray:
        """Phase-rotated real CWT coefficients — the inverse's natural input.

        ``inverse_array(rotated_real_array(x))`` approximately reconstructs
        ``x`` (tested in ``tests/test_cwt.py``).
        """
        return (self.transform_array(x) * self._rotation).real

    def inverse_array(self, coeffs: np.ndarray) -> np.ndarray:
        """Linear IWT of (..., lambda, T) coefficients -> (..., T)."""
        coeffs = np.asarray(coeffs, dtype=float)
        return np.tensordot(coeffs, self._iwt_weights, axes=([-2], [0]))

    # ------------------------------------------------------------------
    # Differentiable paths (model-level use)
    # ------------------------------------------------------------------
    def amplitude(self, x: Tensor, eps: float = 1e-8) -> Tensor:
        """Differentiable ``Amp(WT(x))``: (..., T) -> (..., lambda, T).

        The modulus is smoothed with ``eps`` to keep the gradient finite at
        zero coefficients.
        """
        real = x @ Tensor(self._m_real)
        imag = x @ Tensor(self._m_imag)
        amp = (real * real + imag * imag + eps).sqrt()
        return amp.reshape(*x.shape[:-1], self.num_scales, self.seq_len)

    def inverse(self, coeffs: Tensor) -> Tensor:
        """Differentiable IWT: contract the scale axis at position -2."""
        w = Tensor(self._iwt_weights)
        moved = coeffs.swapaxes(-2, -1)          # (..., T, lambda)
        return moved @ w                          # (..., T)
