"""Differentiable continuous wavelet transform (CWT) and its linear inverse.

This implements the paper's spectrum expansion (Eq. 4-8): a series of length
``T`` is analysed at the ``lambda`` scales ``s_i = 2*lambda/i`` and expanded
into the temporal-frequency tensor ``X_2D = {TF_1 .. TF_lambda}``, where
``TF_i = Amp(WT(x, psi_i))``.

Because the wavelet filters are *fixed*, the transform is a fixed linear map
followed by a pointwise modulus.  Each scale's filter row is a pure Toeplitz
convolution, so the map is evaluated by zero-padded FFT convolution
(:class:`repro.spectral.engine.FFTSpectralEngine`, ``O(lambda*T*log T)``)
instead of the dense ``(T, lambda*T)`` matmul (``O(lambda*T^2)``); the dense
engine survives as the exact reference (``engine='dense'``).  The
differentiable path is one fused tape node whose hand-written adjoint is
another FFT convolution with the conjugated wavelet spectra — gradients
therefore flow through the TF-Block exactly as they do through PyTorch's
conv-based CWT, at FFT cost in both directions.

The inverse transform ``IWT`` (Eq. 9) is the linear single-integral ("delta")
reconstruction ``x(b) = sum_i w_i * C[i, b]`` with a per-scale weight vector
``w`` fit once per operator: we take a white-noise probe, compute its CWT,
rotate the coefficients by ``conj(psi(0))/|psi(0)|`` (for complex Gaussian
wavelets ``psi(0)`` is not real, which makes the naive real-part
reconstruction degenerate), and solve the least-squares problem
``min_w ||Re[rot * W(x)] w - x||``. The paper applies IWT to amplitude
tensors (where exact inversion is impossible since phase is discarded);
this calibrated linear inverse preserves scale and linearity, which is all
Eq. 9-10 and Eq. 15 require.
"""

from __future__ import annotations

from collections import OrderedDict, namedtuple
from typing import Tuple

import numpy as np

from ..autodiff import Tensor, apply, register_op
from ..autodiff.tensor import as_array
from .engine import SpectralEngine, make_engine
from .wavelets import Wavelet, get_wavelet


def make_scales(num_scales: int) -> np.ndarray:
    """The scale set of Eq. 6: ``s_i = 2*lambda / i`` for i = 1..lambda."""
    if num_scales < 1:
        raise ValueError("num_scales must be >= 1")
    i = np.arange(1, num_scales + 1, dtype=float)
    return 2.0 * num_scales / i


CacheInfo = namedtuple("CacheInfo", "hits misses size maxsize bank_bytes")


class CWTOperator:
    """Precomputed CWT/IWT for a fixed series length and scale count.

    Parameters
    ----------
    seq_len:
        Length ``T`` of the analysed series.
    num_scales:
        The hyper-parameter ``lambda`` (number of spectral sub-bands).
    wavelet:
        Mother wavelet name (see :mod:`repro.spectral.wavelets`).
    engine:
        ``'fft'`` (default, ``O(lambda*T*log T)``) or ``'dense'`` (the
        reference ``O(lambda*T^2)`` matmul form).

    Notes
    -----
    The operator exposes both a NumPy fast path (:meth:`transform_array`)
    used for data-level decomposition/visualisation, and a differentiable
    path (:meth:`transform`, :meth:`amplitude`) used inside TF-Blocks.
    """

    _registry: "OrderedDict[Tuple[int, int, str, str], CWTOperator]" = OrderedDict()
    _cache_maxsize: int = 8
    _cache_hits: int = 0
    _cache_misses: int = 0

    def __init__(self, seq_len: int, num_scales: int, wavelet: str = "cgau1",
                 engine: str = "fft"):
        self.seq_len = seq_len
        self.num_scales = num_scales
        self.wavelet_name = wavelet
        self.wavelet: Wavelet = get_wavelet(wavelet)
        self.scales = make_scales(num_scales)
        self.frequencies = self.wavelet.central_frequency / self.scales
        self.engine_name = engine
        self._engine: SpectralEngine = make_engine(
            engine, seq_len, self.scales, self.wavelet)

        psi0 = complex(self.wavelet(np.array([0.0]))[0])
        self._rotation = (np.conj(psi0) / abs(psi0)) if abs(psi0) > 1e-12 else 1.0
        self._iwt_weights = self._calibrate_inverse()

    @property
    def nbytes(self) -> int:
        """Resident bytes of the engine's precomputed filter data."""
        return self._engine.nbytes

    # ------------------------------------------------------------------
    # Operator cache (LRU)
    # ------------------------------------------------------------------
    @classmethod
    def cached(cls, seq_len: int, num_scales: int, wavelet: str = "cgau1",
               engine: str = "fft") -> "CWTOperator":
        """Shared-operator LRU cache: filter spectra are expensive to rebuild.

        Bounded at :attr:`_cache_maxsize` entries (least-recently-used
        eviction) so experiment sweeps over ``(T, lambda, wavelet)`` cannot
        grow the resident filter memory without limit.
        """
        key = (seq_len, num_scales, wavelet, engine)
        registry = cls._registry
        if key in registry:
            cls._cache_hits += 1
            registry.move_to_end(key)
            return registry[key]
        cls._cache_misses += 1
        op = cls(seq_len, num_scales, wavelet, engine=engine)
        registry[key] = op
        while len(registry) > cls._cache_maxsize:
            registry.popitem(last=False)
        return op

    @classmethod
    def cache_info(cls) -> CacheInfo:
        """Hit/miss counters plus resident filter-bank bytes (like lru_cache)."""
        bank_bytes = sum(op.nbytes for op in cls._registry.values())
        return CacheInfo(hits=cls._cache_hits, misses=cls._cache_misses,
                         size=len(cls._registry), maxsize=cls._cache_maxsize,
                         bank_bytes=bank_bytes)

    @classmethod
    def clear_cache(cls) -> None:
        """Drop every cached operator and reset the hit/miss counters."""
        cls._registry.clear()
        cls._cache_hits = 0
        cls._cache_misses = 0

    @classmethod
    def set_cache_limit(cls, maxsize: int) -> None:
        """Resize the LRU cap, evicting the oldest operators if shrinking."""
        if maxsize < 1:
            raise ValueError("cache limit must be >= 1")
        cls._cache_maxsize = int(maxsize)
        while len(cls._registry) > cls._cache_maxsize:
            cls._registry.popitem(last=False)

    def _calibrate_inverse(self, ridge: float = 1e-2) -> np.ndarray:
        """Per-scale ridge-regression weights for the linear inverse transform.

        Adjacent scales are strongly collinear (especially at large
        ``lambda``), so a plain least-squares fit produces exploding
        alternating weights; the ridge penalty (relative to the design's
        energy) keeps the inverse well conditioned at any ``lambda``.
        """
        rng = np.random.default_rng(12345)
        probe = rng.standard_normal((8, self.seq_len))
        coeffs = (self.transform_array(probe) * self._rotation).real  # (8, lam, T)
        design = coeffs.transpose(0, 2, 1).reshape(-1, self.num_scales)
        target = probe.reshape(-1)
        gram = design.T @ design
        alpha = ridge * np.trace(gram) / self.num_scales
        weights = np.linalg.solve(
            gram + alpha * np.eye(self.num_scales), design.T @ target)
        return weights

    # ------------------------------------------------------------------
    # NumPy fast paths (data-level use)
    # ------------------------------------------------------------------
    def transform_array(self, x: np.ndarray) -> np.ndarray:
        """Complex CWT of ``x`` (..., T) -> (..., lambda, T)."""
        return self._engine.transform(x)

    def amplitude_array(self, x: np.ndarray) -> np.ndarray:
        """``Amp(WT(x))`` of Eq. 7 on plain arrays (fused single pass)."""
        return self._engine.amplitude(x)

    def rotated_real_array(self, x: np.ndarray) -> np.ndarray:
        """Phase-rotated real CWT coefficients — the inverse's natural input.

        ``inverse_array(rotated_real_array(x))`` approximately reconstructs
        ``x`` (tested in ``tests/test_spectral_cwt.py``).
        """
        return (self._engine.transform(x) * self._rotation).real

    def inverse_array(self, coeffs: np.ndarray) -> np.ndarray:
        """Linear IWT of (..., lambda, T) coefficients -> (..., T)."""
        coeffs = np.asarray(coeffs)
        if coeffs.dtype not in (np.float32, np.float64):
            coeffs = coeffs.astype(np.float64)
        weights = self._iwt_weights.astype(coeffs.dtype, copy=False)
        return np.tensordot(coeffs, weights, axes=([-2], [0]))

    # ------------------------------------------------------------------
    # Differentiable paths (model-level use)
    # ------------------------------------------------------------------
    def amplitude(self, x: Tensor, eps: float = 1e-8) -> Tensor:
        """Differentiable ``Amp(WT(x))``: (..., T) -> (..., lambda, T).

        One fused tape node (registered op ``cwt_amplitude``): the forward
        is a single FFT convolution plus the smoothed modulus, and the
        hand-written backward pulls the cotangent through the modulus
        (``d|C| = Re(conj(C/|C|) dC)``) and the transform's adjoint — no
        dense matmuls on the tape in either direction.  The modulus is
        smoothed with ``eps`` to keep the gradient finite at zero
        coefficients.
        """
        return apply("cwt_amplitude", x, engine=self._engine, eps=eps)

    def inverse(self, coeffs: Tensor) -> Tensor:
        """Differentiable IWT (registered op ``iwt``): contract the scale
        axis at position -2 with the calibrated per-scale weights."""
        return apply("iwt", coeffs, weights=self._iwt_weights)


@register_op("cwt_amplitude")
class _CWTAmplitude:
    @staticmethod
    def forward(ctx, x, *, engine, eps):
        coeffs = engine.transform(x.data)              # complex (..., lam, T)
        amp = np.sqrt(coeffs.real ** 2 + coeffs.imag ** 2 + eps)
        ctx.save(engine, coeffs, amp)
        return amp

    @staticmethod
    def backward(node, grad, sink):
        engine, coeffs, amp = node.saved
        # Cotangent of the complex coefficients: grad * C / amp, then
        # pulled back through the linear transform by its adjoint.
        sink(0, engine.adjoint((grad / amp) * coeffs))

    @staticmethod
    def sample(rng):
        op = CWTOperator(8, 3)
        x = Tensor(rng.standard_normal((2, 8)), requires_grad=True)
        return (lambda x: op.amplitude(x)), [x]


@register_op("iwt")
class _IWT:
    @staticmethod
    def forward(ctx, coeffs, *, weights):
        # as_array mirrors Tensor() coercion so the weight dtype (and hence
        # the contraction's bits) match the pre-IR tape exactly.
        w = as_array(weights.astype(coeffs.data.dtype, copy=False))
        ctx.save(w)
        return coeffs.data.swapaxes(-2, -1) @ w        # (..., T)

    @staticmethod
    def backward(node, grad, sink):
        (w,) = node.saved
        sink(0, (grad[..., None] * w).swapaxes(-2, -1))

    @staticmethod
    def sample(rng):
        op = CWTOperator(8, 3)
        coeffs = Tensor(rng.standard_normal((2, 3, 8)), requires_grad=True)
        return (lambda c: op.inverse(c)), [coeffs]
