"""Spectral engines: the linear maps behind the CWT, dense and FFT-based.

The CWT of Eq. 7 at scale ``s_i`` is a Toeplitz convolution::

    C[i, b] = sum_t x[t] * h_i[t - b],   h_i[d] = conj(psi(d / s_i)) / sqrt(s_i)

The seed implementation materialised ``h_i[t - b]`` as a dense
``(T, lambda * T)`` matrix and ran one big matmul — ``O(lambda * T^2)`` work
and ``O(lambda * T^2)`` resident memory per operator.  Because each scale is
a *convolution*, the whole transform diagonalises under the DFT: with
``g_i[m] = h_i[-m]`` and any circular length ``N >= 2T - 1``,

    C[i] = IFFT( FFT(pad_N(x)) * G_i )[:T],    G_i = FFT(wrap_N(g_i))

which is ``O(lambda * T * log T)`` work and stores only the ``(lambda, N)``
wavelet spectra ``G_i``.

The adjoint (needed for backprop through ``Amp(WT(x))``) of an FFT
convolution is another FFT convolution with the conjugated spectra.  For the
stacked map ``L x = {C_i}`` acting on a *real* signal, the cotangent
``gbar = gbar_real + 1j * gbar_imag`` pulls back as::

    grad_x = Re( IFFT( sum_i conj(G_i) * FFT(pad_N(gbar_i)) )[:T] )

— the scale sum is taken in the frequency domain, so the backward pass costs
one extra FFT + one IFFT regardless of ``lambda``.

Both engines expose the same three methods (``transform``, ``adjoint``,
``nbytes``) so :class:`repro.spectral.cwt.CWTOperator` can swap them freely;
the dense engine is retained as the exact reference the FFT path is tested
against (``tests/test_spectral_engine.py``).

Precision: master filter data is kept in ``complex128``; when the input is
``float32`` the engine computes in ``complex64`` using lazily cached
single-precision spectra (``scipy.fft`` preserves single precision, unlike
``numpy.fft`` which always promotes to ``complex128``).
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

try:  # scipy.fft keeps complex64 single-precision and has next_fast_len
    from scipy import fft as _fft

    def _next_fast_len(n: int) -> int:
        return _fft.next_fast_len(n)

except ImportError:  # pragma: no cover - scipy is a declared dependency
    _fft = np.fft

    def _next_fast_len(n: int) -> int:
        return int(2 ** math.ceil(math.log2(max(n, 1))))

from .wavelets import Wavelet


def _working_dtypes(x: np.ndarray):
    """Map an input array to its (real, complex) working dtypes."""
    if x.dtype == np.float32:
        return np.float32, np.complex64
    return np.float64, np.complex128


class SpectralEngine:
    """Common state of a CWT linear map for fixed ``(T, scales, wavelet)``."""

    name: str = "base"

    def __init__(self, seq_len: int, scales: np.ndarray, wavelet: Wavelet):
        self.seq_len = int(seq_len)
        self.scales = np.asarray(scales, dtype=float)
        self.num_scales = len(self.scales)
        self.wavelet = wavelet

    # -- subclass API ---------------------------------------------------
    def transform(self, x: np.ndarray) -> np.ndarray:
        """Complex CWT coefficients of ``x`` (..., T) -> (..., lambda, T)."""
        raise NotImplementedError

    def amplitude(self, x: np.ndarray) -> np.ndarray:
        """``|transform(x)|`` — subclasses may fuse this into one pass."""
        return np.abs(self.transform(x))

    def adjoint(self, grad_coeffs: np.ndarray) -> np.ndarray:
        """Pull a complex cotangent (..., lambda, T) back to a real (..., T).

        This is ``Re(L^H gbar)`` for the transform's linear map ``L`` — the
        exact reverse-mode gradient of ``transform`` w.r.t. a real input.
        """
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Resident bytes of the precomputed filter data."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------
    def _prepare_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        if x.shape[-1] != self.seq_len:
            raise ValueError(
                f"expected last axis of length {self.seq_len}, got {x.shape}")
        return x

    def _kernel(self, scale: float) -> np.ndarray:
        """``h[d] = conj(psi(d / s)) / sqrt(s)`` on offsets d in [-(T-1), T-1]."""
        offsets = np.arange(-(self.seq_len - 1), self.seq_len)
        return np.conj(self.wavelet(offsets / scale)) / math.sqrt(scale)


class DenseSpectralEngine(SpectralEngine):
    """Reference engine: the CWT as one dense ``(T, lambda*T)`` matmul.

    This is byte-for-byte the computation the seed ran: the real/imaginary
    filter banks are held as two float matrices and the complex matmul
    operand is assembled per call.  ``O(lambda * T^2)`` per series — kept
    for exact-equivalence testing and as the benchmark baseline the FFT
    path is measured against.
    """

    name = "dense"

    def __init__(self, seq_len: int, scales: np.ndarray, wavelet: Wavelet):
        super().__init__(seq_len, scales, wavelet)
        # bank[i, b, t] = conj(psi((t - b)/s_i)) / sqrt(s_i)
        offsets = np.arange(seq_len)[None, :] - np.arange(seq_len)[:, None]
        bank = np.empty((self.num_scales, seq_len, seq_len), dtype=complex)
        for idx, s in enumerate(self.scales):
            bank[idx] = np.conj(self.wavelet(offsets / s)) / math.sqrt(s)
        # Flattened matmul form: (T, lambda*T) so that x @ M -> (.., lambda*T)
        flat = bank.transpose(2, 0, 1).reshape(seq_len, self.num_scales * seq_len)
        self._m_real = np.ascontiguousarray(flat.real)
        self._m_imag = np.ascontiguousarray(flat.imag)
        self._m_f32: tuple | None = None

    def _m_parts(self, rdtype):
        if rdtype == np.float32:
            if self._m_f32 is None:
                self._m_f32 = (self._m_real.astype(np.float32),
                               self._m_imag.astype(np.float32))
            return self._m_f32
        return self._m_real, self._m_imag

    def transform(self, x: np.ndarray) -> np.ndarray:
        x = self._prepare_input(x)
        rdtype, _ = _working_dtypes(x)
        mr, mi = self._m_parts(rdtype)
        out = x @ (mr + 1j * mi)
        return out.reshape(*x.shape[:-1], self.num_scales, self.seq_len)

    def adjoint(self, grad_coeffs: np.ndarray) -> np.ndarray:
        g = np.asarray(grad_coeffs)
        rdtype = np.float32 if g.dtype == np.complex64 else np.float64
        flat = g.reshape(*g.shape[:-2], self.num_scales * self.seq_len)
        mr, mi = self._m_parts(rdtype)
        # grad_x = Re(gbar @ conj(M)^T) for C = x @ M, split into two real
        # matmuls so no complex operand needs assembling.
        return flat.real @ mr.T + flat.imag @ mi.T

    @property
    def nbytes(self) -> int:
        total = self._m_real.nbytes + self._m_imag.nbytes
        if self._m_f32 is not None:
            total += sum(m.nbytes for m in self._m_f32)
        return total


class FFTSpectralEngine(SpectralEngine):
    """Zero-padded FFT convolution engine: ``O(lambda * T * log T)``.

    Stores only the ``(lambda, N)`` spectra of the wrapped, time-reversed
    wavelet kernels, ``N = next_fast_len(2T - 1)``.
    """

    name = "fft"

    def __init__(self, seq_len: int, scales: np.ndarray, wavelet: Wavelet):
        super().__init__(seq_len, scales, wavelet)
        self.fft_len = _next_fast_len(2 * seq_len - 1)
        n = self.fft_len
        # Circular kernel for scale i: wrap[m mod N] = g_i[m] = h_i[-m], so
        # (x (*) wrap)[b] = sum_t x[t] h_i[t - b] exactly for b in [0, T)
        # because N >= 2T - 1 rules out wrap-around aliasing.
        wrapped = np.zeros((self.num_scales, n), dtype=complex)
        for idx, s in enumerate(self.scales):
            h = self._kernel(s)                       # offsets -(T-1)..(T-1)
            g = h[::-1]                               # g[m] = h[-m]
            wrapped[idx, :seq_len] = g[seq_len - 1:]          # m = 0..T-1
            wrapped[idx, n - (seq_len - 1):] = g[:seq_len - 1]  # m = -(T-1)..-1
        self._spectra = np.fft.fft(wrapped, axis=-1)   # (lambda, N) complex128
        self._spectra_f32: np.ndarray | None = None
        self._conj_spectra: np.ndarray | None = None
        # One reusable (..., lambda, N) product buffer per (shape, dtype):
        # allocating ~10 MB fresh per call costs more in page faults than
        # the FFTs themselves at paper scale, so the hot loop overwrites.
        self._scratch: Dict[tuple, np.ndarray] = {}

    def _g(self, cdtype) -> np.ndarray:
        if cdtype == np.complex64:
            if self._spectra_f32 is None:
                self._spectra_f32 = self._spectra.astype(np.complex64)
            return self._spectra_f32
        return self._spectra

    def _scratch_for(self, shape: tuple, cdtype) -> np.ndarray:
        key = (shape, np.dtype(cdtype).char)
        buf = self._scratch.get(key)
        if buf is None:
            if len(self._scratch) >= 4:      # bound churn across shapes
                self._scratch.clear()
            buf = self._scratch[key] = np.empty(shape, dtype=cdtype)
        return buf

    def _convolve(self, x: np.ndarray) -> np.ndarray:
        """Shared fwd pipeline -> full circular coefficients (..., lam, N).

        The returned array is engine-owned scratch: callers must reduce or
        copy it before the next engine call.
        """
        x = self._prepare_input(x)
        _, cdtype = _working_dtypes(x)
        spectra = self._g(cdtype)
        spec_x = _fft.fft(x.astype(cdtype, copy=False), n=self.fft_len, axis=-1)
        prod = self._scratch_for(
            x.shape[:-1] + (self.num_scales, self.fft_len), cdtype)
        np.multiply(spec_x[..., None, :], spectra, out=prod)
        # One monolithic batched IFFT: pocketfft amortises plan startup
        # across the whole (batch * lambda) batch, and overwrite_x reuses
        # the product buffer instead of allocating another ~10 MB.
        return _fft.ifft(prod, axis=-1, overwrite_x=True)

    def transform(self, x: np.ndarray) -> np.ndarray:
        coeffs = self._convolve(x)[..., : self.seq_len]
        return np.ascontiguousarray(coeffs)      # detach from scratch

    def amplitude(self, x: np.ndarray) -> np.ndarray:
        # Fused: |C| is written straight out of the scratch buffer without
        # materialising a second (..., lambda, T) complex array.
        coeffs = self._convolve(x)
        rdtype, _ = _working_dtypes(np.asarray(x))
        out = np.empty(coeffs.shape[:-1] + (self.seq_len,), dtype=rdtype)
        return np.abs(coeffs[..., : self.seq_len], out=out)

    def adjoint(self, grad_coeffs: np.ndarray) -> np.ndarray:
        g = np.asarray(grad_coeffs)
        cdtype = np.complex64 if g.dtype == np.complex64 else np.complex128
        rdtype = np.float32 if cdtype == np.complex64 else np.float64
        if cdtype == np.complex64:
            conj = np.conj(self._g(cdtype))
        else:
            if self._conj_spectra is None:
                self._conj_spectra = np.conj(self._spectra)
            conj = self._conj_spectra
        spec_g = _fft.fft(g.astype(cdtype, copy=False), n=self.fft_len, axis=-1)
        prod = self._scratch_for(spec_g.shape, cdtype)
        np.multiply(spec_g, conj, out=prod)
        # Sum over scales in the frequency domain: one IFFT total, not lambda.
        pooled = prod.sum(axis=-2)
        back = _fft.ifft(pooled, axis=-1, overwrite_x=True)[..., : self.seq_len]
        return np.ascontiguousarray(back.real, dtype=rdtype)

    @property
    def nbytes(self) -> int:
        # Filter data only — workspace scratch is transient and excluded so
        # the dense/FFT bank-size comparison stays apples-to-apples.
        total = self._spectra.nbytes
        for extra in (self._spectra_f32, self._conj_spectra):
            if extra is not None:
                total += extra.nbytes
        return total


_ENGINES: Dict[str, type] = {
    "dense": DenseSpectralEngine,
    "fft": FFTSpectralEngine,
}


def make_engine(name: str, seq_len: int, scales: np.ndarray,
                wavelet: Wavelet) -> SpectralEngine:
    """Build a spectral engine by name (``'fft'`` or ``'dense'``)."""
    try:
        cls = _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown spectral engine {name!r}; choose from {sorted(_ENGINES)}"
        ) from None
    return cls(seq_len, scales, wavelet)
