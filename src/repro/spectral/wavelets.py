"""Wavelet generating functions.

The paper's S-GD layer uses the Complex Gaussian wavelet (Eq. 3):

    psi(t) = C_p * e^{-it} * e^{-t^2}

and the TF-Block's multi-branch structure uses "different wavelet generating
functions". We provide the complex Gaussian family (derivative orders 1..8,
matching pywt's ``cgauN``) plus the complex Morlet, which together supply the
``m`` mother wavelets of Eq. 13.

Each wavelet knows its *central frequency* ``F_c`` (cycles per unit time at
scale 1), estimated from the FFT peak of the sampled waveform — the same
method ``pywt.central_frequency`` uses. The scale set of Eq. 6 then maps
scale ``s_i = 2*lambda/i`` to analysed frequency ``F_i = F_c / s_i``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

# Support of the sampled mother wavelet: the Gaussian envelope e^{-t^2}
# is below 1e-7 outside |t| > 4, so [-5, 5] loses nothing.
SUPPORT = 5.0


def _complex_gaussian(order: int) -> Callable[[np.ndarray], np.ndarray]:
    """Return psi(t) = C_p * d^p/dt^p [ e^{-it} e^{-t^2} ], unit energy.

    Derivatives are computed symbolically via the recurrence on polynomial
    coefficients: if f_p(t) = P_p(t) e^{-it} e^{-t^2}, then
    P_{p+1}(t) = P_p'(t) - (i + 2t) P_p(t).
    """
    # Polynomial coefficients in t (low order first), complex.
    poly = np.array([1.0 + 0j])
    for _ in range(order):
        deriv = poly[1:] * np.arange(1, len(poly))
        term_i = -1j * poly
        term_t = -2.0 * np.concatenate([[0.0], poly])
        n = max(len(deriv), len(term_i), len(term_t))
        new = np.zeros(n, dtype=complex)
        new[:len(deriv)] += deriv
        new[:len(term_i)] += term_i
        new[:len(term_t)] += term_t
        poly = new

    def psi(t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        p = np.zeros_like(t, dtype=complex)
        for k, c in enumerate(poly):
            p = p + c * t ** k
        return p * np.exp(-1j * t) * np.exp(-t ** 2)

    return psi


def _morlet(omega0: float = 5.0) -> Callable[[np.ndarray], np.ndarray]:
    """Complex Morlet wavelet e^{i w0 t} e^{-t^2/2} (admissible for w0 >= 5)."""

    def psi(t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return np.exp(1j * omega0 * t) * np.exp(-0.5 * t ** 2)

    return psi


@dataclass
class Wavelet:
    """A sampled, unit-energy mother wavelet with a known central frequency."""

    name: str
    _fn: Callable[[np.ndarray], np.ndarray]
    resolution: int = 1024
    support: float = SUPPORT
    central_frequency: float = field(init=False)
    _grid: np.ndarray = field(init=False, repr=False)
    _values: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        self._grid = np.linspace(-self.support, self.support, self.resolution)
        raw = self._fn(self._grid)
        dt = self._grid[1] - self._grid[0]
        energy = np.sum(np.abs(raw) ** 2) * dt
        self._values = raw / math.sqrt(energy)       # the C_p normalisation
        self.central_frequency = self._estimate_central_frequency()

    def _estimate_central_frequency(self) -> float:
        """FFT-peak frequency of the sampled waveform, in cycles/unit-time."""
        n = self.resolution
        dt = 2.0 * self.support / (n - 1)
        spectrum = np.abs(np.fft.fft(self._values))
        freqs = np.fft.fftfreq(n, d=dt)
        # Exclude the DC bin; take the dominant magnitude.
        idx = int(np.argmax(spectrum[1:])) + 1
        return abs(float(freqs[idx]))

    def __call__(self, t: np.ndarray) -> np.ndarray:
        """Evaluate the (unit-energy) wavelet by linear interpolation."""
        t = np.asarray(t, dtype=float)
        real = np.interp(t, self._grid, self._values.real, left=0.0, right=0.0)
        imag = np.interp(t, self._grid, self._values.imag, left=0.0, right=0.0)
        return real + 1j * imag

    def sample(self, scale: float, length: int) -> np.ndarray:
        """Sample psi((t)/scale)/sqrt(scale) on integer offsets centred at 0.

        Returns a complex filter of ``length`` taps — the discrete wavelet
        psi_i of Eq. 7, "uniformly sampled from psi with frequency F_c".
        """
        offsets = np.arange(length) - (length - 1) / 2.0
        return self(offsets / scale) / math.sqrt(scale)


_FAMILIES: Dict[str, Callable[[], Callable[[np.ndarray], np.ndarray]]] = {
    **{f"cgau{p}": (lambda p=p: _complex_gaussian(p)) for p in range(1, 9)},
    "morlet": _morlet,
}

_cache: Dict[str, Wavelet] = {}


def get_wavelet(name: str) -> Wavelet:
    """Fetch (and cache) a mother wavelet by name: ``cgau1..cgau8``, ``morlet``."""
    if name not in _FAMILIES:
        raise KeyError(f"unknown wavelet {name!r}; choose from {sorted(_FAMILIES)}")
    if name not in _cache:
        _cache[name] = Wavelet(name, _FAMILIES[name]())
    return _cache[name]


def default_branch_wavelets(m: int) -> Tuple[str, ...]:
    """The mother wavelets used by the TF-Block's ``m`` branches.

    Branch 1 is the paper's complex Gaussian; further branches add higher
    derivative orders and the Morlet for spectral diversity.
    """
    order = ("cgau1", "cgau2", "morlet", "cgau3", "cgau4", "cgau5")
    if m > len(order):
        raise ValueError(f"at most {len(order)} branches supported, got {m}")
    return order[:m]
