"""Spectral substrate: wavelets, CWT/IWT operators, FFT period detection."""

from .wavelets import Wavelet, default_branch_wavelets, get_wavelet
from .cwt import CWTOperator, make_scales
from .periods import detect_periods, dominant_period

__all__ = [
    "Wavelet", "default_branch_wavelets", "get_wavelet",
    "CWTOperator", "make_scales", "detect_periods", "dominant_period",
]
