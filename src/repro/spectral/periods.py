"""FFT-based multi-periodicity detection (Eq. 2).

Finds the top-k frequencies with the largest FFT amplitude and converts
them to period lengths ``p_i = ceil(T / f_i)`` — the same procedure as
TimesNet's ``FFT_for_Period``, which the paper adopts for its
multi-periodicity patterns (Sec. III-B2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def detect_periods(x: np.ndarray, k: int = 1,
                   min_period: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k latent periods of a batch of series.

    Parameters
    ----------
    x:
        Array shaped (T,), (T, C) or (B, T, C); amplitude spectra are
        averaged over batch and channels as in the reference protocol.
    k:
        Number of periodic patterns (the hyper-parameter ``k`` of Eq. 2).
    min_period:
        Lower bound on returned period lengths (frequencies above T/min_period
        are noise at these resolutions).

    Returns
    -------
    (periods, weights):
        ``periods`` — int array of ``k`` period lengths, sorted by spectral
        energy (strongest first); ``weights`` — the corresponding mean
        amplitudes, usable for amplitude-weighted aggregation.
    """
    amplitude, t = _masked_amplitude(x, min_period)
    top = _topk(amplitude, k)
    if len(top) == 0:                                # flat/degenerate input
        return np.array([t], dtype=int), np.array([1.0])

    periods = np.ceil(t / top).astype(int)
    periods = np.clip(periods, min_period, t)
    return periods, amplitude[top]


def _masked_amplitude(x: np.ndarray, min_period: int) -> Tuple[np.ndarray, int]:
    """Batch/channel-mean FFT amplitude with DC and sub-``min_period`` masked."""
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    if x.ndim == 2:
        x = x[None]
    if x.ndim != 3:
        raise ValueError(f"expected (B, T, C)-shaped input, got {x.shape}")

    t = x.shape[1]
    spectrum = np.abs(np.fft.rfft(x, axis=1))        # (B, T//2+1, C)
    amplitude = spectrum.mean(axis=(0, 2))           # (T//2+1,)
    amplitude[0] = 0.0                               # drop DC (trend already removed)

    # Frequencies whose implied period would be shorter than min_period are
    # zeroed out rather than clipped, so ties cannot alias to one period.
    freqs = np.arange(len(amplitude))
    with np.errstate(divide="ignore"):
        implied = np.where(freqs > 0, np.ceil(t / np.maximum(freqs, 1)), np.inf)
    amplitude[(implied < min_period)] = 0.0
    return amplitude, t


def _topk(amplitude: np.ndarray, k: int) -> np.ndarray:
    k = min(k, max(1, len(amplitude) - 1))
    top = np.argsort(-amplitude)[:k]
    return top[amplitude[top] > 0.0]


def topk_frequencies(x: np.ndarray, k: int = 1,
                     min_period: int = 2) -> np.ndarray:
    """Ordered top-k FFT frequency *indices* (strongest first).

    This is the quantity micro-batching must group on: any batch whose
    windows share the same ordered frequency picks provably yields those
    same picks from the batch-averaged spectrum (each chosen frequency's
    amplitude dominates every competitor's pointwise across the group, so
    the dominance survives averaging).  Period *values* are not a safe key —
    distinct frequencies can alias to the same ``ceil(T/f)`` period.
    Returns an empty array for flat/degenerate input.
    """
    amplitude, _ = _masked_amplitude(x, min_period)
    return _topk(amplitude, k)


def dominant_period(x: np.ndarray, min_period: int = 2) -> int:
    """The single strongest latent period ``T_f`` used by the S-GD layer."""
    periods, _ = detect_periods(x, k=1, min_period=min_period)
    return int(periods[0])
