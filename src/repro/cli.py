"""Command-line interface: train / evaluate / decompose without writing code.

The ``--task`` choices, the per-task inference subcommands (``forecast``,
``impute``, ``detect``, ``classify``), and ``serve --task`` are all derived
from the :mod:`repro.tasks.registry` — adding a task there adds it here.

Examples::

    python -m repro list
    python -m repro train --model TS3Net --dataset ETTh1 --epochs 3 \
        --save ts3net_etth1.npz
    python -m repro train --model DLinear --dataset Weather --task imputation
    python -m repro train --model TS3Net --task classification
    python -m repro forecast --checkpoint ts3net_etth1.npz --dataset ETTh1
    python -m repro serve --checkpoint ts3net_etth1.npz --port 8321
    python -m repro decompose --dataset ETTh2 --window 192

The paper's tables run through the experiment-grid engine (parallel
workers + persistent result cache)::

    python -m repro table4 --scale tiny --workers 4 --cache-dir .repro_cache
    python -m repro table8 --datasets ETTh1 --workers 2
    python -m repro sensitivity --knob num_blocks --scale tiny
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Optional

from .autodiff import format_profile
from .baselines.registry import ABLATION_NAMES, MODEL_NAMES, TSD_NAMES
from .data.specs import FORECAST_DATASETS
from .data.dataset import load_dataset
from .nn import (
    load_checkpoint, peek_metadata, save_checkpoint,
    validate_checkpoint_metadata,
)
from .obs import report as obs_report
from .obs import runtime as obs_runtime
from .tasks import (
    TrainConfig, get_task, rebuild_from_metadata, run_task, task_names,
    task_specs,
)
from .utils import set_seed


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="ETTh1",
                        choices=list(FORECAST_DATASETS))
    parser.add_argument("--seq-len", type=int, default=48)
    parser.add_argument("--pred-len", type=int, default=24)
    parser.add_argument("--n-steps", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)


def cmd_list(_args) -> int:
    print("models:    " + ", ".join(MODEL_NAMES))
    print("ablations: " + ", ".join(ABLATION_NAMES + TSD_NAMES))
    print("datasets:  " + ", ".join(FORECAST_DATASETS))
    print("tasks:     " + ", ".join(task_names()))
    return 0


def cmd_train(args) -> int:
    spec = get_task(args.task)
    set_seed(args.seed)
    config = spec.make_config(args.seq_len, getattr(args, spec.setting_arg),
                              batch_size=args.batch_size,
                              max_train_batches=args.max_batches,
                              max_eval_batches=args.max_batches,
                              seed=args.seed)
    if spec.needs_split:
        data = load_dataset(args.dataset, n_steps=args.n_steps,
                            seed=args.seed)
    else:
        data = spec.load_data(args.dataset, args.n_steps, args.seed, config)
    c_in = spec.channels(data)
    model = spec.build(args.model, config, c_in=c_in, preset=args.preset)
    print(f"{args.model} on {args.dataset} ({spec.name}): "
          f"{model.num_parameters():,} parameters")

    cfg = TrainConfig(epochs=args.epochs, lr=args.lr, verbose=True,
                      profile=args.profile, compiled=args.compiled,
                      compile_workers=args.compile_workers)
    result = run_task(spec, model, data, config, cfg)
    print(f"{spec.format_result(result)} "
          f"({result.epochs_run} epochs, {result.seconds:.0f}s)")

    if args.profile and result.profile is not None:
        print()
        print(model.parameter_table())
        print()
        print(format_profile(result.profile))

    if args.save:
        save_checkpoint(model, args.save, metadata={
            "model": args.model, "dataset": args.dataset, "task": spec.name,
            "seq_len": args.seq_len, "pred_len": spec.out_len(config),
            "c_in": c_in, "preset": args.preset,
            **spec.checkpoint_extra(model, config),
            **result.metrics,
        })
        print(f"checkpoint written to {args.save}")
    return 0


def cmd_infer(spec, args) -> int:
    """Offline inference from a checkpoint, for any task in the registry.

    The same validation the serving ModelRegistry applies: reject bare
    archives and checkpoints trained for a different task (an imputation
    model re-built here would plot garbage as a "forecast").
    """
    try:
        meta = validate_checkpoint_metadata(
            peek_metadata(args.checkpoint), expect_task=spec.name,
            source=args.checkpoint)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    set_seed(args.seed)
    model = rebuild_from_metadata(meta)
    load_checkpoint(model, args.checkpoint)
    model.eval()
    print(spec.run_infer(args, meta, model))
    return 0


TABLE_COMMANDS = ("table2", "table4", "table5", "table6", "table7",
                  "table8", "table9", "sensitivity")


def _extract_trace_flag(rest) -> tuple:
    """Split ``--trace PATH`` / ``--trace=PATH`` out of a raw argv list."""
    out, trace_path = [], None
    it = iter(rest)
    for arg in it:
        if arg == "--trace":
            trace_path = next(it, None)
            if trace_path is None:
                raise SystemExit("error: --trace needs a PATH argument")
        elif arg.startswith("--trace="):
            trace_path = arg.split("=", 1)[1]
        else:
            out.append(arg)
    return out, trace_path


def cmd_table(command: str, rest) -> int:
    """Forward a ``tableN``/``sensitivity`` subcommand to its module CLI.

    The experiment modules own their argument parsing (``--scale``,
    ``--workers``, ``--cache-dir``, per-table subset flags, ...); the top
    level routes the remaining argv through, after peeling off the shared
    ``--trace PATH`` flag (grid runs emit one ``grid.cell`` span per cell).
    """
    from .experiments import sensitivity as sensitivity_mod
    from .experiments import table2, table4, table5, table6, table7, table8, table9
    modules = {"table2": table2, "table4": table4, "table5": table5,
               "table6": table6, "table7": table7, "table8": table8,
               "table9": table9, "sensitivity": sensitivity_mod}
    rest, trace_path = _extract_trace_flag(rest)
    if not trace_path:
        modules[command].main(list(rest))
        return 0
    obs_runtime.configure(path=trace_path, resource_interval_s=0.5)
    try:
        modules[command].main(list(rest))
    finally:
        obs_runtime.shutdown()
    return 0


def cmd_serve(args) -> int:
    from .serving import ModelRegistry, ServingConfig, build_server, run_server

    names = list(args.name or [])
    if names and len(names) != len(args.checkpoint):
        print(f"error: got {len(names)} --name for "
              f"{len(args.checkpoint)} --checkpoint", file=sys.stderr)
        return 1

    serving = ServingConfig(
        host=args.host, port=args.port, max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms, queue_size=args.queue_size,
        default_timeout_ms=args.timeout_ms, slo=args.slo)

    if args.workers > 1:
        return _serve_cluster(args, names, serving)

    registry = ModelRegistry(expect_task=args.task, compiled=args.compiled)
    for i, path in enumerate(args.checkpoint):
        name = names[i] if names else peek_metadata(path).get("model", path)
        try:
            entry = registry.load(name, path)
        except (ValueError, KeyError, OSError) as err:
            print(f"error loading {path}: {err}", file=sys.stderr)
            return 1
        print(f"loaded {name!r} from {path} "
              f"({entry.model.num_parameters():,} parameters)")

    server = build_server(serving, registry)
    return run_server(server)


def _serve_cluster(args, names, serving) -> int:
    from .serving.cluster import (
        ClusterConfig, WorkerStartupError, build_cluster, run_cluster,
    )

    checkpoints = {}
    for i, path in enumerate(args.checkpoint):
        name = names[i] if names else peek_metadata(path).get("model", path)
        checkpoints[name] = path
    config = ClusterConfig(
        workers=args.workers, host=args.host, port=args.port,
        spool_dir=args.spool_dir, spread=args.spread, serving=serving,
        compiled=args.compiled, expect_task=args.task,
        trace_path=getattr(args, "trace", None), slo=args.slo)
    try:
        server = build_cluster(config, checkpoints)
    except (ValueError, KeyError, OSError, WorkerStartupError) as err:
        print(f"error starting cluster: {err}", file=sys.stderr)
        return 1
    return run_cluster(server)


def cmd_trace(args) -> int:
    """Aggregate a JSONL run trace into human-readable (or JSON) reports.

    With no section flag: the classic full report.  ``--analyze``,
    ``--flamegraph``, and ``--slo`` select the analysis sections (and
    load only span/event kinds, so footer-indexed rotated logs skip
    segments holding nothing relevant); ``--json`` prints one document
    mirroring every rendered section.
    """
    from .obs import analysis as obs_analysis
    from .obs import slo as obs_slo
    analysis_only = (args.analyze or args.slo
                     or args.flamegraph is not None) and not args.json
    kinds = obs_report.ANALYSIS_KINDS if analysis_only else None
    try:
        records = obs_report.load(args.path, kinds=kinds)
    except (OSError, ValueError) as err:
        print(f"error reading {args.path}: {err}", file=sys.stderr)
        return 1
    if not records:
        print(f"error: {args.path} contains no events", file=sys.stderr)
        return 1
    if args.json:
        import json as _json
        print(_json.dumps(obs_report.report_data(records), indent=2,
                          sort_keys=True, default=str))
        return 0
    sections = []
    if args.analyze:
        body = obs_analysis.render_analysis(records)
        sections.append(("critical path",
                         body or "(no attributable requests or fits)"))
    if args.slo:
        body = obs_slo.render_slo(records)
        sections.append(("slo", body or "(no request stream to evaluate)"))
    if args.flamegraph is not None:
        folded = obs_analysis.render_folded(records)
        if args.flamegraph == "-":
            sections.append(("flamegraph (folded stacks)", folded))
        else:
            with open(args.flamegraph, "w", encoding="utf-8") as fh:
                fh.write(folded + ("\n" if folded else ""))
            print(f"folded stacks written to {args.flamegraph}")
    if sections:
        print("\n\n".join(f"== {title} ==\n{body}"
                          for title, body in sections))
        return 0
    print(obs_report.render_report(records))
    return 0


def cmd_top(args) -> int:
    """Live terminal dashboard over a serving ``/metrics`` endpoint."""
    from .obs import top as obs_top
    url = args.url
    if "://" not in url:
        url = f"http://{url}"
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    frames = obs_top.run_top(url, interval_s=args.interval,
                             iterations=args.iterations,
                             clear=not args.no_clear)
    return 0 if frames > 0 else 1


def cmd_decompose(args) -> int:
    from .experiments.figures import figure5
    fig = figure5(dataset=args.dataset, scale="small",
                  window_len=args.window, num_scales=args.num_scales,
                  csv_path=args.csv)
    print(fig.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models and datasets")

    train = sub.add_parser("train", help="train a model on a dataset")
    _add_common(train)
    train.add_argument("--model", default="TS3Net")
    train.add_argument("--task", default="forecast",
                       choices=list(task_names()))
    train.add_argument("--preset", default="tiny", choices=["tiny", "paper"])
    train.add_argument("--epochs", type=int, default=3)
    train.add_argument("--lr", type=float, default=2e-3)
    train.add_argument("--batch-size", type=int, default=16)
    train.add_argument("--max-batches", type=int, default=30)
    train.add_argument("--mask-ratio", type=float, default=0.25)
    train.add_argument("--anomaly-ratio", type=float, default=0.01)
    train.add_argument("--num-classes", type=int, default=3)
    train.add_argument("--save", default=None, help="checkpoint path (.npz)")
    train.add_argument("--compiled", action="store_true",
                       help="capture/replay compiled training steps "
                            "(bitwise-validated, eager fallback on any "
                            "unsupported construct or shape change)")
    train.add_argument("--compile-workers", type=int, default=1,
                       help="thread-pool width for parallel subgraph "
                            "dispatch in compiled mode (1 = serial)")
    train.add_argument("--profile", action="store_true",
                       help="record per-op/per-module telemetry during the "
                            "fit and print the parameter + profile tables")
    train.add_argument("--trace", default=None, metavar="PATH",
                       help="write a JSONL run trace (spans, epoch metrics, "
                            "resource samples) for `repro trace PATH`")

    # One offline-inference subcommand per registered task (`forecast`,
    # `impute`, `detect`, `classify`); each spec owns its extra flags.
    for spec in task_specs():
        infer = sub.add_parser(spec.infer_command, help=spec.infer_help)
        infer.add_argument("--checkpoint", required=True)
        infer.add_argument("--seed", type=int, default=0)
        spec.add_infer_args(infer)

    serve = sub.add_parser(
        "serve", help="serve checkpoints over HTTP with micro-batching")
    serve.add_argument("--checkpoint", action="append", required=True,
                       help="checkpoint (.npz) to serve; repeatable")
    serve.add_argument("--task", default=None, choices=list(task_names()),
                       help="only accept checkpoints trained for this task "
                            "(default: serve any registered task)")
    serve.add_argument("--name", action="append", default=None,
                       help="serving name for the matching --checkpoint "
                            "(default: the checkpoint's model name)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--max-batch-size", type=int, default=16,
                       help="flush a micro-batch at this many windows")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="flush a partial batch after this long")
    serve.add_argument("--queue-size", type=int, default=256,
                       help="admission-control bound; beyond it requests "
                            "are shed with a 503")
    serve.add_argument("--timeout-ms", type=float, default=2000.0,
                       help="default per-request deadline")
    serve.add_argument("--compiled", action="store_true",
                       help="serve each model through a compiled forward "
                            "graph (bitwise-validated per input shape; "
                            "hot-reload swaps in a fresh compile)")
    serve.add_argument("--workers", type=int, default=1,
                       help="serve through a pre-fork cluster of this many "
                            "worker processes sharing copy-on-write weight "
                            "mmaps (1 = single-process server)")
    serve.add_argument("--spool-dir", default=None,
                       help="directory for published weight blobs in "
                            "cluster mode (default: a fresh temp dir)")
    serve.add_argument("--spread", type=int, default=0,
                       help="warm-set width for consistent-hash routing "
                            "(0 = spread each model over all workers)")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write a JSONL run trace with one span per "
                            "request (trace id echoed in X-Trace-Id)")
    serve.add_argument("--slo", default=None, metavar="CONF",
                       help="track SLOs with burn-rate alerting: 'default' "
                            "for the stock availability + latency pair, or "
                            "a JSON objectives file (budget gauges join "
                            "/metrics; alerts land in the trace)")

    trace = sub.add_parser(
        "trace", help="render a JSONL run trace written by --trace")
    trace.add_argument("path", help="JSONL trace file to aggregate "
                                    "(rotated segment chains included)")
    trace.add_argument("--analyze", action="store_true",
                       help="critical-path attribution: split each "
                            "request's wall-clock into proxy hop / queue "
                            "wait / batch execute / postprocess, and each "
                            "profiled fit into per-op time")
    trace.add_argument("--flamegraph", nargs="?", const="-", default=None,
                       metavar="OUT",
                       help="export folded-stack flamegraph text to OUT "
                            "(default: stdout); feed to flamegraph.pl or "
                            "speedscope")
    trace.add_argument("--slo", action="store_true",
                       help="replay the request stream through the SLO "
                            "engine: burn rates per window, budget "
                            "remaining, logged alert transitions")
    trace.add_argument("--json", action="store_true",
                       help="print one machine-readable JSON document "
                            "mirroring every rendered section")

    top = sub.add_parser(
        "top", help="live dashboard polling a serving /metrics endpoint")
    top.add_argument("url", help="server base URL or /metrics URL "
                                 "(e.g. http://127.0.0.1:8321)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=None,
                     help="render this many frames then exit "
                          "(default: run until interrupted)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of repainting the screen "
                          "(CI logs, piping to a file)")

    decompose = sub.add_parser("decompose",
                               help="triple-decompose a dataset window")
    decompose.add_argument("--dataset", default="ETTh1")
    decompose.add_argument("--window", type=int, default=192)
    decompose.add_argument("--num-scales", type=int, default=16)
    decompose.add_argument("--csv", default=None)

    for name in TABLE_COMMANDS:
        table = sub.add_parser(
            name, add_help=False,
            help=f"run the paper's {name} grid via the engine "
                 f"(--workers/--cache-dir; see `{name} --help`)")
        table.add_argument("rest", nargs=argparse.REMAINDER,
                           help="arguments for the experiment module")

    return parser


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Table subcommands are routed before the main parser: REMAINDER does
    # not capture leading options (e.g. `table4 --scale tiny`), and the
    # experiment modules own that argument parsing anyway.
    if argv and argv[0] in TABLE_COMMANDS:
        return cmd_table(argv[0], argv[1:])
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "train": cmd_train,
                "decompose": cmd_decompose,
                "serve": cmd_serve, "trace": cmd_trace, "top": cmd_top}
    for spec in task_specs():
        handlers[spec.infer_command] = functools.partial(cmd_infer, spec)
    handler = handlers[args.command]
    if not getattr(args, "trace", None) or args.command == "trace":
        return handler(args)
    obs_runtime.configure(path=args.trace, resource_interval_s=0.5)
    try:
        return handler(args)
    finally:
        obs_runtime.shutdown()


if __name__ == "__main__":
    raise SystemExit(main())
