"""The paper's primary contribution: TS3Net and its TF-Block."""

from .heads import AutoregressionHead, PredictionHead
from .tf_block import TFBlock, TFBranch, WeightLearnedMerge
from .ts3net import ReplicateBlock, TS3Net, TS3NetConfig

__all__ = [
    "AutoregressionHead", "PredictionHead", "TFBlock", "TFBranch",
    "WeightLearnedMerge", "ReplicateBlock", "TS3Net", "TS3NetConfig",
]
