"""Prediction heads of TS3Net (Eq. 14-16).

* :class:`PredictionHead` — the MLP head used for the regular and fluctuant
  parts: a linear map along the time axis (T -> T_out) followed by a
  channel projection (d_model -> C).
* :class:`AutoregressionHead` — the trend head: an MLP directly from the
  lookback trend to the future trend, per channel (Eq. 16).
"""

from __future__ import annotations

from typing import Optional

from ..autodiff import Tensor
from ..nn import Dropout, GELU, Linear, Module, Sequential


class PredictionHead(Module):
    """Time-axis linear projection + channel projection: (B,T,D) -> (B,T_out,C)."""

    def __init__(self, seq_len: int, out_len: int, d_model: int, c_out: int,
                 dropout: float = 0.1):
        super().__init__()
        self.time_proj = Linear(seq_len, out_len)
        self.channel_proj = Linear(d_model, c_out)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        # (B, T, D) -> (B, D, T) -> (B, D, T_out) -> (B, T_out, D) -> (B, T_out, C)
        out = self.time_proj(x.swapaxes(-2, -1)).swapaxes(-2, -1)
        return self.channel_proj(self.dropout(out))


class AutoregressionHead(Module):
    """Per-channel MLP from the lookback trend to the future trend (Eq. 16).

    The trend is a low-frequency component "without obvious periodicity",
    so a direct time-axis MLP (shared across channels) suffices; a hidden
    layer is included to match the paper's "Autoregression layer based on
    multi-layer perceptron".
    """

    def __init__(self, seq_len: int, out_len: int, hidden: Optional[int] = None,
                 dropout: float = 0.0):
        super().__init__()
        hidden = hidden or max(seq_len, out_len)
        self.net = Sequential(
            Linear(seq_len, hidden), GELU(), Dropout(dropout),
            Linear(hidden, out_len),
        )

    def forward(self, x: Tensor) -> Tensor:
        # (B, T, C) -> (B, C, T) -> MLP over time -> (B, C, T_out) -> (B, T_out, C)
        return self.net(x.swapaxes(-2, -1)).swapaxes(-2, -1)
