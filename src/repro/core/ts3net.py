"""TS3Net — the paper's task-general model (Fig. 2, Alg. 1, Eq. 12-17).

Forward pass for an input window ``X in R^{B x T x C}``:

1. *(optional)* instance normalisation (subtract the window mean, divide by
   the window std; statistics are restored on the output) — the standard
   non-stationarity guard of the TimesNet experimental protocol under which
   the paper evaluates;
2. trend decomposition: ``X = X_trend + X_seasonal`` (Eq. 1);
3. the trend is forecast by the Autoregression head (Eq. 16);
4. the seasonal part is embedded to ``d_model`` channels and flows through
   ``N`` stacked TF-Blocks; an S-GD layer sits before each block (Eq. 12),
   peeling off a spectrum-gradient tensor ``X_f^{l-1}`` each time;
5. the regular stream's final state feeds the regular prediction head
   (Eq. 14); the accumulated fluctuant tensors are collapsed with the IWT
   and fed to the fluctuant head (Eq. 15);
6. the three predictions are summed (Eq. 17) and de-normalised.

Ablation switches reproduce Table VI:

* ``use_td=False``   — "w/o TD": no trend split, no S-GD; the embedded
  input goes straight through the TF-Blocks and a single head.
* ``tf_mode='replicate'`` — "w/o TF-Block": the wavelet spectrum expansion
  is replaced by the paper's control of "converting 1D time series to 2D
  tensor by replicating and concatenating only".
* both together   — "w/o Both".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..autodiff import Tensor, no_grad, ops
from ..decomposition.spectrum_gradient import SpectrumGradientDecomposition
from ..decomposition.trend import DEFAULT_KERNELS, SeriesDecomposition
from ..nn import (
    DataEmbedding, Dropout, GELU, InceptionBlock2d, LayerNorm, Linear,
    Module, ModuleList, Sequential,
)
from ..spectral.periods import detect_periods, dominant_period, topk_frequencies
from .heads import AutoregressionHead, PredictionHead
from .tf_block import TFBlock


@dataclass
class TS3NetConfig:
    """Hyper-parameters of TS3Net (defaults follow Table III at small scale).

    ``num_scales`` is the paper's ``lambda`` (100 by default in the paper;
    small here so CPU training stays fast — the sensitivity study of
    Table IX sweeps it).
    """

    seq_len: int = 96
    pred_len: int = 96
    c_in: int = 7
    d_model: int = 32
    num_blocks: int = 2          # stacked TF-Blocks (paper default: 2)
    num_scales: int = 16         # lambda
    num_branches: int = 2        # m mother-wavelet branches
    d_ff: int = 32
    num_kernels: int = 3
    dropout: float = 0.1
    trend_kernels: Sequence[int] = field(default=DEFAULT_KERNELS)
    top_k_periods: int = 1       # k of Eq. 2 used for S-GD chunking
    use_norm: bool = True
    use_td: bool = True          # ablation: triple decomposition on/off
    tf_mode: str = "wavelet"     # "wavelet" | "replicate" (Table VI control)
    first_chunk_zero: bool = True
    task: str = "forecast"       # "forecast" | "imputation"

    @property
    def out_len(self) -> int:
        return self.seq_len if self.task == "imputation" else self.pred_len


class ReplicateBlock(Module):
    """The Table VI "w/o TF-Block" control: 2-D tensor by replication only.

    The 1-D sequence is tiled ``num_scales`` times into the rows of a 2-D
    tensor and processed by the same inception backbone + collapse as the
    real TF-Block, isolating the contribution of the wavelet expansion.
    """

    def __init__(self, seq_len: int, d_model: int, num_scales: int,
                 d_ff: int, num_kernels: int = 3, dropout: float = 0.1):
        super().__init__()
        self.num_scales = num_scales
        self.backbone = Sequential(
            InceptionBlock2d(d_model, d_ff, num_kernels),
            GELU(),
            InceptionBlock2d(d_ff, d_model, num_kernels),
        )
        self.scale_collapse = Linear(num_scales, 1, bias=False)
        self.ff = Sequential(Linear(d_model, d_model), Dropout(dropout))
        self.norm = LayerNorm(d_model)

    def forward(self, x: Tensor) -> Tensor:
        # (B, T, D) -> (B, D, 1, T) tiled to (B, D, lam, T)
        x2d = x.swapaxes(-2, -1).unsqueeze(2)
        tiled = ops.concat([x2d] * self.num_scales, axis=2)
        feat = self.backbone(tiled)
        feat = feat.transpose(0, 3, 1, 2)              # (B, T, D, lam)
        collapsed = self.scale_collapse(feat).squeeze(-1)
        return self.norm(x + self.ff(collapsed))


class TS3Net(Module):
    """Triple-decomposition network for forecasting and imputation."""

    def __init__(self, config: Optional[TS3NetConfig] = None, **overrides):
        super().__init__()
        if config is None:
            config = TS3NetConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides, not both")
        self.config = config
        cfg = config

        self.trend_decomp = SeriesDecomposition(cfg.trend_kernels)
        self.embedding = DataEmbedding(cfg.c_in, cfg.d_model, dropout=cfg.dropout)

        if cfg.tf_mode == "wavelet":
            make_block = lambda: TFBlock(
                cfg.seq_len, cfg.d_model, num_scales=cfg.num_scales,
                num_branches=cfg.num_branches, d_ff=cfg.d_ff,
                num_kernels=cfg.num_kernels, dropout=cfg.dropout)
        elif cfg.tf_mode == "replicate":
            make_block = lambda: ReplicateBlock(
                cfg.seq_len, cfg.d_model, num_scales=cfg.num_scales,
                d_ff=cfg.d_ff, num_kernels=cfg.num_kernels, dropout=cfg.dropout)
        else:
            raise ValueError(f"unknown tf_mode {cfg.tf_mode!r}")
        self.blocks = ModuleList([make_block() for _ in range(cfg.num_blocks)])

        if cfg.use_td:
            self.sgd_layers = ModuleList([
                SpectrumGradientDecomposition(
                    cfg.seq_len, cfg.num_scales,
                    first_chunk_zero=cfg.first_chunk_zero)
                for _ in range(cfg.num_blocks)
            ])
            self.fluctuant_head = PredictionHead(
                cfg.seq_len, cfg.out_len, cfg.d_model, cfg.c_in, cfg.dropout)
            self.trend_head = AutoregressionHead(cfg.seq_len, cfg.out_len)
        self.regular_head = PredictionHead(
            cfg.seq_len, cfg.out_len, cfg.d_model, cfg.c_in, cfg.dropout)

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Map a lookback window (B, T, C) to predictions (B, out_len, C)."""
        cfg = self.config
        if cfg.use_norm:
            # Statistics are detached (no_grad: gradients do not flow into
            # them, matching the standard stop-gradient instance norm) but
            # evaluated on-tape, so a compiled capture recomputes them per
            # replayed batch instead of baking stale constants.
            with no_grad():
                mean = x.mean(axis=1, keepdims=True)
                std = ops.instance_std(x, axis=1, eps=1e-5)
            x = (x - mean) / std

        if cfg.use_td:
            out = self._forward_triple(x)
        else:
            out = self._forward_plain(x)

        if cfg.use_norm:
            out = out * std + mean
        return out

    def _forward_plain(self, x: Tensor) -> Tensor:
        """Ablation path (w/o TD): embed -> TF-Blocks -> single head."""
        h = self.embedding(x)
        for block in self.blocks:
            h = block(h)
        return self.regular_head(h)

    def _sgd_multi(self, sgd, h: Tensor, periods) -> tuple:
        """Apply one S-GD layer at each top-k period and average (Eq. 2's
        "in practice we use the top-k periodicities")."""
        regular = None
        fluct = None
        for period in periods:
            res = sgd(h, period=int(period))
            regular = res.regular if regular is None else regular + res.regular
            fluct = res.fluctuant if fluct is None else fluct + res.fluctuant
        k = float(len(periods))
        return regular / k, fluct / k

    def _forward_triple(self, x: Tensor) -> Tensor:
        cfg = self.config
        seasonal, trend = self.trend_decomp(x)
        y_trend = self.trend_head(trend)

        periods, _ = detect_periods(seasonal.data, k=cfg.top_k_periods)
        h = self.embedding(seasonal)

        fluct_sum = None
        for sgd, block in zip(self.sgd_layers, self.blocks):
            regular, fluct = self._sgd_multi(sgd, h, periods)
            fluct_sum = fluct if fluct_sum is None else fluct_sum + fluct
            h = block(regular)

        y_regular = self.regular_head(h)

        # Eq. 15: collapse the accumulated spectrum gradients back to 1-D and
        # predict from them. fluct_sum: (B, D, lambda, T).
        fluct_1d = self.sgd_layers[0].operator.inverse(fluct_sum)   # (B, D, T)
        fluct_1d = fluct_1d.swapaxes(-2, -1)                        # (B, T, D)
        y_fluct = self.fluctuant_head(fluct_1d)

        return y_trend + y_regular + y_fluct

    # ------------------------------------------------------------------
    def encode(self, x: Tensor) -> Tensor:
        """Return the deep representation of a window — (B, T, d_model).

        The paper calls TS3Net "task-general": this exposes the regular
        stream's final state (the input to the prediction head, Eq. 14) so
        downstream tasks (classification, anomaly scoring, retrieval) can
        consume TS3Net features without the forecasting head.
        """
        cfg = self.config
        if cfg.use_norm:
            with no_grad():
                mean = x.mean(axis=1, keepdims=True)
                std = ops.instance_std(x, axis=1, eps=1e-5)
            x = (x - mean) / std
        if not cfg.use_td:
            h = self.embedding(x)
            for block in self.blocks:
                h = block(h)
            return h
        seasonal, _ = self.trend_decomp(x)
        period = dominant_period(seasonal.data)
        h = self.embedding(seasonal)
        for sgd, block in zip(self.sgd_layers, self.blocks):
            res = sgd(h, period=period)
            h = block(res.regular)
        return h

    # ------------------------------------------------------------------
    def batch_signature(self, window: np.ndarray) -> tuple:
        """Micro-batching key: windows sharing it can be stacked losslessly.

        The only cross-sample coupling in the forward pass is Eq. 2's period
        detection, which averages amplitude spectra over the batch.  For any
        group of windows whose *per-window* ordered top-k frequency picks
        agree, the batch-averaged spectrum provably picks the same ordered
        top-k (each chosen frequency dominates every other pointwise across
        the group), so a stacked forward is bit-identical to the per-window
        forwards.  The serving batcher only stacks windows with equal keys.
        """
        cfg = self.config
        if not cfg.use_td:
            return ()
        from ..autodiff import no_grad
        with no_grad():
            seasonal, _ = self.trend_decomp(Tensor(np.asarray(window)[None]))
        top = topk_frequencies(seasonal.data, k=cfg.top_k_periods)
        return tuple(int(f) for f in top)

    # ------------------------------------------------------------------
    def trace_signature(self, x: np.ndarray) -> tuple:
        """Graph-compiler trace key: per-batch values baked into a capture.

        The only batch-dependent constants the forward pass folds into the
        graph structure are Eq. 2's detected periods (the S-GD chunk sizes
        are kwargs, not tape values).  This mirrors the forward's exact
        normalise -> trend-split -> detect_periods pipeline under
        ``no_grad`` so a captured graph is replayed **only** for batches
        whose periods match bit-for-bit — any other batch gets its own
        trace (see ``repro.autodiff.compile``).
        """
        cfg = self.config
        if not cfg.use_td:
            return ()
        with no_grad():
            xt = x if isinstance(x, Tensor) else Tensor(np.asarray(x))
            if cfg.use_norm:
                mean = xt.mean(axis=1, keepdims=True)
                std = ops.instance_std(xt, axis=1, eps=1e-5)
                xt = (xt - mean) / std
            seasonal, _ = self.trend_decomp(xt)
        periods, _ = detect_periods(seasonal.data, k=cfg.top_k_periods)
        return tuple(int(p) for p in periods)

    # ------------------------------------------------------------------
    def decompose(self, x: Tensor):
        """Expose the data-level triple decomposition (used by Fig. 5)."""
        from ..decomposition.triple import TripleDecomposition
        td = TripleDecomposition(
            seq_len=x.shape[1], num_scales=self.config.num_scales,
            trend_kernels=self.config.trend_kernels,
            first_chunk_zero=self.config.first_chunk_zero)
        return td(x)
