"""The Temporal-Frequency Block (TF-Block), Eq. 13.

Each block runs three successive stages on a (B, T, D) representation:

1. **TF Learning Layer** — for each of the ``m`` wavelet branches, the
   series is expanded into a 2-D temporal-frequency tensor
   ``X_2D = Amp(WT(X, psi_i))`` of shape (B, D, lambda, T), putting
   frequency sub-bands on rows and time on columns so that "spectrum
   dynamic variations [are] easily modeled by the 2D kernels";
2. **FeedForward Layer** — an inception-style 2-D convolution backbone
   processes the tensor, and a linear collapse over the scale axis maps the
   learned 2-D representation back to a 1-D (B, T, D) sequence;
3. **Weight-learned Merge Layer** — learnable softmax weights combine the
   ``m`` branch outputs, and a residual connection adds the block input.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autodiff import Tensor, ops
from ..nn import (
    Dropout, GELU, InceptionBlock2d, LayerNorm, Linear, Module, ModuleList,
    Parameter, Sequential,
)
from ..spectral.cwt import CWTOperator
from ..spectral.wavelets import default_branch_wavelets


class TFBranch(Module):
    """One wavelet branch: CWT expansion -> 2-D conv backbone -> 1-D collapse."""

    def __init__(self, seq_len: int, d_model: int, num_scales: int,
                 wavelet: str, d_ff: int, num_kernels: int = 3,
                 dropout: float = 0.1):
        super().__init__()
        self.operator = CWTOperator.cached(seq_len, num_scales, wavelet)
        self.backbone = Sequential(
            InceptionBlock2d(d_model, d_ff, num_kernels),
            GELU(),
            InceptionBlock2d(d_ff, d_model, num_kernels),
        )
        # Collapse the scale axis back to 1-D: a linear map over lambda.
        self.scale_collapse = Linear(num_scales, 1, bias=False)
        self.ff = Sequential(Linear(d_model, d_model), Dropout(dropout))

    def forward(self, x: Tensor) -> Tensor:
        # x: (B, T, D) -> time-last (B, D, T) -> TF tensor (B, D, lam, T)
        x2d = self.operator.amplitude(x.swapaxes(-2, -1))
        feat = self.backbone(x2d)                     # (B, D, lam, T)
        # (B, D, lam, T) -> (B, T, D, lam) -> collapse lam -> (B, T, D)
        feat = feat.transpose(0, 3, 1, 2)
        collapsed = self.scale_collapse(feat).squeeze(-1)
        return self.ff(collapsed)


class WeightLearnedMerge(Module):
    """Softmax-weighted summation over branch outputs (the Merge of Eq. 13)."""

    def __init__(self, num_branches: int):
        super().__init__()
        self.logits = Parameter(np.zeros(num_branches))

    def forward(self, branch_outputs: Sequence[Tensor]) -> Tensor:
        # One contraction over the branch axis: (..., m) @ (m,) -> (...,).
        # The tape holds a single stack + matmul instead of a per-branch
        # chain of slice / broadcast / add nodes.
        weights = ops.softmax(self.logits, axis=-1)
        return ops.stack(branch_outputs, axis=-1) @ weights


class TFBlock(Module):
    """Residual multi-branch temporal-frequency block (Eq. 13).

    Parameters
    ----------
    seq_len:
        Representation length T.
    d_model:
        Channel width of the (B, T, D) representation.
    num_scales:
        ``lambda`` — spectral sub-bands per branch.
    num_branches:
        ``m`` — number of mother-wavelet branches.
    d_ff:
        Hidden channels of the inception backbone.
    num_kernels:
        Parallel kernel sizes inside each inception block.
    """

    def __init__(self, seq_len: int, d_model: int, num_scales: int = 16,
                 num_branches: int = 2, d_ff: int = 32, num_kernels: int = 3,
                 dropout: float = 0.1):
        super().__init__()
        wavelets = default_branch_wavelets(num_branches)
        self.branches = ModuleList([
            TFBranch(seq_len, d_model, num_scales, name, d_ff,
                     num_kernels=num_kernels, dropout=dropout)
            for name in wavelets
        ])
        self.merge = WeightLearnedMerge(num_branches)
        self.norm = LayerNorm(d_model)

    def forward(self, x: Tensor) -> Tensor:
        outs = [branch(x) for branch in self.branches]
        return self.norm(x + self.merge(outs))
