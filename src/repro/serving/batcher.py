"""Dynamic micro-batcher: queue windows, flush on size or timeout.

Requests enter a bounded queue (admission control: a full queue raises
:class:`QueueFullError` immediately — callers shed load with a 503 instead
of stacking unbounded latency).  A single worker thread collects up to
``max_batch_size`` requests, waiting at most ``max_wait_ms`` after the
first one, then executes **one stacked ``no_grad`` forward per
determinism group** and resolves each request's future with its row.

Determinism guarantee
---------------------
Batched outputs are bit-identical to single-request forwards.  Windows are
grouped by a key that includes the model entry's ``(name, version)``,
the window shape/dtype, and — for ``signature``-policy models like TS3Net —
the per-window ``batch_signature`` (ordered top-k spectral picks), so no
stacked forward ever mixes windows whose joint forward could differ from
their solo forwards.  ``solo``-policy models get a unique key per request
(batch size 1 by construction).  :func:`single_forward` is the reference
the batched path must match ``repr``-exactly; both run under the same
``precision(entry.dtype)`` scope so dtype coercion is identical.

The worker runs under the *thread-local* autodiff mode state: its
``no_grad`` scope cannot flip grad recording for a training loop on
another thread (see ``repro.autodiff.tensor._EngineState``).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..autodiff import Tensor, no_grad, precision
from ..obs import context as _obs_context
from ..obs import runtime as _obs
from .metrics import ServerMetrics
from .registry import ModelEntry, ModelRegistry


class QueueFullError(RuntimeError):
    """Admission control: the request queue is at capacity (serve a 503)."""


class DeadlineExceededError(TimeoutError):
    """The request's deadline expired before its batch executed (504)."""


class BatcherClosedError(RuntimeError):
    """The batcher is shutting down and no longer admits requests (503)."""


class InvalidWindowError(ValueError):
    """The submitted window fails shape/finiteness validation (400)."""


def _validate_window(entry: ModelEntry, window) -> np.ndarray:
    arr = np.asarray(window)
    expected = (entry.seq_len, entry.c_in)
    if arr.shape != expected:
        raise InvalidWindowError(
            f"window shape {arr.shape} does not match model "
            f"{entry.name!r} input {expected} (seq_len, c_in)")
    if not np.issubdtype(arr.dtype, np.number):
        raise InvalidWindowError(
            f"window dtype {arr.dtype} is not numeric")
    arr = arr.astype(entry.dtype, copy=False)
    if not np.all(np.isfinite(arr)):
        raise InvalidWindowError("window contains NaN or Inf values")
    return arr


def single_forward(entry: ModelEntry, window) -> np.ndarray:
    """Reference un-batched forward; batched rows must equal this bitwise."""
    arr = _validate_window(entry, window)
    with precision(entry.dtype), no_grad():
        return entry.model(Tensor(arr[None])).data[0]


@dataclass
class _Pending:
    """One queued window with its resolution future."""

    entry: ModelEntry
    window: np.ndarray
    key: tuple
    future: Future
    enqueued_at: float
    deadline: Optional[float]  # monotonic; None = no deadline
    # The submitting thread's span ref (the http.request span) so the
    # batch.execute span can link every member request it served.
    trace: Optional[_obs_context.SpanRef] = None


class MicroBatcher:
    """Queues windows per model and serves them in stacked forwards."""

    def __init__(self, registry: ModelRegistry, *, max_batch_size: int = 16,
                 max_wait_ms: float = 2.0, queue_size: int = 256,
                 metrics: Optional[ServerMetrics] = None, start: bool = True):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.registry = registry
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1e3
        self.metrics = metrics or ServerMetrics()
        self._queue: "queue.Queue[_Pending]" = queue.Queue(maxsize=queue_size)
        self._closing = False
        self._discard = False
        self._solo_ticket = itertools.count()
        # Recent (monotonic time, requests resolved) flush records; the
        # basis for the adaptive 503 Retry-After hint (see retry_after_s).
        self._drain_lock = threading.Lock()
        self._drained: "deque" = deque(maxlen=64)
        self._worker: Optional[threading.Thread] = None
        self.metrics.set_queue_depth_fn(self._queue.qsize)
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def _batch_key(self, entry: ModelEntry, window: np.ndarray) -> tuple:
        base = (entry.name, entry.version, window.shape, str(window.dtype))
        if entry.policy == "stack":
            return base
        if entry.policy == "signature":
            return base + tuple(entry.model.batch_signature(window))
        return base + ("solo", next(self._solo_ticket))

    def submit(self, name: str, window, *,
               timeout_s: Optional[float] = None) -> Future:
        """Enqueue one window for model ``name``; returns its future.

        Raises :class:`BatcherClosedError` / :class:`QueueFullError` /
        :class:`InvalidWindowError` synchronously; the future resolves with
        the prediction row or fails with :class:`DeadlineExceededError`.
        """
        if self._closing:
            raise BatcherClosedError("batcher is draining; not accepting work")
        entry = self.registry.get(name)
        arr = _validate_window(entry, window)
        now = time.monotonic()
        pending = _Pending(
            entry=entry, window=arr, key=self._batch_key(entry, arr),
            future=Future(), enqueued_at=now,
            deadline=None if timeout_s is None else now + timeout_s,
            trace=_obs_context.current() if _obs.active() else None)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            raise QueueFullError(
                f"request queue at capacity ({self._queue.maxsize})") from None
        return pending.future

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def drain_rate(self) -> float:
        """Recent requests/second leaving the queue (0.0 when unknown)."""
        now = time.monotonic()
        with self._drain_lock:
            recent = [(t, n) for t, n in self._drained if now - t <= 5.0]
        if not recent:
            return 0.0
        total = sum(n for _, n in recent)
        return total / max(now - recent[0][0], 1e-3)

    def retry_after_s(self) -> float:
        """Adaptive 503 Retry-After: time to drain the current backlog.

        ``queue depth / recent drain rate`` estimates when a retried
        request would find room, clamped to [0.05s, 5s] so the hint never
        tells a client to hammer immediately or to give up for minutes.
        Falls back to 1s when there is no recent drain evidence (cold
        start under burst: the queue filled before anything executed).
        """
        depth = self._queue.qsize() + 1     # count the request being shed
        rate = self.drain_rate()
        if rate <= 0.0:
            return 1.0
        return min(max(depth / rate, 0.05), 5.0)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._worker is not None:
            return
        self._worker = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True)
        self._worker.start()

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admitting work; by default finish everything already queued.

        With ``drain=False`` queued requests fail with
        :class:`BatcherClosedError` instead of executing.
        """
        self._closing = True
        self._discard = not drain
        worker = self._worker
        if worker is not None:
            worker.join(timeout=timeout)

    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.02)
            except queue.Empty:
                if self._closing:
                    return
                continue
            batch = [first]
            flush_at = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                remaining = flush_at - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
            self._execute(batch)

    def _execute(self, batch: List[_Pending]) -> None:
        now = time.monotonic()
        groups: dict = {}
        for pending in batch:
            if self._discard:
                pending.future.set_exception(
                    BatcherClosedError("batcher closed before execution"))
            elif pending.deadline is not None and now > pending.deadline:
                pending.future.set_exception(DeadlineExceededError(
                    f"deadline expired after "
                    f"{now - pending.enqueued_at:.3f}s in queue"))
            else:
                groups.setdefault(pending.key, []).append(pending)
        for group in groups.values():
            entry = group[0].entry
            try:
                stacked = np.stack([p.window for p in group])
                t0 = time.perf_counter()
                with precision(entry.dtype), no_grad():
                    if entry.compiled is not None:
                        # Replay the entry's compiled graph; it validates
                        # itself bitwise against eager on first use and
                        # falls back eagerly forever on any mismatch, so
                        # the single_forward repr-identity contract holds.
                        # The per-row np.array() copies below detach the
                        # results from the replay's reused output buffer.
                        out = entry.compiled.forward(stacked)
                    else:
                        out = entry.model(Tensor(stacked)).data
                self._emit_batch_span(group, time.perf_counter() - t0)
                self.metrics.observe_batch(len(group))
                for pending, row in zip(group, out):
                    pending.future.set_result(np.array(row))
            except Exception as exc:  # surface the failure to every waiter
                for pending in group:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
        with self._drain_lock:
            self._drained.append((time.monotonic(), len(batch)))

    @staticmethod
    def _emit_batch_span(group: List[_Pending], dur_s: float) -> None:
        """Record the stacked forward, linking every member request's trace.

        The worker thread has no span context of its own; the span's
        ``member_traces``/``member_spans`` attrs carry the http.request
        refs captured at submit() so ``repro trace`` can join a batched
        forward back to the requests it served.
        """
        ob = _obs.active()
        if ob is None:
            return
        entry = group[0].entry
        members = [p.trace for p in group if p.trace is not None]
        ob.emit_span("batch.execute", dur_s, {
            "model": entry.name, "version": entry.version,
            "policy": entry.policy, "size": len(group),
            "member_traces": [ref.trace_id for ref in members],
            "member_spans": [ref.span_id for ref in members],
        }, parent=members[0] if members else None)
