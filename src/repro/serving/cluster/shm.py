"""Shared-memory weight publication: one copy-on-write mmap per version.

The cluster keeps model weights out of worker heaps entirely.  The parent
(front-end) process *publishes* each checkpoint as a flat, 64-byte-aligned
binary blob in a spool directory — one blob per ``(model, version)`` —
and every worker *attaches* the blob with ``mmap.ACCESS_COPY``:

* the mapping is **read-only in effect**: inference only ever reads the
  parameter pages, so the kernel shares one physical copy of the weights
  across the whole worker pool (page-cache backed, no per-worker copy);
* it is **copy-on-write by construction**: an accidental in-place write
  in one worker materialises a private page instead of corrupting its
  siblings — isolation without ``PROT_READ`` hard-faulting a stray write
  path that NumPy cannot distinguish from a legitimate buffer.

Hot reload never mutates a published blob.  A new version is written to a
fresh file (atomic ``os.replace``), the per-model ``CURRENT`` pointer is
swapped, and workers re-attach and swap their registry entry in one
assignment — the old mapping stays valid for any in-flight batch that was
admitted under it, so a reload can never mix weight versions inside one
stacked forward (the batch key already includes the entry version).

Blob layout (version 1)::

    8 bytes   magic  b"RPROSHM1"
    8 bytes   little-endian uint64 header length H
    H bytes   JSON header {"meta": {...}, "params": [
                  {"name", "dtype", "shape", "offset", "nbytes"}, ...]}
    pad to 64
    data section: each array's raw C-order bytes, 64-byte aligned;
                  ``offset`` is relative to the data section start.
"""

from __future__ import annotations

import json
import mmap
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ...nn import read_checkpoint, validate_checkpoint_metadata

MAGIC = b"RPROSHM1"
ALIGN = 64


class BlobFormatError(ValueError):
    """The file is not a valid weight blob (magic/header corruption)."""


def _pad(n: int) -> int:
    return (-n) % ALIGN


def write_blob(state: Dict[str, np.ndarray], meta: Dict[str, Any],
               path: str) -> int:
    """Write ``state`` + ``meta`` as one weight blob; returns its size.

    The write is atomic: the blob is assembled in a temp file in the same
    directory and ``os.replace``\\ d into place, so an attach can never see
    a half-written version.
    """
    params: List[Dict[str, Any]] = []
    offset = 0
    arrays = []
    for name in sorted(state):
        arr = np.ascontiguousarray(state[name])
        params.append({"name": name, "dtype": arr.dtype.str,
                       "shape": list(arr.shape), "offset": offset,
                       "nbytes": int(arr.nbytes)})
        arrays.append(arr)
        offset += arr.nbytes + _pad(arr.nbytes)
    header = json.dumps({"meta": meta, "params": params},
                        sort_keys=True).encode("utf-8")

    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".blob.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(MAGIC)
            fh.write(len(header).to_bytes(8, "little"))
            fh.write(header)
            head_len = len(MAGIC) + 8 + len(header)
            fh.write(b"\0" * _pad(head_len))
            for arr in arrays:
                raw = arr.tobytes()
                fh.write(raw)
                fh.write(b"\0" * _pad(len(raw)))
            fh.flush()
            os.fsync(fh.fileno())
            size = fh.tell()
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return size


class SharedWeights:
    """One attached weight blob: metadata plus zero-copy array views.

    The arrays returned by :attr:`arrays` (and installed by
    :meth:`load_into`) are views into the copy-on-write mapping; they hold
    a reference to the ``mmap`` object, so the mapping lives exactly as
    long as any model still using it.
    """

    def __init__(self, path: str, version: Optional[int] = None):
        self.path = str(path)
        self.version = version
        with open(self.path, "rb") as fh:
            self._mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_COPY)
        if self._mm[:len(MAGIC)] != MAGIC:
            raise BlobFormatError(
                f"{self.path} is not a weight blob (bad magic)")
        head_len = int.from_bytes(self._mm[len(MAGIC):len(MAGIC) + 8],
                                  "little")
        header_start = len(MAGIC) + 8
        try:
            header = json.loads(
                self._mm[header_start:header_start + head_len])
        except ValueError as err:
            raise BlobFormatError(
                f"{self.path}: malformed blob header: {err}") from None
        self.meta: Dict[str, Any] = header["meta"]
        data_start = header_start + head_len
        data_start += _pad(data_start)
        self.arrays: Dict[str, np.ndarray] = {}
        for spec in header["params"]:
            arr = np.frombuffer(
                self._mm, dtype=np.dtype(spec["dtype"]),
                count=int(np.prod(spec["shape"], dtype=np.int64)),
                offset=data_start + spec["offset"],
            ).reshape(spec["shape"])
            self.arrays[spec["name"]] = arr

    @property
    def nbytes(self) -> int:
        return sum(arr.nbytes for arr in self.arrays.values())

    def load_into(self, model) -> Dict[str, Any]:
        """Attach the mapped arrays as the model's parameters (zero-copy).

        Unlike ``Module.load_state_dict`` this does *not* copy: each
        parameter's ``data`` becomes a view into the shared mapping, which
        is the whole point of the spool.  Name/shape mismatches raise
        exactly like ``load_state_dict``; a dtype mismatch falls back to a
        private cast copy (correctness over sharing).
        """
        own = dict(model.named_parameters())
        missing = set(own) - set(self.arrays)
        unexpected = set(self.arrays) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            view = self.arrays[name]
            if param.data.shape != view.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {view.shape}")
            if param.data.dtype == view.dtype:
                param.data = view
            else:
                param.data = view.astype(param.data.dtype)
        return self.meta


class WeightStore:
    """The on-disk spool of published weight versions, one dir per cluster.

    Layout: ``<spool>/<name>-v<NNNNNNNN>.blob`` plus an atomically swapped
    ``<spool>/<name>.current`` pointer file holding the live version
    number.  Publishing is parent-side; workers only ever attach.
    """

    def __init__(self, spool_dir: str):
        self.spool_dir = str(spool_dir)
        os.makedirs(self.spool_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def blob_path(self, name: str, version: int) -> str:
        return os.path.join(self.spool_dir, f"{name}-v{version:08d}.blob")

    def _pointer_path(self, name: str) -> str:
        return os.path.join(self.spool_dir, f"{name}.current")

    def current_version(self, name: str) -> Optional[int]:
        """The live published version for ``name``, or None."""
        try:
            with open(self._pointer_path(name)) as fh:
                return int(fh.read().strip())
        except (OSError, ValueError):
            return None

    def names(self) -> List[str]:
        return sorted(path[:-len(".current")]
                      for path in os.listdir(self.spool_dir)
                      if path.endswith(".current"))

    # ------------------------------------------------------------------
    def publish(self, name: str, checkpoint_path: str,
                expect_task: Optional[str] = None) -> Tuple[int, str]:
        """Publish ``checkpoint_path`` as the next version of ``name``.

        Validates the checkpoint metadata up front (same contract as
        ``ModelRegistry``), writes the blob, then swaps the ``CURRENT``
        pointer — returns ``(version, blob_path)``.
        """
        state, meta = read_checkpoint(checkpoint_path)
        validate_checkpoint_metadata(meta, expect_task=expect_task,
                                     source=checkpoint_path)
        version = (self.current_version(name) or 0) + 1
        path = self.blob_path(name, version)
        write_blob(state, meta, path)
        pointer = self._pointer_path(name)
        fd, tmp = tempfile.mkstemp(dir=self.spool_dir, suffix=".cur.tmp")
        with os.fdopen(fd, "w") as fh:
            fh.write(str(version))
        os.replace(tmp, pointer)
        return version, path

    def attach(self, name: str, version: Optional[int] = None) -> SharedWeights:
        """Map one published version (default: the current one)."""
        if version is None:
            version = self.current_version(name)
            if version is None:
                raise FileNotFoundError(
                    f"no published weights for {name!r} in {self.spool_dir}")
        return SharedWeights(self.blob_path(name, version), version=version)
