"""Cluster front end: accept, route, proxy, aggregate, drain.

The :class:`ClusterServer` is a thin acceptor in front of the worker
pool.  For inference POSTs it:

* reads the request body once, extracts the routing key (the named
  model, else the task path) — the body bytes are then forwarded
  **verbatim** and the worker's response bytes are relayed verbatim, so
  the proxied path trivially preserves the bit-identity contract;
* asks the :class:`~.routing.Router` for the dispatch order (rotated
  warm set, then deterministic spillover) over the currently alive
  workers, and walks it: a connection-level failure (worker crashed
  mid-request) retries the next candidate; an HTTP error (including a
  worker's adaptive ``503 Retry-After``) is relayed as-is — spillover
  re-routes around dead workers, never around backpressure;
* stamps ``X-Trace-Id``/``X-Parent-Span`` from its own ``http.request``
  span onto the proxied request, so the worker's span (and the
  ``batch.execute`` spans under it) nest inside the originating request
  in ``repro trace`` reports.

``GET /metrics`` renders the front end's own series followed by the
merged worker expositions (scraped via each worker's uncounted
``/admin/metrics`` side door).  ``POST /admin/reload`` publishes a new
checkpoint version into the spool and hot-swaps every worker.
"""

from __future__ import annotations

import http.client
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ...obs import console as _console
from ...obs import context as _obs_context
from ...obs import runtime as _obs
from ..server import ServingConfig
from .config import ClusterConfig
from .metrics import ClusterMetrics, merge_expositions
from .routing import HashRing, NoWorkerAvailable, Router
from .shm import WeightStore
from .supervisor import WorkerPool


class _ProxyError(Exception):
    """Every candidate worker failed at the connection level."""


class ClusterHandler(BaseHTTPRequestHandler):
    server_version = "repro-cluster/1.0"
    protocol_version = "HTTP/1.1"
    disable_nagle_algorithm = True

    def log_message(self, fmt, *args):  # noqa: D102
        pass

    @property
    def _srv(self) -> "ClusterServer":
        return self.server  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict,
                   retry_after_s: Optional[float] = None) -> None:
        self._send_raw(status, json.dumps(payload).encode("utf-8"),
                       "application/json", retry_after_s)

    def _send_raw(self, status: int, body: bytes, content_type: str,
                  retry_after_s: Optional[float] = None,
                  retry_after_text: Optional[str] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after_text is not None:
            self.send_header("Retry-After", retry_after_text)
        elif retry_after_s is not None:
            self.send_header("Retry-After", f"{retry_after_s:.3f}")
        ref = _obs_context.current()
        if ref is not None:
            self.send_header("X-Trace-Id", ref.trace_id)
        self.end_headers()
        self.wfile.write(body)
        started = getattr(self, "_request_started", None)
        latency = (time.monotonic() - started) if started is not None else None
        self._srv.metrics.observe_request(status, latency_s=latency)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: D102
        self._request_started = time.monotonic()
        ob = _obs.active()
        with self._srv.track_request():
            if ob is None:
                self._handle_get()
                return
            with ob.span("http.request", {"method": "GET",
                                          "path": self.path,
                                          "tier": "frontend"}):
                self._handle_get()

    def do_POST(self) -> None:  # noqa: D102
        self._request_started = time.monotonic()
        ob = _obs.active()
        with self._srv.track_request():
            if ob is None:
                self._handle_post()
                return
            with ob.span("http.request", {"method": "POST",
                                          "path": self.path,
                                          "tier": "frontend"}):
                self._handle_post()

    # ------------------------------------------------------------------
    def _handle_get(self) -> None:
        srv = self._srv
        if self.path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "workers": srv.pool.config.workers,
                "alive": srv.pool.alive_ids(),
                "models": srv.store.names(),
            })
        elif self.path == "/metrics":
            self._send_raw(200, srv.render_metrics().encode("utf-8"),
                           "text/plain; version=0.0.4; charset=utf-8")
        elif self.path == "/v1/models":
            self._proxy_request("GET", self.path, b"", key="models")
        else:
            self._send_json(404, {"error": {"type": "not_found",
                                            "detail": self.path}})

    def _handle_post(self) -> None:
        srv = self._srv
        if self.path == "/admin/reload":
            self._admin_reload()
            return
        if not self.path.startswith("/v1/"):
            self._send_json(404, {"error": {"type": "not_found",
                                            "detail": self.path}})
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length > srv.config.serving.max_body_bytes:
            self._send_json(413, {"error": {
                "type": "payload_too_large",
                "detail": f"body of {length} bytes exceeds limit"}})
            return
        body = self.rfile.read(length) if length > 0 else b""
        # Routing key: the named model binds a request to its warm set;
        # unnamed requests group by task endpoint instead.
        key = self.path
        try:
            payload = json.loads(body)
            if isinstance(payload, dict) and payload.get("model"):
                key = str(payload["model"])
        except ValueError:
            pass                       # workers own body validation
        self._proxy_request("POST", self.path, body, key=key)

    def _admin_reload(self) -> None:
        srv = self._srv
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
            name = payload.get("name")
            checkpoint = payload.get("checkpoint")
            if not isinstance(name, str) or not isinstance(checkpoint, str):
                self._send_json(400, {"error": {
                    "type": "invalid_request",
                    "detail": 'reload needs {"name": str, '
                              '"checkpoint": str}'}})
                return
            version = srv.pool.reload(name, checkpoint)
            self._send_json(200, {"name": name, "version": version})
        except (OSError, ValueError, RuntimeError) as err:
            self._send_json(500, {"error": {"type": "reload_failed",
                                            "detail": str(err)}})

    # ------------------------------------------------------------------
    def _proxy_request(self, method: str, path: str, body: bytes,
                       key: str) -> None:
        srv = self._srv
        try:
            order = srv.router.route(key, srv.pool.alive_ids())
        except NoWorkerAvailable:
            srv.metrics.observe_shed()
            self._send_json(503, {"error": {
                "type": "no_workers",
                "detail": "no alive worker to serve the request"}},
                retry_after_s=1.0)
            return
        headers = {"Content-Type": "application/json"}
        ref = _obs_context.current()
        if ref is not None:
            headers["X-Trace-Id"] = ref.trace_id
            headers["X-Parent-Span"] = ref.span_id
        last_error: Optional[Exception] = None
        for attempt, worker_id in enumerate(order):
            port = srv.pool.endpoint(worker_id)
            if port is None:
                continue
            if attempt > 0:
                srv.metrics.observe_retry()
            try:
                status, resp_headers, resp_body = srv.worker_request(
                    worker_id, port, method, path, body, headers)
            except (OSError, http.client.HTTPException) as err:
                last_error = err
                continue
            self._send_raw(
                status, resp_body,
                resp_headers.get("Content-Type", "application/json"),
                retry_after_text=resp_headers.get("Retry-After"))
            return
        srv.metrics.observe_shed()
        self._send_json(503, {"error": {
            "type": "no_workers",
            "detail": f"every candidate worker failed: {last_error}"}},
            retry_after_s=1.0)


class ClusterServer(ThreadingHTTPServer):
    """Acceptor + router in front of a :class:`WorkerPool`."""

    daemon_threads = True
    block_on_close = False

    def __init__(self, config: ClusterConfig, pool: WorkerPool,
                 store: WeightStore,
                 metrics: Optional[ClusterMetrics] = None):
        self.config = config
        self.pool = pool
        self.store = store
        self.metrics = metrics or pool.metrics
        self.router = Router(
            HashRing(list(range(config.workers)), replicas=config.replicas),
            spread=config.spread)
        self._local = threading.local()
        # Proxy timeout: a worker answers within its own deadline; the
        # margin covers connection setup and response serialisation.
        self._proxy_timeout = config.serving.max_timeout_ms / 1e3 + 5.0
        self._inflight = 0
        self._idle = threading.Condition()
        super().__init__((config.host, config.port), ClusterHandler)

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    def track_request(self):
        return _Inflight(self)

    def wait_idle(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    # ------------------------------------------------------------------
    def _connection(self, worker_id: int, port: int):
        conns: Dict[Tuple[int, int], http.client.HTTPConnection]
        conns = getattr(self._local, "conns", None)
        if conns is None:
            conns = self._local.conns = {}
        conn = conns.get((worker_id, port))
        if conn is None:
            conn = http.client.HTTPConnection(
                self.config.host, port, timeout=self._proxy_timeout)
            conns[(worker_id, port)] = conn
        return conn

    def _drop_connection(self, worker_id: int, port: int) -> None:
        conns = getattr(self._local, "conns", None)
        if conns is None:
            return
        conn = conns.pop((worker_id, port), None)
        if conn is not None:
            conn.close()

    def worker_request(self, worker_id: int, port: int, method: str,
                       path: str, body: bytes,
                       headers: Dict[str, str]):
        """One proxied request over this thread's persistent connection.

        A stale keep-alive socket (worker restarted, idle timeout) fails
        on first use; one transparent reconnect to the *same* worker
        covers that before the caller moves to the next candidate.
        """
        for fresh in (False, True):
            if fresh:
                self._drop_connection(worker_id, port)
            conn = self._connection(worker_id, port)
            try:
                conn.request(method, path, body=body or None,
                             headers=headers)
                resp = conn.getresponse()
                resp_body = resp.read()
                return resp.status, dict(resp.getheaders()), resp_body
            except (OSError, http.client.HTTPException):
                self._drop_connection(worker_id, port)
                if fresh:
                    raise
        raise http.client.HTTPException("unreachable")

    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """Front-end series + merged worker expositions, one scrape."""
        texts = []
        for worker_id in self.pool.alive_ids():
            port = self.pool.endpoint(worker_id)
            if port is None:
                continue
            try:
                status, _, body = self.worker_request(
                    worker_id, port, "GET", "/admin/metrics", b"", {})
            except (OSError, http.client.HTTPException):
                continue
            if status == 200:
                texts.append(body.decode("utf-8"))
        own = self.metrics.render()
        workers = merge_expositions(texts)
        return own + workers

    def drain(self) -> None:
        """Finish in-flight proxies, drain the pool, release the socket."""
        self.wait_idle(self.config.drain_timeout_s)
        self.pool.drain()
        self.server_close()


class _Inflight:
    def __init__(self, server: ClusterServer):
        self._server = server

    def __enter__(self):
        with self._server._idle:
            self._server._inflight += 1
        return self

    def __exit__(self, *exc):
        with self._server._idle:
            self._server._inflight -= 1
            if self._server._inflight == 0:
                self._server._idle.notify_all()
        return False


# ----------------------------------------------------------------------
def build_cluster(config: ClusterConfig, checkpoints: Dict[str, str],
                  start: bool = True):
    """Publish checkpoints, boot the pool, return the front-end server.

    ``checkpoints`` maps serving names to checkpoint paths.  Returns the
    :class:`ClusterServer` (its ``pool``/``store`` hang off it); with
    ``start=False`` the pool is not spawned (tests wiring their own).
    """
    if config.spool_dir is None:
        import tempfile
        config.spool_dir = tempfile.mkdtemp(prefix="repro-spool-")
    store = WeightStore(config.spool_dir)
    for name, path in checkpoints.items():
        store.publish(name, path, expect_task=config.expect_task)
    metrics = ClusterMetrics()
    if config.slo:
        from ...obs.slo import SLOTracker, load_objectives
        metrics.attach_slo(SLOTracker(load_objectives(config.slo),
                                      registry=metrics.registry))
    pool = WorkerPool(config, store, metrics=metrics)
    if start:
        pool.start()
    return ClusterServer(config, pool, store, metrics=metrics)


def _lifecycle(message: str, verbose: bool) -> None:
    if verbose:
        _console.emit_line(message)
    ob = _obs.active()
    if ob is not None:
        ob.event("server.lifecycle", {"message": message})


def run_cluster(server: ClusterServer, verbose: bool = True) -> int:
    """Serve until SIGINT/SIGTERM, then drain the whole cluster."""
    pool = server.pool
    _lifecycle(
        f"cluster serving on {server.address}  "
        f"({len(pool.alive_ids())}/{pool.config.workers} workers, "
        f"models: {', '.join(server.store.names()) or 'none'})", verbose)
    for worker_id in pool.alive_ids():
        handle = pool.handles[worker_id]
        _lifecycle(f"  worker {worker_id}: pid={handle.pid} "
                   f"port={handle.port}", verbose)

    previous = signal.getsignal(signal.SIGTERM)

    def _sigterm(_signum, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:             # not on the main thread (tests)
        previous = None

    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        _lifecycle("\nshutting down: draining cluster ...", verbose)
    finally:
        threading.Thread(target=server.shutdown, daemon=True).start()
        server.drain()
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    _lifecycle("cluster drained; bye", verbose)
    return 0


# ServingConfig is re-exported so cluster callers configure workers
# without importing the single-process module directly.
__all__ = ["ClusterHandler", "ClusterServer", "ServingConfig",
           "build_cluster", "run_cluster"]
