"""Pre-fork serving cluster: shared weights, routing, supervision.

A multi-process tier over the single-process serving stack (DESIGN.md
section 5j): a front-end acceptor consistent-hash-routes requests to N
worker processes, each running the unmodified registry + micro-batcher;
model weights are published once per version as copy-on-write mmap
blobs in a spool directory, so hot reload is an atomic version swap
visible to every worker with no per-worker weight copies.
"""

from .config import ClusterConfig
from .frontend import ClusterServer, build_cluster, run_cluster
from .metrics import (
    ClusterMetrics, ExpositionError, merge_expositions, parse_exposition,
)
from .routing import HashRing, NoWorkerAvailable, Router, stable_hash
from .shm import BlobFormatError, SharedWeights, WeightStore, write_blob
from .supervisor import WorkerPool, WorkerStartupError
from .worker import ClusterWorkerHandler, WorkerServer, WorkerSpec, worker_main

__all__ = [
    "ClusterConfig",
    "ClusterServer", "build_cluster", "run_cluster",
    "ClusterMetrics", "ExpositionError", "merge_expositions",
    "parse_exposition",
    "HashRing", "NoWorkerAvailable", "Router", "stable_hash",
    "BlobFormatError", "SharedWeights", "WeightStore", "write_blob",
    "WorkerPool", "WorkerStartupError",
    "ClusterWorkerHandler", "WorkerServer", "WorkerSpec", "worker_main",
]
