"""Cluster-wide metrics: exposition merging + front-end series.

Every worker renders its own :class:`~repro.serving.metrics.ServerMetrics`
through the one Prometheus text renderer in :mod:`repro.obs.metrics`.
The front-end's aggregation reader scrapes each worker's side-door
(``GET /admin/metrics`` — rendered without being counted, so a scrape
never perturbs what it measures) and merges the texts into one
cluster-wide exposition:

* counters, gauges, histogram ``_bucket``/``_sum``/``_count`` series are
  **summed** across workers;
* ``{quantile="q"}`` series are combined with **max** — quantiles do not
  sum, and the conservative cluster-wide tail is the worst worker's tail;
* metric blocks and samples keep first-appearance order, so identical
  worker registries (the normal case) merge into byte-stable output —
  the CI smoke job golden-compares the rendered aggregate text.

:class:`ClusterMetrics` declares the front-end's own series (worker
liveness, restarts, proxy retries, front-end request counts) on a
standard :class:`~repro.obs.metrics.MetricsRegistry`; the cluster
``/metrics`` scrape is that registry's text followed by the merged
worker exposition.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...obs.metrics import MetricsRegistry


class ExpositionError(ValueError):
    """A scraped exposition text could not be parsed."""


def _parse_labels(raw: str, where: str) -> Tuple[Tuple[str, str], ...]:
    """Parse ``k="v",...`` (the inside of ``{}``) honouring escapes."""
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(raw):
        eq = raw.find("=", i)
        if eq < 0 or eq + 1 >= len(raw) or raw[eq + 1] != '"':
            raise ExpositionError(f"{where}: malformed labels {raw!r}")
        key = raw[i:eq].strip()
        j = eq + 2
        value = []
        while j < len(raw):
            ch = raw[j]
            if ch == "\\" and j + 1 < len(raw):
                value.append({"n": "\n"}.get(raw[j + 1], raw[j + 1]))
                j += 2
                continue
            if ch == '"':
                break
            value.append(ch)
            j += 1
        else:
            raise ExpositionError(f"{where}: unterminated label in {raw!r}")
        labels.append((key, "".join(value)))
        i = j + 1
        if i < len(raw) and raw[i] == ",":
            i += 1
    return tuple(labels)


def parse_exposition(text: str) -> List[Dict]:
    """Parse Prometheus text into ordered metric blocks.

    Returns ``[{"name", "help", "type", "samples": [(series, labels,
    value, raw_value), ...]}, ...]`` preserving document order.  Only the
    subset of the format our renderer emits is supported — this is a
    federation reader for our own workers, not a general scraper.
    """
    blocks: List[Dict] = []
    by_name: Dict[str, Dict] = {}
    current: Optional[Dict] = None
    for line_no, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        where = f"line {line_no}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            current = by_name.get(name)
            if current is None:
                current = {"name": name, "help": help_text,
                           "type": "untyped", "samples": []}
                by_name[name] = current
                blocks.append(current)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, prom_type = rest.partition(" ")
            if current is None or current["name"] != name:
                raise ExpositionError(f"{where}: TYPE without HELP: {line!r}")
            current["type"] = prom_type
            continue
        if line.startswith("#"):
            continue
        series, _, value_text = line.rpartition(" ")
        if not series:
            raise ExpositionError(f"{where}: malformed sample {line!r}")
        if "{" in series:
            series_name, _, label_text = series.partition("{")
            if not label_text.endswith("}"):
                raise ExpositionError(f"{where}: malformed labels {line!r}")
            labels = _parse_labels(label_text[:-1], where)
        else:
            series_name, labels = series, ()
        try:
            value = float(value_text)
        except ValueError:
            raise ExpositionError(
                f"{where}: non-numeric value {value_text!r}") from None
        if current is None or not series_name.startswith(current["name"]):
            raise ExpositionError(
                f"{where}: sample {series_name!r} outside a metric block")
        current["samples"].append((series_name, labels, value, value_text))
    return blocks


def _is_int_text(raw: str) -> bool:
    try:
        return float(raw) == int(float(raw)) and "." not in raw
    except (ValueError, OverflowError):
        return False


def merge_expositions(texts: Sequence[str]) -> str:
    """Merge worker exposition texts into one cluster-wide exposition.

    Sum everything except ``{quantile=...}`` series, which take the max
    across workers: per-worker quantiles cannot be combined into a true
    cluster quantile without the raw samples, so the merged value is the
    worst worker's — an **upper bound** on the cluster-wide quantile.
    Blocks containing quantile series say so in their merged HELP line,
    so a dashboard reading the aggregate scrape cannot mistake the bound
    for an exact quantile.  Output order follows first appearance, so
    identical worker registries merge byte-stably (golden-compared in
    CI).
    """
    order: List[Tuple[str, Tuple]] = []          # (series, labels) keys
    merged: Dict[Tuple[str, Tuple], Dict] = {}
    blocks_order: List[str] = []
    block_meta: Dict[str, Dict] = {}
    membership: Dict[Tuple[str, Tuple], str] = {}
    has_quantiles: Dict[str, bool] = {}

    for text in texts:
        for block in parse_exposition(text):
            name = block["name"]
            if name not in block_meta:
                block_meta[name] = {"help": block["help"],
                                    "type": block["type"]}
                blocks_order.append(name)
            for series, labels, value, raw in block["samples"]:
                key = (series, labels)
                is_quantile = any(k == "quantile" for k, _ in labels)
                if is_quantile:
                    has_quantiles[name] = True
                entry = merged.get(key)
                if entry is None:
                    merged[key] = {"value": value,
                                   "int": _is_int_text(raw),
                                   "quantile": is_quantile}
                    order.append(key)
                    membership[key] = name
                else:
                    if entry["quantile"]:
                        entry["value"] = max(entry["value"], value)
                    else:
                        entry["value"] += value
                    entry["int"] = entry["int"] and _is_int_text(raw)

    lines: List[str] = []
    for name in blocks_order:
        meta = block_meta[name]
        help_text = meta["help"]
        if has_quantiles.get(name):
            help_text += (" Quantile series are merged as max across "
                          "workers (upper bound, not an exact cluster "
                          "quantile).")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {meta['type']}")
        for key in order:
            if membership[key] != name:
                continue
            series, labels = key
            entry = merged[key]
            label_text = ""
            if labels:
                inner = ",".join(
                    f'{k}="{v}"' for k, v in labels)
                label_text = "{" + inner + "}"
            value = entry["value"]
            if entry["int"] and float(value).is_integer():
                value_text = str(int(value))
            else:
                value_text = f"{value:.6f}"
            lines.append(f"{series}{label_text} {value_text}")
    return "\n".join(lines) + "\n" if lines else ""


class ClusterMetrics:
    """Front-end series: worker liveness, restarts, proxy behaviour."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        self._workers = self.registry.gauge(
            "repro_cluster_workers",
            "Configured worker processes in the cluster.")
        self._up = self.registry.gauge(
            "repro_cluster_workers_alive",
            "Workers currently alive and serving.")
        self._restarts = self.registry.counter(
            "repro_cluster_worker_restarts_total",
            "Worker respawns after a crash or hung heartbeat.")
        self._requests = self.registry.counter(
            "repro_frontend_requests_total",
            "Front-end HTTP requests, by status code.")
        self._retries = self.registry.counter(
            "repro_frontend_proxy_retries_total",
            "Requests re-dispatched to a spillover worker.")
        self._shed = self.registry.counter(
            "repro_frontend_shed_total",
            "Requests shed at the front end (no alive worker).")
        # Opt-in SLO tracker (see ServerMetrics.attach_slo): absent by
        # default so the front-end exposition is unchanged without it.
        self.slo = None

    def set_workers(self, configured: int) -> None:
        self._workers.set(configured)

    def set_alive_fn(self, fn: Callable[[], int]) -> None:
        self._up.set_fn(fn)

    def observe_restart(self, worker: int) -> None:
        self._restarts.inc(labels={"worker": worker})

    def observe_request(self, status_code: int,
                        latency_s: Optional[float] = None) -> None:
        code = int(status_code)
        self._requests.inc(labels={"code": code, "class": f"{code // 100}xx"})
        if self.slo is not None:
            self.slo.observe(code, latency_s)

    def attach_slo(self, tracker) -> "ClusterMetrics":
        """Attach an SLO tracker; front-end requests feed its windows."""
        self.slo = tracker
        return self

    def observe_retry(self) -> None:
        self._retries.inc()

    def observe_shed(self) -> None:
        self._shed.inc()

    def render(self) -> str:
        if self.slo is not None:
            self.slo.evaluate()
        return self.registry.render()

    def snapshot(self) -> Dict:
        return self.registry.data()
