"""Cluster configuration: one dataclass the CLI flags map 1:1 onto."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..server import ServingConfig


@dataclass
class ClusterConfig:
    """Tunables of the pre-fork serving cluster.

    The front end listens on ``host:port``; each of the ``workers``
    processes binds its own ephemeral port on ``host`` and runs the full
    single-process serving stack (registry + micro-batcher).  ``serving``
    carries the per-worker knobs (batch size, queue depth, deadlines) —
    identical in every worker so the determinism contract is uniform.
    """

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 8321
    # Where published weight blobs live; None = a fresh temp dir per run.
    spool_dir: Optional[str] = None
    # Warm-set width for consistent-hash routing (0 = all workers; see
    # repro.serving.cluster.routing).
    spread: int = 0
    replicas: int = 64
    # Liveness: workers heartbeat over their control pipe; the supervisor
    # declares one hung after heartbeat_timeout_s of silence and respawns
    # it (at most max_restarts times per worker slot).
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 5.0
    supervise_interval_s: float = 0.1
    max_restarts: int = 3
    # How long a drain may wait for in-flight work before workers are
    # killed outright.
    drain_timeout_s: float = 10.0
    serving: ServingConfig = field(default_factory=ServingConfig)
    compiled: bool = False
    expect_task: Optional[str] = None
    # JSONL trace path shared by front end and workers (O_APPEND writes
    # keep one file coherent across processes); None = tracing off.
    trace_path: Optional[str] = None
    # SLO objectives for the front end: None = off, "default" = the
    # stock availability/latency pair, else a JSON config file path
    # (see repro.obs.slo.load_objectives).
    slo: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
