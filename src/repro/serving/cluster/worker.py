"""Worker process: the full single-process serving stack plus admin doors.

``worker_main`` is the child entry point.  Each worker:

* attaches every published model out of the shared weight spool
  (:mod:`.shm`) at the exact versions the parent dictated — zero-copy
  views into the copy-on-write blobs, so N workers share one physical
  copy of each version's weights;
* runs the unmodified :class:`~repro.serving.batcher.MicroBatcher` and
  :class:`~repro.serving.registry.ModelRegistry` behind its own HTTP
  server on an ephemeral port, so the per-worker determinism contract
  (batched outputs bit-identical to ``single_forward``) is exactly the
  single-process contract;
* heartbeats over its control pipe so the supervisor can tell a hung
  worker from a busy one, and drains cleanly on SIGTERM/SIGINT.

Admin side doors (front-end/supervisor only, never proxied):

* ``GET  /admin/metrics`` — renders this worker's metrics **without
  counting the scrape**, so cluster aggregation never perturbs what it
  measures;
* ``POST /admin/reload``  — ``{"name", "version"}``: attach that spool
  version and hot-swap the registry entry (one atomic assignment);
* ``POST /admin/crash``   — hard ``os._exit`` for supervision tests.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ...obs import runtime as _obs
from ..registry import ModelRegistry
from ..server import ForecastServer, RequestError, ServingConfig, _Handler
from .shm import WeightStore

#: Control-pipe message kinds (worker -> supervisor).
MSG_READY = "ready"
MSG_HEARTBEAT = "heartbeat"
MSG_STOPPING = "stopping"


@dataclass
class WorkerSpec:
    """Everything a worker needs to boot (picklable; fork- and spawn-safe)."""

    worker_id: int
    host: str
    spool_dir: str
    # (serving name, published spool version) pairs; respawns get the
    # versions current at respawn time, so a replacement worker always
    # rejoins at the cluster's live weights.
    models: List[Tuple[str, int]] = field(default_factory=list)
    serving: ServingConfig = field(default_factory=ServingConfig)
    compiled: bool = False
    expect_task: Optional[str] = None
    trace_path: Optional[str] = None
    heartbeat_interval_s: float = 0.25
    drain_timeout_s: float = 10.0


class ClusterWorkerHandler(_Handler):
    """The single-process handler plus uncounted admin side doors."""

    def do_GET(self) -> None:  # noqa: D102
        if self.path == "/admin/metrics":
            # No span, no request counter: aggregation scrapes must not
            # show up in the numbers they aggregate.
            self._send_text(200, self._srv.metrics.render(),
                            "text/plain; version=0.0.4; charset=utf-8")
            return
        with self._srv.track_request():
            super().do_GET()

    def do_POST(self) -> None:  # noqa: D102
        if self.path == "/admin/reload":
            self._admin_reload()
            return
        if self.path == "/admin/crash":
            os._exit(3)        # supervision tests: die mid-service
        with self._srv.track_request():
            super().do_POST()

    def _admin_reload(self) -> None:
        srv = self._srv
        try:
            payload = self._read_json()
            name = payload.get("name")
            version = payload.get("version")
            if not isinstance(name, str) or not isinstance(version, int):
                raise _bad_request(
                    'reload needs {"name": str, "version": int}')
            shared = srv.store.attach(name, version)
            if name in srv.registry.names():
                entry = srv.registry.reload_attached(
                    name, shared, version=version)
            else:
                entry = srv.registry.load_attached(
                    name, shared, version=version)
            ob = _obs.active()
            if ob is not None:
                ob.event("worker.reload", {"worker": srv.worker_id,
                                           "model": name,
                                           "version": version})
            self._send_json(200, {"name": entry.name,
                                  "version": entry.version})
        except RequestError as err:
            self._send_json(err.status, err.body(), err.retry_after_s)
        except (OSError, KeyError, ValueError) as err:
            self._send_json(500, {"error": {"type": "reload_failed",
                                            "detail": str(err)}})


def _bad_request(detail: str) -> RequestError:
    return RequestError(400, "invalid_request", detail)


class WorkerServer(ForecastServer):
    """ForecastServer variant safe to drain under keep-alive connections.

    The base class joins handler threads on close, which hangs while any
    client holds a persistent connection open.  Workers instead use
    daemon handler threads plus an explicit in-flight request counter:
    drain = stop accepting, wait for in-flight requests (not
    connections) to hit zero, then drain the batcher.
    """

    daemon_threads = True
    block_on_close = False

    def __init__(self, *args, worker_id: int = 0,
                 store: Optional[WeightStore] = None, **kwargs):
        self.worker_id = worker_id
        self.store = store
        self._inflight = 0
        self._idle = threading.Condition()
        super().__init__(*args, **kwargs)

    def track_request(self):
        return _Inflight(self)

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is mid-handling (True) or timeout."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True


class _Inflight:
    def __init__(self, server: WorkerServer):
        self._server = server

    def __enter__(self):
        with self._server._idle:
            self._server._inflight += 1
        return self

    def __exit__(self, *exc):
        with self._server._idle:
            self._server._inflight -= 1
            if self._server._inflight == 0:
                self._server._idle.notify_all()
        return False


def worker_main(spec: WorkerSpec, conn) -> int:
    """Child-process entry point: attach weights, serve, drain on signal.

    ``conn`` is the worker end of the control pipe; the worker sends
    ``ready`` (with its bound port) once serving, then ``heartbeat``
    every ``heartbeat_interval_s``, and ``stopping`` on its way out.
    """
    # Never trust an inherited observer: under fork the parent's sink
    # object is shared and closing it here would corrupt the parent's.
    # Swap it away untouched, then configure a fresh appender onto the
    # same JSONL path (O_APPEND single-line writes interleave safely).
    _obs.swap(None)
    if spec.trace_path:
        _obs.configure(path=spec.trace_path)

    store = WeightStore(spec.spool_dir)
    registry = ModelRegistry(expect_task=spec.expect_task,
                             compiled=spec.compiled)
    for name, version in spec.models:
        registry.load_attached(name, store.attach(name, version),
                               version=version)

    serving = ServingConfig(**{**spec.serving.__dict__,
                               "host": spec.host, "port": 0})
    server = WorkerServer(serving, registry,
                          handler_cls=ClusterWorkerHandler,
                          worker_id=spec.worker_id, store=store)
    port = server.server_address[1]

    ob = _obs.active()
    if ob is not None:
        ob.event("worker.start", {"worker": spec.worker_id,
                                  "pid": os.getpid(), "port": port,
                                  "models": [list(m) for m in spec.models]})

    # One-shot: a terminal Ctrl-C delivers SIGINT to the whole process
    # group, so the worker may already be draining when the supervisor's
    # SIGTERM arrives — a second raise here would abort the drain.
    def _on_signal(_signum, _frame):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    stop_beat = threading.Event()

    def _heartbeat():
        while not stop_beat.wait(spec.heartbeat_interval_s):
            try:
                conn.send({"kind": MSG_HEARTBEAT, "worker": spec.worker_id,
                           "t": time.monotonic()})
            except (OSError, EOFError, BrokenPipeError):
                # Parent is gone: stop serving rather than orphan.
                threading.Thread(target=server.shutdown,
                                 daemon=True).start()
                return

    conn.send({"kind": MSG_READY, "worker": spec.worker_id,
               "pid": os.getpid(), "port": port})
    beat = threading.Thread(target=_heartbeat, daemon=True,
                            name=f"repro-worker-{spec.worker_id}-beat")
    beat.start()

    try:
        server.serve_forever(poll_interval=0.05)
    except KeyboardInterrupt:
        pass
    finally:
        stop_beat.set()
        threading.Thread(target=server.shutdown, daemon=True).start()
        server.wait_idle(spec.drain_timeout_s)
        server.batcher.close(drain=True, timeout=spec.drain_timeout_s)
        server.server_close()
        if ob is not None:
            ob.event("worker.stop", {"worker": spec.worker_id,
                                     "pid": os.getpid()})
        _obs.shutdown()
        try:
            conn.send({"kind": MSG_STOPPING, "worker": spec.worker_id})
        except (OSError, EOFError, BrokenPipeError):
            pass
    return 0
