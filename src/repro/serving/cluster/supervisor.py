"""Worker pool supervision: spawn, heartbeat liveness, respawn, drain.

The :class:`WorkerPool` owns the worker processes.  Each worker reports
over a one-way control pipe (``ready`` with its bound port, then
periodic ``heartbeat``\\ s); a supervision thread drains those pipes and
enforces two liveness rules:

* **crash detection** — the process exited: respawn (up to
  ``max_restarts`` per slot), re-attaching the spool's *current* weight
  versions so a replacement always rejoins at the cluster's live
  weights, never the versions its predecessor booted with;
* **hang detection** — the process is alive but its heartbeat went
  silent past ``heartbeat_timeout_s``: kill it and respawn the slot.

Every transition is emitted as a ``worker.lifecycle`` obs event and a
restart counter tick, so `repro trace` and the cluster ``/metrics``
scrape both tell the story.  ``drain()`` SIGTERMs every worker (their
handlers finish in-flight requests and drain their batchers) and joins
them; stragglers past the timeout are killed.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import signal
import threading
import time
from typing import Dict, List, Optional

from ...obs import runtime as _obs
from .config import ClusterConfig
from .metrics import ClusterMetrics
from .shm import WeightStore
from .worker import (
    MSG_HEARTBEAT, MSG_READY, MSG_STOPPING, WorkerSpec, worker_main,
)


class WorkerStartupError(RuntimeError):
    """A worker failed to report ready within the startup timeout."""


def _lifecycle_event(kind: str, **attrs) -> None:
    ob = _obs.active()
    if ob is not None:
        ob.event("worker.lifecycle", {"transition": kind, **attrs})


def post_json(host: str, port: int, path: str, payload: dict,
              timeout: float = 10.0) -> dict:
    """One-shot JSON POST to a worker's admin door (no keep-alive)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload).encode("utf-8")
        conn.request("POST", path, body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        data = json.loads(resp.read() or b"{}")
        if resp.status != 200:
            raise RuntimeError(f"{path} -> {resp.status}: {data}")
        return data
    finally:
        conn.close()


class WorkerHandle:
    """Parent-side view of one worker slot."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None               # parent (receive) end of the pipe
        self.port: Optional[int] = None
        self.pid: Optional[int] = None
        self.last_beat: float = 0.0
        self.restarts: int = 0
        self.ready: bool = False

    @property
    def alive(self) -> bool:
        return bool(self.ready and self.process is not None
                    and self.process.is_alive())


class WorkerPool:
    """Spawns, watches, respawns, and drains the cluster's workers."""

    def __init__(self, config: ClusterConfig, store: WeightStore,
                 metrics: Optional[ClusterMetrics] = None,
                 startup_timeout_s: float = 30.0):
        self.config = config
        self.store = store
        self.metrics = metrics or ClusterMetrics()
        self.startup_timeout_s = startup_timeout_s
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0])
        self.handles: Dict[int, WorkerHandle] = {
            i: WorkerHandle(i) for i in range(config.workers)}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self.metrics.set_workers(config.workers)
        self.metrics.set_alive_fn(lambda: len(self.alive_ids()))

    # ------------------------------------------------------------------
    def _current_models(self) -> List:
        return [(name, self.store.current_version(name))
                for name in self.store.names()]

    def _spec(self, worker_id: int) -> WorkerSpec:
        cfg = self.config
        return WorkerSpec(
            worker_id=worker_id, host=cfg.host,
            spool_dir=self.store.spool_dir, models=self._current_models(),
            serving=cfg.serving, compiled=cfg.compiled,
            expect_task=cfg.expect_task, trace_path=cfg.trace_path,
            heartbeat_interval_s=cfg.heartbeat_interval_s,
            drain_timeout_s=cfg.drain_timeout_s)

    def _spawn(self, handle: WorkerHandle) -> None:
        recv, send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main, args=(self._spec(handle.worker_id), send),
            name=f"repro-worker-{handle.worker_id}", daemon=True)
        process.start()
        send.close()                   # child's end lives in the child
        handle.process = process
        handle.conn = recv
        handle.ready = False
        handle.port = None
        handle.pid = process.pid
        handle.last_beat = time.monotonic()
        _lifecycle_event("spawn", worker=handle.worker_id, pid=process.pid)

    def _wait_ready(self, handle: WorkerHandle, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not handle.process.is_alive():
                break
            if handle.conn.poll(0.05):
                try:
                    msg = handle.conn.recv()
                except (EOFError, OSError):
                    break
                if msg.get("kind") == MSG_READY:
                    handle.port = msg["port"]
                    handle.pid = msg["pid"]
                    handle.ready = True
                    handle.last_beat = time.monotonic()
                    _lifecycle_event("ready", worker=handle.worker_id,
                                     pid=handle.pid, port=handle.port)
                    return
        raise WorkerStartupError(
            f"worker {handle.worker_id} did not become ready within "
            f"{timeout:.1f}s (exitcode={handle.process.exitcode})")

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every worker, wait until all are ready, start supervision."""
        for handle in self.handles.values():
            self._spawn(handle)
        for handle in self.handles.values():
            self._wait_ready(handle, self.startup_timeout_s)
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-cluster-supervisor",
            daemon=True)
        self._supervisor.start()

    def alive_ids(self) -> List[int]:
        return sorted(wid for wid, h in self.handles.items() if h.alive)

    def endpoint(self, worker_id: int):
        handle = self.handles[worker_id]
        return handle.port

    # ------------------------------------------------------------------
    def _drain_pipe(self, handle: WorkerHandle) -> None:
        while handle.conn is not None and handle.conn.poll(0):
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                return
            if msg.get("kind") in (MSG_HEARTBEAT, MSG_STOPPING):
                handle.last_beat = time.monotonic()

    def _respawn(self, handle: WorkerHandle, reason: str) -> None:
        handle.restarts += 1
        self.metrics.observe_restart(handle.worker_id)
        _lifecycle_event(reason, worker=handle.worker_id, pid=handle.pid,
                         restarts=handle.restarts)
        if handle.restarts > self.config.max_restarts:
            _lifecycle_event("giveup", worker=handle.worker_id,
                             restarts=handle.restarts)
            handle.ready = False
            return
        self._spawn(handle)
        try:
            self._wait_ready(handle, self.startup_timeout_s)
            _lifecycle_event("respawned", worker=handle.worker_id,
                             pid=handle.pid, port=handle.port)
        except WorkerStartupError:
            handle.ready = False

    def _supervise(self) -> None:
        cfg = self.config
        while not self._stop.wait(cfg.supervise_interval_s):
            with self._lock:
                for handle in self.handles.values():
                    if handle.conn is None:
                        continue
                    self._drain_pipe(handle)
                    if self._stop.is_set():
                        return
                    process = handle.process
                    if process is not None and not process.is_alive():
                        self._respawn(handle, "crashed")
                        continue
                    silent = time.monotonic() - handle.last_beat
                    if handle.ready and silent > cfg.heartbeat_timeout_s:
                        _lifecycle_event("hung", worker=handle.worker_id,
                                         pid=handle.pid,
                                         silent_s=round(silent, 3))
                        if process is not None and process.is_alive():
                            process.kill()
                            process.join(timeout=5.0)
                        self._respawn(handle, "hung-killed")

    # ------------------------------------------------------------------
    def reload(self, name: str, checkpoint_path: str) -> int:
        """Publish a new version and hot-swap it on every alive worker."""
        version, _ = self.store.publish(name, checkpoint_path,
                                        expect_task=self.config.expect_task)
        with self._lock:
            targets = [(h.worker_id, h.port)
                       for h in self.handles.values() if h.alive]
        for worker_id, port in targets:
            post_json(self.config.host, port, "/admin/reload",
                      {"name": name, "version": version})
            _lifecycle_event("reloaded", worker=worker_id, model=name,
                             version=version)
        return version

    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> None:
        """Stop supervision, SIGTERM every worker, join (kill stragglers)."""
        timeout = self.config.drain_timeout_s if timeout is None else timeout
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        with self._lock:
            handles = list(self.handles.values())
        for handle in handles:
            process = handle.process
            if process is not None and process.is_alive():
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except (OSError, TypeError):
                    pass
        deadline = time.monotonic() + timeout
        for handle in handles:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                _lifecycle_event("drain-killed", worker=handle.worker_id,
                                 pid=handle.pid)
                process.kill()
                process.join(timeout=5.0)
            handle.ready = False
            _lifecycle_event("drained", worker=handle.worker_id)
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None
