"""Consistent-hash request routing with deterministic spillover.

Each worker owns ``replicas`` virtual points on a 64-bit hash ring
(SHA-256 based — stable across processes, runs, and
``PYTHONHASHSEED``).  A routing key (the model name, or the task name
when the request names no model) hashes to a point on the ring and walks
clockwise:

* :meth:`HashRing.preference` is the full deterministic order of
  *distinct* workers for a key — position 0 is the key's home worker,
  the rest are its spillover order when workers die;
* :meth:`HashRing.lookup` returns the first **alive** worker in that
  order, so a crashed worker's traffic lands on a deterministic
  substitute and snaps back the moment the supervisor respawns it;
* a *warm set* (``preference[:spread]``) bounds how many workers one
  model's traffic may touch: batches stay full (warm) on a few workers
  instead of fragmenting across the whole pool.  ``spread=0`` means the
  warm set is every alive worker — right for a cluster serving one hot
  model, where total throughput beats per-worker batch depth.

Routing never affects results: every worker serves identical weight
versions out of the shared spool, and batching determinism is a
per-worker contract — any worker answers with the same bits.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set


class NoWorkerAvailable(RuntimeError):
    """Every worker in the ring is marked dead (serve a 503 upstream)."""


def stable_hash(key: str) -> int:
    """A 64-bit hash that is identical in every process and run."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over a fixed set of worker ids."""

    def __init__(self, workers: Sequence[int], replicas: int = 64):
        if not workers:
            raise ValueError("a hash ring needs at least one worker")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.workers = list(workers)
        self.replicas = replicas
        points = sorted((stable_hash(f"worker-{w}#{r}"), w)
                        for w in self.workers for r in range(replicas))
        self._hashes = [h for h, _ in points]
        self._owners = [w for _, w in points]

    # ------------------------------------------------------------------
    def preference(self, key: str) -> List[int]:
        """Deterministic distinct-worker order for ``key`` (home first)."""
        start = bisect.bisect_right(self._hashes, stable_hash(str(key)))
        seen: Set[int] = set()
        order: List[int] = []
        n = len(self._owners)
        for i in range(n):
            worker = self._owners[(start + i) % n]
            if worker not in seen:
                seen.add(worker)
                order.append(worker)
                if len(order) == len(self.workers):
                    break
        return order

    def lookup(self, key: str, alive: Optional[Iterable[int]] = None) -> int:
        """First alive worker in the key's preference order."""
        alive_set = None if alive is None else set(alive)
        for worker in self.preference(key):
            if alive_set is None or worker in alive_set:
                return worker
        raise NoWorkerAvailable(f"no alive worker for key {key!r}")


class Router:
    """Dispatch policy over a ring: warm sets + per-key rotation.

    ``route()`` returns the candidate workers for a key in dispatch
    order: the alive members of the warm set first (rotated per key so a
    hot model's requests spread across its warm workers), then the
    remaining alive workers as spillover.  The warm set itself is a pure
    function of ``(key, alive workers)`` — deterministic, as the batching
    contract requires.
    """

    def __init__(self, ring: HashRing, spread: int = 0):
        self.ring = ring
        self.spread = spread
        self._counters: Dict[str, itertools.count] = {}
        self._lock = threading.Lock()

    def _tick(self, key: str) -> int:
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = itertools.count()
            return next(counter)

    def route(self, key: str, alive: Iterable[int]) -> List[int]:
        """Dispatch order for ``key``: rotated warm set, then spillover."""
        alive_set = set(alive)
        preference = [w for w in self.ring.preference(key)
                      if w in alive_set]
        if not preference:
            raise NoWorkerAvailable(f"no alive worker for key {key!r}")
        spread = self.spread if self.spread > 0 else len(preference)
        warm = preference[:spread]
        tick = self._tick(key) % len(warm)
        rotated = warm[tick:] + warm[:tick]
        return rotated + preference[spread:]
