"""Threaded HTTP front end for the micro-batched inference service.

Endpoints (JSON in/out, stdlib ``http.server`` only):

* ``POST /v1/<task>``    — one endpoint per registered
  :class:`~repro.tasks.registry.TaskSpec` (``/v1/forecast``,
  ``/v1/imputation``, ``/v1/anomaly``, ``/v1/classification``); body
  ``{"model": name?, "window": [[...], ...]}`` or ``{"windows": [...]}``
  for a client-side batch; optional ``"timeout_ms"``.  The response keys
  come from the task's :class:`~repro.tasks.registry.ServingContract`
  (``predictions``/``reconstructions``/``scores``/``classifications``),
  and every task's batched outputs stay bit-identical to single forwards
  under its declared batch policy.
* ``GET  /v1/models``    — registered checkpoints and their batch policies.
* ``GET  /healthz``      — liveness (also reports queue depth).
* ``GET  /metrics``      — Prometheus text exposition (see ``metrics.py``).

Robustness contract:

* bounded queue → ``503`` with ``Retry-After`` (load shedding, never a
  hang); unknown task endpoint or model → ``404`` naming the known ones;
  model registered for a different task than the endpoint → ``400``;
  malformed body or wrong window shape → structured ``400``; expired
  deadline → ``504``;
* every request runs under a deadline (client ``timeout_ms`` clamped to
  ``max_timeout_ms``, default ``default_timeout_ms``);
* SIGINT/SIGTERM stop accepting connections, drain the batcher (queued
  windows still execute and respond), then join handler threads.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

import numpy as np

from ..obs import console as _console
from ..obs import context as _obs_context
from ..obs import runtime as _obs
from ..tasks.registry import UnknownTaskError, get_task, task_names
from .batcher import (
    BatcherClosedError, DeadlineExceededError, InvalidWindowError,
    MicroBatcher, QueueFullError,
)
from .metrics import ServerMetrics
from .registry import ModelRegistry, UnknownModelError


@dataclass
class ServingConfig:
    """Tunables of the serving stack (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 8321
    max_batch_size: int = 16
    max_wait_ms: float = 2.0
    queue_size: int = 256
    default_timeout_ms: float = 2000.0
    max_timeout_ms: float = 30000.0
    max_body_bytes: int = 8 << 20
    # SLO objectives: None = off, "default" = the stock pair, else a
    # JSON config path (see repro.obs.slo.load_objectives).
    slo: Optional[str] = None


class RequestError(Exception):
    """An HTTP error response with a structured JSON body."""

    def __init__(self, status: int, error_type: str, detail: str,
                 retry_after_s: Optional[float] = None):
        super().__init__(detail)
        self.status = status
        self.error_type = error_type
        self.detail = detail
        self.retry_after_s = retry_after_s

    def body(self) -> dict:
        return {"error": {"type": self.error_type, "detail": self.detail}}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate writes; without TCP_NODELAY the
    # second one can stall ~40ms behind Nagle + the peer's delayed ACK.
    disable_nagle_algorithm = True

    # quiet by default; per-request logging belongs to /metrics
    def log_message(self, fmt, *args):  # noqa: D102
        pass

    # ------------------------------------------------------------------
    @property
    def _srv(self) -> "ForecastServer":
        return self.server  # type: ignore[return-value]

    def _send_json(self, status: int, payload: dict,
                   retry_after_s: Optional[float] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", f"{retry_after_s:.3f}")
        self._send_trace_header()
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self._send_trace_header()
        self.end_headers()
        self.wfile.write(body)

    def _send_trace_header(self) -> None:
        # Inside an http.request span (observer configured) the handler
        # thread's current span carries the trace id; echo it so a client
        # can find its request in the JSONL run log (`repro trace`).
        ref = _obs_context.current()
        if ref is not None:
            self.send_header("X-Trace-Id", ref.trace_id)

    def _inbound_parent(self) -> Optional[_obs_context.SpanRef]:
        """Cross-process trace continuation from the request headers.

        The cluster front end forwards its ``http.request`` span as
        ``X-Trace-Id``/``X-Parent-Span``; adopting it as this span's
        parent makes the worker's handling (and the ``batch.execute``
        spans under it) nest inside the originating request in
        ``repro trace`` reports.
        """
        trace_id = self.headers.get("X-Trace-Id")
        parent_span = self.headers.get("X-Parent-Span")
        if trace_id and parent_span:
            return _obs_context.SpanRef(trace_id, parent_span)
        return None

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        ob = _obs.active()
        if ob is None:
            self._handle_get()
            return
        with ob.span("http.request", {"method": "GET", "path": self.path},
                     parent=self._inbound_parent()) as span:
            span.set(status_code=self._handle_get())

    def _handle_get(self) -> int:
        srv = self._srv
        if self.path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "models": srv.registry.names(),
                "queue_depth": srv.batcher.queue_depth(),
            })
            status = 200
        elif self.path == "/v1/models":
            self._send_json(200, {"models": srv.registry.describe()})
            status = 200
        elif self.path == "/metrics":
            self._send_text(200, srv.metrics.render(),
                            "text/plain; version=0.0.4; charset=utf-8")
            status = 200
        else:
            self._send_json(404, {"error": {"type": "not_found",
                                            "detail": self.path}})
            status = 404
        srv.metrics.observe_request(status)
        return status

    def do_POST(self) -> None:
        ob = _obs.active()
        if ob is None:
            self._handle_post()
            return
        with ob.span("http.request", {"method": "POST", "path": self.path},
                     parent=self._inbound_parent()) as span:
            span.set(status_code=self._handle_post())

    def _handle_post(self) -> int:
        srv = self._srv
        start = time.perf_counter()
        try:
            prefix, _, task = self.path.partition("/v1/")
            if prefix or not task:
                raise RequestError(404, "not_found", self.path)
            try:
                spec = get_task(task)
            except UnknownTaskError:
                raise RequestError(
                    404, "unknown_task",
                    f"no task endpoint {self.path!r}; known: "
                    + ", ".join(f"/v1/{n}" for n in task_names())) from None
            payload = self._read_json()
            response = self._infer(spec, payload)
            self._send_json(200, response)
            status = 200
        except RequestError as err:
            self._send_json(err.status, err.body(), err.retry_after_s)
            status = err.status
        srv.metrics.observe_request(status, time.perf_counter() - start)
        return status

    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError(400, "invalid_request", "empty request body")
        if length > self._srv.config.max_body_bytes:
            raise RequestError(413, "payload_too_large",
                               f"body of {length} bytes exceeds limit")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as err:
            raise RequestError(400, "invalid_json", str(err)) from None
        if not isinstance(payload, dict):
            raise RequestError(400, "invalid_request",
                               "body must be a JSON object")
        return payload

    def _infer(self, spec, payload: dict) -> dict:
        srv = self._srv
        cfg = srv.config

        name = payload.get("model") or srv.registry.default_name(
            task=spec.name)
        if not name:
            raise RequestError(
                400, "invalid_request",
                f"no unique model serves task {spec.name!r}; pass "
                f"\"model\": <name> (registered: {srv.registry.names()})")
        try:
            entry = srv.registry.get(name)
        except UnknownModelError:
            raise RequestError(
                404, "unknown_model",
                f"no model {name!r}; registered: {srv.registry.names()}"
            ) from None
        if entry.task != spec.name:
            raise RequestError(
                400, "task_mismatch",
                f"model {name!r} was trained for task {entry.task!r}, not "
                f"{spec.name!r}; POST it to /v1/{entry.task}")

        if "window" in payload and "windows" in payload:
            raise RequestError(400, "invalid_request",
                               'pass either "window" or "windows", not both')
        if "window" in payload:
            windows, single = [payload["window"]], True
        elif "windows" in payload:
            windows, single = payload["windows"], False
            if not isinstance(windows, list) or not windows:
                raise RequestError(400, "invalid_request",
                                   '"windows" must be a non-empty list')
        else:
            raise RequestError(400, "invalid_request",
                               'body needs a "window" (seq_len x c_in) or '
                               '"windows" list')

        timeout_ms = payload.get("timeout_ms", cfg.default_timeout_ms)
        try:
            timeout_s = min(float(timeout_ms), cfg.max_timeout_ms) / 1e3
        except (TypeError, ValueError):
            raise RequestError(400, "invalid_request",
                               f"timeout_ms={timeout_ms!r} is not a number")
        if timeout_s <= 0:
            raise RequestError(400, "invalid_request",
                               "timeout_ms must be positive")

        futures = []
        arrays = []
        try:
            for window in windows:
                arr = self._parse_window(window)
                arrays.append(arr)
                futures.append(
                    srv.batcher.submit(name, arr, timeout_s=timeout_s))
        except UnknownModelError:
            raise RequestError(
                404, "unknown_model",
                f"no model {name!r}; registered: {srv.registry.names()}"
            ) from None
        except InvalidWindowError as err:
            raise RequestError(400, "invalid_window", str(err)) from None
        except (QueueFullError, BatcherClosedError) as err:
            # Shed the whole request; already-submitted windows still
            # execute but their rows are dropped (the client retries).
            # Retry-After is adaptive: the batcher estimates how long the
            # current backlog takes to drain at the recent service rate.
            raise RequestError(503, "overloaded", str(err),
                               retry_after_s=srv.batcher.retry_after_s()
                               ) from None

        deadline = time.monotonic() + timeout_s
        outputs = []
        for future in futures:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                outputs.append(future.result(timeout=remaining + 0.25))
            except DeadlineExceededError as err:
                raise RequestError(504, "deadline_exceeded", str(err)) from None
            except (TimeoutError, FutureTimeoutError):
                raise RequestError(504, "deadline_exceeded",
                                   f"no result within {timeout_s:.3f}s") from None
            except Exception as err:  # model failure inside the batch
                raise RequestError(500, "inference_error", str(err)) from None

        # Pure per-row postprocessing on the (bit-identical) batched model
        # outputs: the response inherits the determinism guarantee.
        contract = spec.serving
        try:
            rows = [contract.postprocess(entry, out, arr, payload)
                    for out, arr in zip(outputs, arrays)]
        except ValueError as err:
            raise RequestError(400, "invalid_request", str(err)) from None

        body = {"model": name, "version": entry.version,
                **contract.body_extra(entry), contract.plural: rows}
        if single:
            body[contract.singular] = rows[0]
        return body

    @staticmethod
    def _parse_window(window) -> np.ndarray:
        try:
            arr = np.asarray(window, dtype=np.float64)
        except (TypeError, ValueError) as err:
            raise RequestError(400, "invalid_window",
                               f"window is not numeric: {err}") from None
        if arr.ndim != 2:
            raise RequestError(400, "invalid_window",
                               f"window must be 2-D (seq_len x c_in), got "
                               f"shape {arr.shape}")
        return arr


class ForecastServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to a registry, batcher, and metrics sink."""

    daemon_threads = False     # join handler threads on close (drain)
    block_on_close = True

    def __init__(self, config: ServingConfig, registry: ModelRegistry,
                 batcher: Optional[MicroBatcher] = None,
                 metrics: Optional[ServerMetrics] = None,
                 handler_cls: type = _Handler):
        self.config = config
        self.registry = registry
        self.metrics = metrics or ServerMetrics()
        self.batcher = batcher or MicroBatcher(
            registry, max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms, queue_size=config.queue_size,
            metrics=self.metrics)
        super().__init__((config.host, config.port), handler_cls)

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def drain(self) -> None:
        """Finish queued work and release sockets (idempotent)."""
        self.batcher.close(drain=True)
        self.server_close()


def build_server(config: ServingConfig, registry: ModelRegistry,
                 metrics: Optional[ServerMetrics] = None) -> ForecastServer:
    """Construct a ready-to-serve :class:`ForecastServer` (port 0 = ephemeral)."""
    server = ForecastServer(config, registry, metrics=metrics)
    if config.slo and server.metrics.slo is None:
        from ..obs.slo import SLOTracker, load_objectives
        server.metrics.attach_slo(SLOTracker(
            load_objectives(config.slo),
            registry=server.metrics.registry))
    return server


def _lifecycle(message: str, verbose: bool) -> None:
    """Route a server lifecycle line to the console and the event sink."""
    if verbose:
        _console.emit_line(message)
    ob = _obs.active()
    if ob is not None:
        ob.event("server.lifecycle", {"message": message})


def run_server(server: ForecastServer, verbose: bool = True) -> int:
    """Serve until SIGINT/SIGTERM, then drain in-flight work and exit 0."""
    for desc in server.registry.describe():
        _lifecycle(f"  model {desc['name']!r}: {desc['model']} "
                   f"(task={desc['task']}, seq_len={desc['seq_len']}, "
                   f"c_in={desc['c_in']}, policy={desc['batch_policy']})",
                   verbose)
    endpoints = ", ".join(f"POST /v1/{name}" for name in task_names())
    _lifecycle(f"serving on {server.address}  "
               f"({endpoints}, GET /v1/models, /healthz, /metrics)",
               verbose)

    previous = signal.getsignal(signal.SIGTERM)

    def _sigterm(_signum, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:           # not on the main thread (tests)
        previous = None

    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        _lifecycle("\nshutting down: draining in-flight requests ...", verbose)
    finally:
        threading.Thread(target=server.shutdown, daemon=True).start()
        server.drain()
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    _lifecycle("drained; bye", verbose)
    return 0
