"""Thread-safe serving telemetry on the shared metrics registry.

One :class:`ServerMetrics` instance is shared by the HTTP front end and the
micro-batcher.  It tracks:

* request counts by HTTP status code (and status class: 2xx/4xx/5xx);
* the live batcher queue depth (read through a registered gauge callback);
* the distribution of executed batch sizes (exact counts per size);
* request latency — both fixed-bucket histogram counts and p50/p95/p99
  quantiles computed from a bounded ring buffer of recent observations.

Since PR 5 the storage and the Prometheus text renderer live in
:mod:`repro.obs.metrics` — this module only declares the serving series
on a :class:`~repro.obs.metrics.MetricsRegistry` and keeps the recording
API (``observe_request``/``observe_batch``/``snapshot``) the server and
batcher already use.  ``render()`` output is byte-identical to the
pre-registry implementation (locked by a golden test).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..obs.metrics import MetricsRegistry

#: Upper bounds (seconds) of the latency histogram buckets.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0)

QUANTILES = (0.5, 0.95, 0.99)


class ServerMetrics:
    """Aggregates serving counters; every method is safe to call concurrently."""

    def __init__(self, latency_window: int = 4096,
                 registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_requests_total",
            "HTTP requests served, by status code.")
        self._requests_class = self.registry.counter(
            "repro_requests_class_total",
            "HTTP requests, by status class.")
        self._queue_depth = self.registry.gauge(
            "repro_queue_depth",
            "Windows waiting in the batcher queue.")
        self._batch_size = self.registry.size_histogram(
            "repro_batch_size",
            "Executed micro-batch sizes.")
        self._latency = self.registry.histogram(
            "repro_request_latency_seconds",
            "Forecast request latency.",
            buckets=LATENCY_BUCKETS, quantiles=QUANTILES,
            quantile_window=latency_window, sum_format="{:.6f}")
        # SLO tracking is strictly opt-in (attach_slo): with no tracker
        # attached, nothing extra is registered and render() stays
        # byte-identical to the golden.
        self.slo = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe_request(self, status_code: int,
                        latency_s: Optional[float] = None) -> None:
        """Count one finished HTTP request; latency is recorded if given."""
        code = int(status_code)
        cls = f"{code // 100}xx"
        self._requests.inc(labels={"code": code, "class": cls})
        self._requests_class.inc(labels={"class": cls})
        if latency_s is not None:
            self._latency.observe(latency_s)
        if self.slo is not None:
            self.slo.observe(code, latency_s)

    def attach_slo(self, tracker) -> "ServerMetrics":
        """Attach an :class:`~repro.obs.slo.SLOTracker` to this registry.

        The tracker's budget/burn gauges join the exposition and every
        ``observe_request`` is forwarded; scrapes re-evaluate first so
        the gauges are always current.
        """
        self.slo = tracker
        return self

    def observe_batch(self, size: int) -> None:
        """Record one executed micro-batch of ``size`` stacked windows."""
        self._batch_size.observe(size)

    def set_queue_depth_fn(self, fn: Callable[[], int]) -> None:
        """Register a callable polled for the live queue depth gauge."""
        self._queue_depth.set_fn(fn)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def latency_quantiles(
            self, quantiles: Sequence[float] = QUANTILES) -> Dict[float, float]:
        """Exact quantiles over the recent-latency ring buffer (seconds)."""
        return self._latency.quantiles(quantiles)

    def queue_depth(self) -> int:
        return int(self._queue_depth.value())

    def snapshot(self) -> dict:
        """All counters as plain data (tests, ``/v1/models``, the bench)."""
        by_code = {int(labels["code"]): int(n)
                   for labels, n in self._requests.samples()}
        by_class = {labels["class"]: int(n)
                    for labels, n in self._requests_class.samples()}
        batch_sizes = self._batch_size.counts()
        windows, batches = self._batch_size.snapshot()
        lat_sum, lat_count = self._latency.snapshot()
        quantiles = self.latency_quantiles()
        return {
            "requests_by_code": by_code,
            "requests_by_class": by_class,
            "requests_total": sum(by_code.values()),
            "queue_depth": self.queue_depth(),
            "batch_sizes": batch_sizes,
            "batches_total": batches,
            "windows_total": windows,
            "mean_batch_size": (windows / batches) if batches else 0.0,
            "latency_sum_s": lat_sum,
            "latency_count": lat_count,
            "latency_quantiles_s": {str(q): v for q, v in quantiles.items()},
        }

    def render(self) -> str:
        """The Prometheus text exposition served at ``GET /metrics``."""
        if self.slo is not None:
            self.slo.evaluate()
        return self.registry.render()
