"""Thread-safe serving telemetry with a Prometheus-style text exposition.

One :class:`ServerMetrics` instance is shared by the HTTP front end and the
micro-batcher.  It tracks:

* request counts by HTTP status code (and status class: 2xx/4xx/5xx);
* the live batcher queue depth (read through a registered gauge callback);
* the distribution of executed batch sizes (exact counts per size);
* request latency — both fixed-bucket histogram counts and p50/p95/p99
  quantiles computed from a bounded ring buffer of recent observations.

``render()`` emits the Prometheus text format (``GET /metrics``);
``snapshot()`` returns the same numbers as a dict for tests and the
serving benchmark.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Callable, Dict, Optional, Sequence

#: Upper bounds (seconds) of the latency histogram buckets.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0)

QUANTILES = (0.5, 0.95, 0.99)


class ServerMetrics:
    """Aggregates serving counters; every method is safe to call concurrently."""

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self._requests_by_code: Counter = Counter()
        self._batch_sizes: Counter = Counter()
        self._batches_total = 0
        self._windows_total = 0
        self._latency_bucket_counts = [0] * (len(LATENCY_BUCKETS) + 1)
        self._latency_sum = 0.0
        self._latency_count = 0
        self._recent_latencies: deque = deque(maxlen=latency_window)
        self._queue_depth_fn: Optional[Callable[[], int]] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe_request(self, status_code: int,
                        latency_s: Optional[float] = None) -> None:
        """Count one finished HTTP request; latency is recorded if given."""
        with self._lock:
            self._requests_by_code[int(status_code)] += 1
            if latency_s is not None:
                self._latency_sum += latency_s
                self._latency_count += 1
                self._recent_latencies.append(latency_s)
                for i, bound in enumerate(LATENCY_BUCKETS):
                    if latency_s <= bound:
                        self._latency_bucket_counts[i] += 1
                        break
                else:
                    self._latency_bucket_counts[-1] += 1

    def observe_batch(self, size: int) -> None:
        """Record one executed micro-batch of ``size`` stacked windows."""
        with self._lock:
            self._batch_sizes[int(size)] += 1
            self._batches_total += 1
            self._windows_total += size

    def set_queue_depth_fn(self, fn: Callable[[], int]) -> None:
        """Register a callable polled for the live queue depth gauge."""
        self._queue_depth_fn = fn

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def latency_quantiles(
            self, quantiles: Sequence[float] = QUANTILES) -> Dict[float, float]:
        """Exact quantiles over the recent-latency ring buffer (seconds)."""
        with self._lock:
            samples = sorted(self._recent_latencies)
        if not samples:
            return {q: 0.0 for q in quantiles}
        last = len(samples) - 1
        return {q: samples[min(last, int(round(q * last)))] for q in quantiles}

    def queue_depth(self) -> int:
        fn = self._queue_depth_fn
        try:
            return int(fn()) if fn is not None else 0
        except Exception:
            return 0

    def snapshot(self) -> dict:
        """All counters as plain data (tests, ``/v1/models``, the bench)."""
        with self._lock:
            by_code = dict(self._requests_by_code)
            batch_sizes = dict(self._batch_sizes)
            batches = self._batches_total
            windows = self._windows_total
            lat_sum, lat_count = self._latency_sum, self._latency_count
        by_class: Dict[str, int] = {}
        for code, n in by_code.items():
            key = f"{code // 100}xx"
            by_class[key] = by_class.get(key, 0) + n
        quantiles = self.latency_quantiles()
        return {
            "requests_by_code": by_code,
            "requests_by_class": by_class,
            "requests_total": sum(by_code.values()),
            "queue_depth": self.queue_depth(),
            "batch_sizes": batch_sizes,
            "batches_total": batches,
            "windows_total": windows,
            "mean_batch_size": (windows / batches) if batches else 0.0,
            "latency_sum_s": lat_sum,
            "latency_count": lat_count,
            "latency_quantiles_s": {str(q): v for q, v in quantiles.items()},
        }

    def render(self) -> str:
        """The Prometheus text exposition served at ``GET /metrics``."""
        with self._lock:
            by_code = sorted(self._requests_by_code.items())
            batch_sizes = sorted(self._batch_sizes.items())
            bucket_counts = list(self._latency_bucket_counts)
            lat_sum, lat_count = self._latency_sum, self._latency_count
            batches, windows = self._batches_total, self._windows_total
        quantiles = self.latency_quantiles()
        by_class: Counter = Counter()
        for code, n in by_code:
            by_class[f"{code // 100}xx"] += n

        lines = [
            "# HELP repro_requests_total HTTP requests served, by status code.",
            "# TYPE repro_requests_total counter",
        ]
        for code, n in by_code:
            cls = f"{code // 100}xx"
            lines.append(
                f'repro_requests_total{{code="{code}",class="{cls}"}} {n}')
        lines += [
            "# HELP repro_requests_class_total HTTP requests, by status class.",
            "# TYPE repro_requests_class_total counter",
        ]
        for cls, n in sorted(by_class.items()):
            lines.append(f'repro_requests_class_total{{class="{cls}"}} {n}')
        lines += [
            "# HELP repro_queue_depth Windows waiting in the batcher queue.",
            "# TYPE repro_queue_depth gauge",
            f"repro_queue_depth {self.queue_depth()}",
            "# HELP repro_batch_size Executed micro-batch sizes.",
            "# TYPE repro_batch_size histogram",
        ]
        cumulative = 0
        for size, n in batch_sizes:
            cumulative += n
            lines.append(f'repro_batch_size_bucket{{le="{size}"}} {cumulative}')
        lines += [
            f'repro_batch_size_bucket{{le="+Inf"}} {batches}',
            f"repro_batch_size_sum {windows}",
            f"repro_batch_size_count {batches}",
            "# HELP repro_request_latency_seconds Forecast request latency.",
            "# TYPE repro_request_latency_seconds histogram",
        ]
        cumulative = 0
        for bound, n in zip(LATENCY_BUCKETS, bucket_counts):
            cumulative += n
            lines.append(
                f'repro_request_latency_seconds_bucket{{le="{bound}"}} '
                f"{cumulative}")
        lines += [
            f'repro_request_latency_seconds_bucket{{le="+Inf"}} {lat_count}',
            f"repro_request_latency_seconds_sum {lat_sum:.6f}",
            f"repro_request_latency_seconds_count {lat_count}",
        ]
        for q, value in quantiles.items():
            lines.append(
                f'repro_request_latency_seconds{{quantile="{q}"}} {value:.6f}')
        return "\n".join(lines) + "\n"
