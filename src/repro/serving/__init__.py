"""Model-serving subsystem: registry, micro-batcher, HTTP server, metrics.

Stdlib-only (``http.server`` + ``threading`` + ``queue``) serving layer
over the NumPy substrate — see DESIGN.md section 5f for the batcher state
machine, the per-model batch policies behind the bit-identical determinism
guarantee, and the admission-control contract.
"""

from .batcher import (
    BatcherClosedError, DeadlineExceededError, InvalidWindowError,
    MicroBatcher, QueueFullError, single_forward,
)
from .metrics import LATENCY_BUCKETS, ServerMetrics
from .registry import (
    ModelEntry, ModelRegistry, UnknownModelError, resolve_batch_policy,
)
from .server import (
    ForecastServer, RequestError, ServingConfig, build_server, run_server,
)

# The cluster tier (repro.serving.cluster) is imported lazily by its
# consumers: it pulls in multiprocessing machinery single-process
# serving never needs.

__all__ = [
    "BatcherClosedError", "DeadlineExceededError", "InvalidWindowError",
    "MicroBatcher", "QueueFullError", "single_forward",
    "LATENCY_BUCKETS", "ServerMetrics",
    "ModelEntry", "ModelRegistry", "UnknownModelError", "resolve_batch_policy",
    "ForecastServer", "RequestError", "ServingConfig", "build_server",
    "run_server",
]
