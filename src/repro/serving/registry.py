"""Checkpoint registry for serving: load, validate, atomically hot-reload.

A :class:`ModelRegistry` maps serving names to immutable
:class:`ModelEntry` snapshots.  Each entry bundles the rebuilt model, its
validated checkpoint metadata, and the *batch policy* the micro-batcher
must respect:

* ``"stack"``     — the forward pass is a pure per-sample map; any windows
  of the same shape/dtype may share a stacked forward;
* ``"signature"`` — the model couples samples through data-dependent
  selection (TS3Net's Eq. 2 period detection averages spectra over the
  batch) but exposes ``batch_signature(window)``; only windows with equal
  signatures may be stacked;
* ``"solo"``      — cross-sample coupling with no groupable signature
  (TimesNet's amplitude weights, Autoformer's batch-mean autocorrelation);
  every window runs in its own forward.  Unknown architectures default
  here, so serving a new model can never silently break the determinism
  guarantee.

Hot reload builds the replacement entry *outside* the registry lock and
swaps the mapping in one assignment, so concurrent requests always see
either the complete old entry or the complete new one — never a
half-loaded model.  In-flight batches keep a reference to the entry they
were admitted under; the batcher keys groups on ``(name, version)`` so a
reload boundary can never mix weights inside one stacked forward.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..autodiff import make_compiled_forward
from ..nn import load_checkpoint, peek_metadata, validate_checkpoint_metadata
# The policy classifier lives with the TaskSpec registry now (every task
# declares its serving batch policy there); re-exported for compatibility.
from ..tasks.registry import (  # noqa: F401
    STACK_SAFE_CLASSES, get_task, resolve_batch_policy,
)


class UnknownModelError(KeyError):
    """Requested serving name is not registered."""


@dataclass(frozen=True)
class ModelEntry:
    """One immutable registered model snapshot."""

    name: str
    path: str
    model: Any
    meta: Dict[str, Any]
    policy: str
    dtype: np.dtype
    version: int
    # CompiledForward for this entry's weights, or None (registry built
    # without --compiled, or the architecture is not traceable).  Living
    # on the immutable entry makes hot-reload invalidation structural:
    # the swapped-in entry carries a fresh instance, so no compiled graph
    # can outlive the weights it was traced against.
    compiled: Optional[Any] = None
    loaded_at: float = field(default_factory=time.time)

    @property
    def task(self) -> str:
        return self.meta["task"]

    @property
    def seq_len(self) -> int:
        return self.meta["seq_len"]

    @property
    def pred_len(self) -> int:
        return self.meta["pred_len"]

    @property
    def c_in(self) -> int:
        return self.meta["c_in"]

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for ``GET /v1/models``."""
        return {
            "name": self.name,
            "model": self.meta["model"],
            "task": self.task,
            "seq_len": self.seq_len,
            "pred_len": self.pred_len,
            "c_in": self.c_in,
            "dtype": str(self.dtype),
            "batch_policy": self.policy,
            "compiled": self.compiled is not None,
            "version": self.version,
            "loaded_at": self.loaded_at,
            "checkpoint": self.path,
            "parameters": int(self.model.num_parameters()),
        }


class ModelRegistry:
    """Named, hot-reloadable model store shared by the server threads."""

    def __init__(self, expect_task: Optional[str] = None,
                 compiled: bool = False, compile_workers: int = 1):
        self._lock = threading.Lock()
        self._entries: Dict[str, ModelEntry] = {}
        self._next_version = 1
        self._expect_task = expect_task
        self._compiled = compiled
        self._compile_workers = compile_workers

    # ------------------------------------------------------------------
    def _make_entry(self, name: str, path: str, meta: Dict[str, Any],
                    load_weights, version: int) -> ModelEntry:
        # Validation checks the checkpoint's task against the registry and
        # names the known tasks when it is unrecognised; the model is then
        # rebuilt through that task's spec (one door for every consumer).
        meta = validate_checkpoint_metadata(
            meta, expect_task=self._expect_task, source=path)
        spec = get_task(meta["task"])
        model = spec.rebuild(meta)
        load_weights(model)
        model.eval()
        params = model.parameters()
        dtype = params[0].data.dtype if params else np.dtype(np.float64)
        compiled = (make_compiled_forward(model, workers=self._compile_workers)
                    if self._compiled else None)
        return ModelEntry(name=name, path=path, model=model, meta=meta,
                          policy=spec.serving.batch_policy(model),
                          dtype=np.dtype(dtype), version=version,
                          compiled=compiled)

    def _build_entry(self, name: str, path: str, version: int) -> ModelEntry:
        return self._make_entry(
            name, path, peek_metadata(path),
            lambda model: load_checkpoint(model, path), version)

    def _claim_version(self, version: Optional[int]) -> int:
        """Reserve the next version (or record an externally assigned one).

        Cluster workers pass the spool-published version explicitly so the
        batch key ``(name, version)`` means the same weights on every
        worker; the counter stays monotonic past explicit versions so
        mixed use can never reissue a version.
        """
        with self._lock:
            if version is None:
                version = self._next_version
            self._next_version = max(self._next_version, version + 1)
        return version

    def load(self, name: str, path: str) -> ModelEntry:
        """Register ``path`` under ``name``; rejects duplicate names."""
        with self._lock:
            if name in self._entries:
                raise ValueError(f"model name {name!r} already registered; "
                                 "use reload() to replace it")
        version = self._claim_version(None)
        entry = self._build_entry(name, path, version)
        with self._lock:
            self._entries[name] = entry
        return entry

    def reload(self, name: str, path: Optional[str] = None) -> ModelEntry:
        """Atomically replace ``name`` with a freshly loaded checkpoint.

        The new entry is fully built and validated before the swap; on any
        load/validation error the registry keeps serving the old entry.
        """
        old = self.get(name)
        version = self._claim_version(None)
        entry = self._build_entry(name, path or old.path, version)
        with self._lock:
            self._entries[name] = entry
        return entry

    # ------------------------------------------------------------------
    def load_attached(self, name: str, shared,
                      version: Optional[int] = None) -> ModelEntry:
        """Register a model whose weights live in a shared mapping.

        ``shared`` is a :class:`~repro.serving.cluster.shm.SharedWeights`:
        the rebuilt model's parameters become zero-copy views into the
        published copy-on-write blob, so N workers attaching the same
        version share one physical copy of the weights.  ``version``
        should be the spool's published version so batch keys agree
        across the worker pool.
        """
        with self._lock:
            if name in self._entries:
                raise ValueError(f"model name {name!r} already registered; "
                                 "use reload_attached() to replace it")
        version = self._claim_version(
            version if version is not None else shared.version)
        entry = self._make_entry(name, f"shm://{shared.path}", shared.meta,
                                 shared.load_into, version)
        with self._lock:
            self._entries[name] = entry
        return entry

    def reload_attached(self, name: str, shared,
                        version: Optional[int] = None) -> ModelEntry:
        """Atomically swap ``name`` onto a freshly published shared version.

        Same hot-reload contract as :meth:`reload`: the entry is built
        outside the lock and swapped in one assignment, and the batcher's
        ``(name, version)`` keys guarantee no stacked forward ever mixes
        the old and new weights.
        """
        self.get(name)                     # raises UnknownModelError
        version = self._claim_version(
            version if version is not None else shared.version)
        entry = self._make_entry(name, f"shm://{shared.path}", shared.meta,
                                 shared.load_into, version)
        with self._lock:
            self._entries[name] = entry
        return entry

    # ------------------------------------------------------------------
    def get(self, name: str) -> ModelEntry:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise UnknownModelError(name) from None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            entries = list(self._entries.values())
        return [e.describe() for e in sorted(entries, key=lambda e: e.name)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def default_name(self, task: Optional[str] = None) -> Optional[str]:
        """The single registered name, or None when ambiguous/empty.

        With ``task``, considers only entries trained for that task — the
        per-task endpoints default to "the one model serving this task".
        """
        with self._lock:
            names = [name for name, entry in self._entries.items()
                     if task is None or entry.task == task]
        return names[0] if len(names) == 1 else None
