"""Deterministic parallel dispatch of compiled-graph wavefronts.

The compiler levels the instruction list (level = 1 + max parent level),
which exposes the forward's natural parallelism: TS3Net's m mother-wavelet
CWT branches and the trend/regular/fluctuant heads land on common levels
with no data edges between them.  Replay executes levels in order with a
barrier between them; *within* a level, instructions are split into
contiguous index-ordered chunks across a shared thread pool.

Determinism argument (bit-identical to serial): instructions on one level
are pairwise independent by construction — each writes only its own
output slot (and saved tuple) and reads slots produced on strictly lower
levels, so no scheduling order can change any operand.  Each instruction
performs the *same* NumPy calls it would serially; IEEE-754 arithmetic is
deterministic per call, so every output is bitwise identical regardless
of interleaving.  The barrier join is by future order, but results are
disjoint writes, so join order is immaterial.

Stateful instructions (dropout consuming the global RNG stream) never
reach this module — the compiler pins such graphs to serial capture-order
replay so the RNG stream matches eager execution draw-for-draw.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

# Ops whose per-call cost justifies a thread handoff; a level is only
# parallelised when it carries at least two of these.
HEAVY_OPS = frozenset({
    "conv2d", "matmul", "cwt_amplitude", "iwt", "max_pool2d", "unfold2d",
    "fold2d",
})

_pool_lock = threading.Lock()
_pool: Optional[ThreadPoolExecutor] = None
_pool_size = 0


def _get_pool(workers: int) -> ThreadPoolExecutor:
    """Process-wide executor, grown (never shrunk) to ``workers`` threads."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < workers:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-compiled")
            _pool_size = workers
        return _pool


def compute_levels(instrs: Sequence) -> List[int]:
    """Wavefront level per instruction: 1 + max level of producing parents."""
    producer_level: Dict[int, int] = {}
    levels = []
    for ins in instrs:
        level = 1 + max((producer_level.get(s, 0) for s in ins.parent_slots),
                        default=0)
        producer_level[ins.out_slot] = level
        levels.append(level)
    return levels


def plan_waves(instrs: Sequence, min_heavy: int = 2) -> List[List[int]]:
    """Group instruction indices into executable waves (levels in order).

    Levels with fewer than ``min_heavy`` heavy instructions are merged
    into serial runs — a thread handoff costs more than a small ufunc.
    Returns a list of waves; single-element waves (or waves marked serial
    by the executor) run inline.
    """
    by_level: Dict[int, List[int]] = {}
    for i, ins in enumerate(instrs):
        by_level.setdefault(ins.level, []).append(i)
    waves = []
    for level in sorted(by_level):
        waves.append(by_level[level])
    return waves


def wave_is_parallel(instrs: Sequence, wave: List[int],
                     min_heavy: int = 2) -> bool:
    heavy = sum(1 for i in wave if instrs[i].op in HEAVY_OPS)
    return len(wave) >= 2 and heavy >= min_heavy


def run_waves(runners: Sequence[Callable[[], None]],
              waves: Sequence[Sequence[int]],
              parallel_flags: Sequence[bool],
              workers: int,
              thread_init: Optional[Callable[[], None]] = None) -> None:
    """Execute ``runners`` wave by wave; parallel waves use the pool.

    ``thread_init`` runs at the start of every worker chunk so pool
    threads adopt the replaying thread's engine state (default dtype) —
    fresh threads otherwise boot with ``_EngineState`` defaults.
    """
    if workers <= 1:
        for wave in waves:
            for i in wave:
                runners[i]()
        return
    pool = _get_pool(workers)
    for wave, parallel in zip(waves, parallel_flags):
        if not parallel:
            for i in wave:
                runners[i]()
            continue
        chunks = _chunk(wave, workers)

        def run_chunk(chunk):
            if thread_init is not None:
                thread_init()
            for i in chunk:
                runners[i]()

        futures = [pool.submit(run_chunk, chunk) for chunk in chunks[1:]]
        run_chunk(chunks[0])  # the replaying thread takes the first share
        for fut in futures:
            fut.result()


def _chunk(wave: Sequence[int], workers: int) -> List[List[int]]:
    """Deterministic contiguous split of a wave into <= ``workers`` chunks."""
    n = min(workers, len(wave))
    size, extra = divmod(len(wave), n)
    chunks, start = [], 0
    for k in range(n):
        end = start + size + (1 if k < extra else 0)
        chunks.append(list(wave[start:end]))
        start = end
    return chunks
