"""Graph compiler for the op IR: capture/replay compiled execution.

Eager ``apply()`` pays per-op overhead every step: a registry lookup, an
``OpContext``, a fresh ``Tensor``/``OpNode`` pair, hook dispatch, and —
on backward — a full DFS toposort of the graph.  For a fixed model and
batch shape the graph is identical step after step, so all of that work
can be done **once**: this module traces a step through the tape's
capture sink, compiles the trace into a flat instruction program plus an
exactly-eager-ordered backward program, and replays the programs with
plain closures over preallocated boxes.

Three independently benchmarked optimisations ride on the compiled form:

* **elementwise fusion** — chains of single-consumer elementwise ops are
  collapsed into generated registry entries (``fused:add+mul:1a2b3c4d``)
  whose backward is composed analytically from the member backwards, in
  the member order, so gradients are bit-identical to eager execution;
* **ahead-of-time memory planning** (:mod:`repro.autodiff.memplan`) —
  ufunc instructions write ``out=`` into buffers pooled from traced
  liveness intervals and reused across steps;
* **parallel subgraph dispatch** (:mod:`repro.autodiff.schedule`) —
  topologically independent wavefronts (TS3Net's per-wavelet CWT
  branches, the three decomposition heads) execute on a shared thread
  pool, bit-identical to serial replay.

Correctness is *validated, then assumed*: the first replay of every
(shape, dtype, mode, trace-signature) key runs the eager step too and
compares loss, every parameter gradient, and the RNG stream position
bitwise.  Any mismatch — or any construct the tracer cannot prove safe —
permanently falls back to eager execution for that step object and emits
a ``compile.fallback`` observability event.  Shape changes (a short
final batch, a new horizon) simply miss the graph cache and trigger a
fresh capture, never wrong results.
"""

from __future__ import annotations

import copy
import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import schedule
from .graph import (
    OpContext, _backward_hooks, _clock, _forward_hooks, get_op, register_op,
    registered_ops,
)
from .memplan import UFUNC_OPS, BufferPlan
from .tensor import Tensor, _state, _topo_order, as_array, no_grad, unbroadcast

__all__ = [
    "CompileUnsupported", "CompiledGraph", "CompiledStep", "CompiledForward",
    "make_compiled_forward", "ELEMENTWISE",
]


class CompileUnsupported(RuntimeError):
    """The traced step contains a construct the compiler cannot replay."""


# Ops eligible for fusion: shape-preserving/broadcasting pointwise math
# whose backward reads only ``node.saved`` (true of every registry entry).
ELEMENTWISE = frozenset({
    "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "sqrt", "abs",
    "tanh", "sin", "cos", "clip", "where", "relu", "leaky_relu", "gelu",
    "sigmoid",
})

# Sentinel replacing the process-global RNG in baked kwargs; re-resolved
# via get_rng() at every replay so set_seed() keeps working and the
# compiled dropout stream matches eager draw-for-draw.
_GLOBAL_RNG = object()


def _rng():
    from ..utils import get_rng
    return get_rng()


def _rng_state():
    return copy.deepcopy(_rng().bit_generator.state)


def _restore_rng(state) -> None:
    _rng().bit_generator.state = copy.deepcopy(state)


def _emit_event(name: str, attrs: Dict[str, Any]) -> None:
    try:
        from ..obs import runtime as _obs
        observer = _obs.active()
    except Exception:
        return
    if observer is not None:
        try:
            observer.event(name, attrs)
        except Exception:
            pass


def _flat_retained_nbytes(saved) -> int:
    """`_retained_nbytes` that also recurses into nested containers, so a
    fused op's list-of-minis saved state is charged like the member ops'
    flat tuples would have been."""
    seen: set = set()
    total = 0
    stack = [saved]
    while stack:
        value = stack.pop()
        if isinstance(value, np.ndarray):
            root = value
            while isinstance(root.base, np.ndarray):
                root = root.base
            if id(root) not in seen:
                seen.add(id(root))
                total += root.nbytes
        elif isinstance(value, (tuple, list)):
            stack.extend(value)
    return total


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------

class _Box:
    """A one-field stand-in for Tensor during replay: op forwards read only
    ``parent.data`` (checked property of the registry), so replay skips the
    Tensor constructor entirely."""

    __slots__ = ("data",)

    def __init__(self, data=None):
        self.data = data


class _NullCtx:
    """Shared no-op context for instructions that never run backward."""

    __slots__ = ()

    def save(self, *values) -> None:
        pass


_NULL_CTX = _NullCtx()


class _ReplayNode:
    """Doubles as the forward ctx and backward node of one instruction."""

    __slots__ = ("op", "saved", "saved_bytes", "freed", "parents", "needs",
                 "mini_needs")

    def __init__(self, op: str):
        self.op = op
        self.saved: tuple = ()
        self.saved_bytes = 0
        self.freed = False
        self.parents: tuple = ()
        # Static per-parent gradient mask (and, for fused ops, its
        # member-wise expansion) — compiled DCE: op backwards that honour
        # ``needs`` skip gradients the sink would throw away.
        self.needs: Optional[tuple] = None
        self.mini_needs: Optional[list] = None

    def save(self, *values) -> None:
        self.saved = values


class _MiniNode:
    """Per-member node shim inside a fused op's composed backward."""

    __slots__ = ("op", "saved", "needs")

    def __init__(self, op: str, saved: tuple, needs=None):
        self.op = op
        self.saved = saved
        self.needs = needs


class _Rec:
    """One captured apply() call."""

    __slots__ = ("index", "op", "parent_slots", "kwargs", "rng_keys",
                 "out_slot", "out_arr", "requires", "stateful")

    def __init__(self, index, op, parent_slots, kwargs, rng_keys, out_slot,
                 out_arr, requires):
        self.index = index
        self.op = op
        self.parent_slots = parent_slots
        self.kwargs = kwargs
        self.rng_keys = rng_keys
        self.out_slot = out_slot
        self.out_arr = out_arr
        self.requires = requires
        self.stateful = bool(rng_keys)


class _CaptureTape:
    """Capture sink installed in ``_state.capture`` for one traced step.

    Slots are integers keyed by ``id(array)`` at record time; the tape
    holds strong references to every slot array so ids cannot be reused
    while the tape (or the graph built from it) is alive.
    """

    def __init__(self) -> None:
        self.records: List[_Rec] = []
        self.slot_arrays: List[np.ndarray] = []
        self.slot_of: Dict[int, int] = {}
        self.leaf_slots: Dict[int, Tensor] = {}
        self.node_to_rec: Dict[int, _Rec] = {}
        self._nodes: List[Any] = []  # keep OpNodes alive for id stability

    def _slot_for_array(self, arr: np.ndarray) -> int:
        slot = len(self.slot_arrays)
        self.slot_arrays.append(arr)
        self.slot_of[id(arr)] = slot
        return slot

    def record(self, name, parents, kwargs, out, node) -> None:
        parent_slots = []
        for p in parents:
            slot = self.slot_of.get(id(p.data))
            if slot is None:
                slot = self._slot_for_array(p.data)
                self.leaf_slots[slot] = p
            parent_slots.append(slot)
        baked, rng_keys = self._scrub_kwargs(name, kwargs)
        out_slot = self._slot_for_array(out.data)
        rec = _Rec(len(self.records), name, tuple(parent_slots), baked,
                   rng_keys, out_slot, out.data, node is not None)
        self.records.append(rec)
        if node is not None:
            self.node_to_rec[id(node)] = rec
            self._nodes.append(node)

    def _scrub_kwargs(self, name, kwargs):
        rng_keys = []
        baked = {}
        for key, value in kwargs.items():
            if isinstance(value, np.random.Generator):
                if value is not _rng():
                    raise CompileUnsupported(
                        f"op {name!r} consumes a non-global RNG; the "
                        "compiler can only re-resolve the process RNG")
                baked[key] = _GLOBAL_RNG
                rng_keys.append(key)
            else:
                baked[key] = value
        return baked, tuple(rng_keys)


@contextmanager
def _capturing(tape: _CaptureTape):
    if _state.capture is not None:
        raise CompileUnsupported("nested graph capture")
    _state.capture = tape.record
    try:
        yield tape
    finally:
        _state.capture = None


# ---------------------------------------------------------------------------
# Fusion
# ---------------------------------------------------------------------------

class _FusedSpec:
    """A generated fused elementwise op.

    ``steps`` is ``[(member OpSpec, template, kwargs), ...]`` where the
    template maps each member argument either to a fused parent index or
    to ``None`` meaning "the previous member's output".  Forward runs the
    member forwards in order, saving each member's ctx tuple; backward
    runs the member backwards in reverse, threading the interior gradient
    exactly as the eager staged-buffer walk would (single interior
    consumer, so the interior grad is the staged value verbatim).
    """

    def __init__(self, name, steps, parent_shapes, grad_parents):
        self.name = name
        self.steps = steps
        self._parent_shapes = parent_shapes
        self._grad_parents = grad_parents

    def forward(self, ctx, *parents, **kwargs):
        if ctx is _NULL_CTX:
            # Inference replay: nothing is saved for backward, so skip the
            # per-member context and argument-metadata bookkeeping.
            prev = None
            for spec, template, kw in self.steps:
                args = tuple(prev if t is None else parents[t]
                             for t in template)
                prev = _Box(spec.forward(_NULL_CTX, *args, **kw))
            return prev.data
        prev = None
        minis = []
        for spec, template, kw in self.steps:
            args = tuple(prev if t is None else parents[t] for t in template)
            mctx = OpContext()
            data = spec.forward(mctx, *args, **kw)
            # Only the interior hand-off (``prev``) needs argument metadata
            # in backward; external parents are coerced by the outer sink.
            minis.append((mctx.saved,
                          None if prev is None
                          else (prev.data.shape, prev.data.dtype)))
            prev = _Box(data)
        ctx.save(minis)
        return prev.data

    def backward(self, node, grad, sink):
        (minis,) = node.saved
        # Member-wise needs masks come precomputed from the compiled graph
        # (the spec itself is shared across graphs with different grad
        # patterns, so they cannot be baked in here); eager dispatch of a
        # fused op (grad checks) computes everything.
        mini_needs = getattr(node, "mini_needs", None)
        g = grad
        for k in range(len(self.steps) - 1, -1, -1):
            spec, template, _kw = self.steps[k]
            saved, prev_meta = minis[k]
            acc: List[np.ndarray] = []

            def msink(j, gj, _template=template, _meta=prev_meta, _acc=acc):
                t = _template[j]
                if t is None:
                    # Interior hand-off: coerce exactly as the eager sink
                    # would when staging this member's parent gradient
                    # (no-op fast path when already shaped/typed).
                    shape, dtype = _meta
                    if (type(gj) is not np.ndarray or gj.shape != shape
                            or gj.dtype != dtype):
                        gj = unbroadcast(np.asarray(gj, dtype=dtype), shape)
                    _acc.append(gj)
                else:
                    # External parent: the outer sink owns the grad-pattern
                    # check and coercion (graphs sharing this cached spec
                    # can have different grad patterns at the same slot).
                    sink(t, gj)

            spec.backward(
                _MiniNode(spec.name, saved,
                          None if mini_needs is None else mini_needs[k]),
                g, msink)
            if k == 0:
                break
            if not acc:
                return
            # Two interior contributions (e.g. mul(prev, prev)) accumulate
            # in sink order, matching the eager staged "first zero-copy,
            # second buf + g" sequence bit for bit.
            g = acc[0] if len(acc) == 1 else acc[0] + acc[1]

    def sample(self, rng):
        tensors = []
        for i, shape in enumerate(self._parent_shapes):
            small = tuple(min(d, 2) for d in shape)
            arr = np.abs(rng.standard_normal(small)) + 0.5
            tensors.append(Tensor(arr, requires_grad=(i in self._grad_parents)))
        name = self.name

        def fn(*ts):
            from .tensor import apply
            return apply(name, *ts)

        return fn, tensors


_FUSED_CACHE: Dict[str, Any] = {}
_fused_lock = threading.Lock()


def _build_fused(recs, chain, requires_slot, slot_arrays):
    """Create (or reuse) the fused OpSpec for ``chain`` of rec indices.

    Returns ``(spec, parent_slots)`` where ``parent_slots`` lists the
    fused op's external inputs in first-use order.
    """
    parent_index: Dict[int, int] = {}
    parent_slots: List[int] = []
    steps_meta = []
    prev_out = None
    for ci, ri in enumerate(chain):
        rec = recs[ri]
        template = []
        for pslot in rec.parent_slots:
            if ci > 0 and pslot == prev_out:
                template.append(None)
            else:
                idx = parent_index.get(pslot)
                if idx is None:
                    idx = parent_index[pslot] = len(parent_slots)
                    parent_slots.append(pslot)
                template.append(idx)
        steps_meta.append((rec.op, tuple(template), rec.kwargs))
        prev_out = rec.out_slot
    sig = repr([(op, tpl, tuple(sorted((k, repr(v)) for k, v in kw.items())))
                for op, tpl, kw in steps_meta])
    with _fused_lock:
        spec = _FUSED_CACHE.get(sig)
        if spec is None:
            digest = hashlib.sha1(sig.encode()).hexdigest()[:8]
            name = ("fused:" + "+".join(op for op, _, _ in steps_meta)
                    + ":" + digest)
            fused = _FusedSpec(
                name,
                [(get_op(op), tpl, kw) for op, tpl, kw in steps_meta],
                [slot_arrays[s].shape for s in parent_slots],
                frozenset(i for i, s in enumerate(parent_slots)
                          if requires_slot.get(s, False)))
            if name not in registered_ops():
                register_op(name)(fused)
            spec = _FUSED_CACHE[sig] = get_op(name)
    return spec, parent_slots


def _find_chains(recs, outputs, requires_slot):
    """Greedy single-consumer elementwise chains, longest-first from each
    eligible head.  Every guard here is a *bitwise-identity* argument:

    * interior slots have exactly one consuming rec, so their eager grad
      is the staged value verbatim — composing backwards in member order
      reproduces it;
    * extras (non-chain member arguments) must not require grad and must
      be produced before the chain head, since the fused forward runs at
      the head's program position;
    * the chain head's grad-requiring parents must receive at most two
      gradient contributions graph-wide: fusing moves the head's sink to
      the tail's backward position, which can swap contribution order,
      and IEEE addition is commutative (bit-exact) only pairwise.
    """
    consumers: Dict[int, List[int]] = {}
    contributions: Dict[int, int] = {}
    producer_idx: Dict[int, int] = {}
    for i, rec in enumerate(recs):
        producer_idx[rec.out_slot] = i
        seen_here = set()
        for pslot in rec.parent_slots:
            if rec.requires:
                contributions[pslot] = contributions.get(pslot, 0) + 1
            if pslot not in seen_here:
                consumers.setdefault(pslot, []).append(i)
                seen_here.add(pslot)

    chains = []
    in_chain: set = set()
    for i, rec in enumerate(recs):
        if i in in_chain or rec.op not in ELEMENTWISE or rec.stateful:
            continue
        chain = [i]
        cur = rec
        while True:
            out = cur.out_slot
            cons = consumers.get(out, [])
            if out in outputs or len(cons) != 1:
                break
            j = cons[0]
            nxt = recs[j]
            if (j in in_chain or nxt.op not in ELEMENTWISE or nxt.stateful
                    or nxt.requires != rec.requires
                    or nxt.parent_slots.count(out) > 2):
                break
            ok = True
            for pslot in nxt.parent_slots:
                if pslot == out:
                    continue
                if requires_slot.get(pslot, False):
                    ok = False
                    break
                prod = producer_idx.get(pslot)
                if prod is not None and prod >= chain[0]:
                    ok = False
                    break
            if not ok:
                break
            chain.append(j)
            cur = nxt
        if len(chain) < 2:
            continue
        if rec.requires and any(
                contributions.get(p, 0) > 2
                for p in set(rec.parent_slots)
                if requires_slot.get(p, False)):
            continue
        chains.append(chain)
        in_chain.update(chain)
    return chains


# ---------------------------------------------------------------------------
# Compiled graph
# ---------------------------------------------------------------------------

class _Instr:
    """One replayable instruction of the compiled forward program."""

    __slots__ = ("index", "op", "fn", "bwd", "ctx", "pboxes", "kwargs",
                 "rng_keys", "out_box", "out_slot", "parent_slots",
                 "out_arr", "stateful", "requires", "level")

    def __init__(self, index, op, fn, bwd, ctx, pboxes, kwargs, rng_keys,
                 out_box, out_slot, parent_slots, out_arr, stateful,
                 requires):
        self.index = index
        self.op = op
        self.fn = fn
        self.bwd = bwd
        self.ctx = ctx
        self.pboxes = pboxes
        self.kwargs = kwargs
        self.rng_keys = rng_keys
        self.out_box = out_box
        self.out_slot = out_slot
        self.parent_slots = parent_slots
        self.out_arr = out_arr
        self.stateful = stateful
        self.requires = requires
        self.level = 0


class CompiledGraph:
    """A captured step compiled to forward/backward instruction programs.

    The graph replays **interpretively** until :meth:`finalize` is called
    (after bitwise validation against the eager step); finalization swaps
    in specialised per-instruction closures, enables the buffer pool, and
    arms parallel wave dispatch.
    """

    def __init__(self, tape: _CaptureTape, batch_arrays: Sequence[np.ndarray],
                 out_tensor: Tensor, mode: str, workers: int = 1):
        if not tape.records:
            raise CompileUnsupported("no ops captured")
        self.mode = mode
        self.workers = max(1, int(workers))
        self._capture_default = _state.default_dtype
        self._slot_arrays = tape.slot_arrays

        out_slot = tape.slot_of.get(id(out_tensor.data))
        if out_slot is None:
            raise CompileUnsupported(
                "the step output is not produced by a captured op")
        self._out_slot = out_slot
        outputs = frozenset({out_slot})

        recs = tape.records
        requires_slot: Dict[int, bool] = {}
        for slot, leaf in tape.leaf_slots.items():
            requires_slot[slot] = leaf.requires_grad
        for rec in recs:
            requires_slot[rec.out_slot] = rec.requires

        # --- leaf binding -------------------------------------------------
        boxes = [_Box() for _ in tape.slot_arrays]
        self._boxes = boxes
        self._out_box = boxes[out_slot]
        self._param_binds: List[Tuple[_Box, Tensor]] = []
        self._batch_binds: List[Tuple[_Box, int]] = []
        self.bound_batch: set = set()
        for slot, leaf in tape.leaf_slots.items():
            box = boxes[slot]
            if leaf.requires_grad:
                self._param_binds.append((box, leaf))
                continue
            for bi, arr in enumerate(batch_arrays):
                if leaf.data is arr:
                    self._batch_binds.append((box, bi))
                    self.bound_batch.add(bi)
                    break
            else:
                box.data = leaf.data  # baked constant (e.g. a PE table)

        # --- fusion -------------------------------------------------------
        chains = _find_chains(recs, outputs, requires_slot)
        head_of = {chain[0]: chain for chain in chains}
        member = {}
        for chain in chains:
            for ri in chain:
                member[ri] = chain
        self._fused_count = len(chains)
        self._ops_fused_away = sum(len(c) - 1 for c in chains)

        # --- instruction program -----------------------------------------
        prog: List[_Instr] = []
        rec_instr: Dict[int, _Instr] = {}
        for i, rec in enumerate(recs):
            if i in member and i not in head_of:
                continue
            chain = head_of.get(i)
            if chain is not None:
                spec, pslots = _build_fused(
                    recs, chain, requires_slot, tape.slot_arrays)
                tail = recs[chain[-1]]
                ctx = _ReplayNode(spec.name) if tail.requires else _NULL_CTX
                ins = _Instr(
                    len(prog), spec.name, spec.forward,
                    spec.backward if tail.requires else None, ctx,
                    tuple(boxes[s] for s in pslots), {}, (),
                    boxes[tail.out_slot], tail.out_slot, tuple(pslots),
                    tail.out_arr, False, tail.requires)
                rec_instr[chain[-1]] = ins
            else:
                spec = get_op(rec.op)
                ctx = _ReplayNode(rec.op) if rec.requires else _NULL_CTX
                ins = _Instr(
                    len(prog), rec.op, spec.forward,
                    spec.backward if rec.requires else None, ctx,
                    tuple(boxes[s] for s in rec.parent_slots), rec.kwargs,
                    rec.rng_keys, boxes[rec.out_slot], rec.out_slot,
                    rec.parent_slots, rec.out_arr, rec.stateful,
                    rec.requires)
                rec_instr[i] = ins
            prog.append(ins)
        self.stateful = any(ins.stateful for ins in prog)

        # --- constant folding --------------------------------------------
        # Instructions whose transitive inputs are baked constants (fixed
        # tables, decomposition kernels — not parameters, batch inputs, or
        # RNG draws) produce the same bits every replay: bake the captured
        # output and drop them from the program.  Gradient-carrying ops
        # depend on parameters, so the backward program never sees these.
        varying = {id(box) for box, _ in self._param_binds}
        varying.update(id(box) for box, _ in self._batch_binds)
        self.folded_instructions = 0
        self.folded_bytes = 0
        kept: List[_Instr] = []
        for ins in prog:
            if (ins.requires or ins.stateful or ins.rng_keys
                    or ins.out_slot == out_slot
                    or any(id(pb) in varying for pb in ins.pboxes)):
                varying.add(id(ins.out_box))
                kept.append(ins)
                continue
            ins.out_box.data = ins.out_arr
            self.folded_instructions += 1
            self.folded_bytes += ins.out_arr.nbytes
        for i, ins in enumerate(kept):
            ins.index = i
        prog = kept
        self._prog = prog

        # --- levels, waves, memory plan ----------------------------------
        for ins, level in zip(prog, schedule.compute_levels(prog)):
            ins.level = level
        self._waves: Optional[List[List[int]]] = None
        self._wave_parallel: Optional[List[bool]] = None
        if self.workers > 1 and not self.stateful:
            waves = schedule.plan_waves(prog)
            self._waves = waves
            self._wave_parallel = [
                schedule.wave_is_parallel(prog, w) for w in waves]
        self._plan = BufferPlan()
        self._plan.plan(prog, outputs, share=(mode == "infer"))
        self._runners: Optional[List[Callable[[], None]]] = None

        # --- backward program --------------------------------------------
        self._bwd: List[tuple] = []
        self._bwd_meta: List[tuple] = []
        self._bwd_run: Optional[List[tuple]] = None
        self._grads: Dict[int, np.ndarray] = {}
        self._owned: set = set()
        if mode == "train":
            self._build_backward(tape, out_tensor, member, rec_instr,
                                 requires_slot)

    # ------------------------------------------------------------------
    def _build_backward(self, tape, out_tensor, member, rec_instr,
                        requires_slot):
        grads, owned = self._grads, self._owned
        slot_arrays = tape.slot_arrays

        def make_sink(pinfo):
            def sink(index: int, g: np.ndarray) -> None:
                info = pinfo[index]
                if info is None:
                    return
                slot, shape, dtype, param = info
                # Fast path: gradients in a fixed trace almost always land
                # already shaped/typed; the coercion below is then a no-op
                # (asarray identity + unbroadcast early return).
                if (type(g) is not np.ndarray or g.shape != shape
                        or g.dtype != dtype):
                    g = unbroadcast(np.asarray(g, dtype=dtype), shape)
                if param is not None:
                    param._accumulate(g)
                    return
                buf = grads.get(slot)
                if buf is None:
                    grads[slot] = g
                elif slot in owned:
                    np.add(buf, g, out=buf)
                else:
                    grads[slot] = buf + g
                    owned.add(slot)
            return sink

        def parent_info(pslots):
            info = []
            for pslot in pslots:
                if not requires_slot.get(pslot, False):
                    info.append(None)
                    continue
                arr = slot_arrays[pslot]
                leaf = tape.leaf_slots.get(pslot)
                info.append((pslot, arr.shape, arr.dtype, leaf))
            return tuple(info)

        order = _topo_order(out_tensor)
        steps: List[tuple] = []
        meta: List[tuple] = []
        for t in reversed(order):
            node = t._node
            if node is None:
                continue
            rec = tape.node_to_rec.get(id(node))
            if rec is None:
                raise CompileUnsupported(
                    f"graph references op {node.op!r} recorded outside "
                    "the captured step")
            chain = member.get(rec.index)
            if chain is not None:
                if rec.index != chain[-1]:
                    continue  # handled by the tail's fused step
            ins = rec_instr[rec.index]
            pinfo = parent_info(ins.parent_slots)
            # Static DCE masks: which parent gradients this step actually
            # feeds anywhere (fused ops additionally get the member-wise
            # expansion — interior hand-offs are always live).
            ctx = ins.ctx
            ctx.needs = tuple(info is not None for info in pinfo)
            fused_steps = getattr(get_op(ins.op), "steps", None)
            if fused_steps is not None:
                ctx.mini_needs = [
                    tuple(True if t_ is None else ctx.needs[t_]
                          for t_ in template)
                    for _spec, template, _kw in fused_steps]
            steps.append((ins.bwd, ctx, ins.out_slot, make_sink(pinfo)))
            meta.append((ins, pinfo))
        self._bwd = steps
        self._bwd_meta = meta

    # ------------------------------------------------------------------
    # Forward replay
    # ------------------------------------------------------------------
    def _bind(self, batch_arrays: Optional[Sequence[np.ndarray]]) -> None:
        for box, leaf in self._param_binds:
            box.data = leaf.data
        if batch_arrays is not None:
            for box, bi in self._batch_binds:
                box.data = batch_arrays[bi]

    def _exec_instr(self, ins: _Instr) -> None:
        kw = ins.kwargs
        if ins.rng_keys:
            kw = dict(kw)
            live = _rng()
            for key in ins.rng_keys:
                kw[key] = live
        ins.out_box.data = ins.fn(ins.ctx, *ins.pboxes, **kw)

    def run_forward(self, batch_arrays: Optional[Sequence[np.ndarray]] = None
                    ) -> np.ndarray:
        self._bind(batch_arrays)
        if _forward_hooks:
            self._run_forward_profiled()
        elif self._runners is None:
            for ins in self._prog:
                self._exec_instr(ins)
        elif self._waves is not None:
            schedule.run_waves(self._runners, self._waves,
                               self._wave_parallel, self.workers,
                               self._thread_init)
        else:
            for run in self._runners:
                run()
        return self._out_box.data

    def _run_forward_profiled(self) -> None:
        # Interpretive, serial, unpooled: per-op hook telemetry with honest
        # saved-bytes accounting (the GraphProfiler watermark contract).
        for ins in self._prog:
            t0 = _clock()
            self._exec_instr(ins)
            elapsed = _clock() - t0
            nbytes = 0
            if ins.requires:
                node = ins.ctx
                node.saved_bytes = nbytes = _flat_retained_nbytes(node.saved)
                node.freed = False
            for hook in tuple(_forward_hooks.values()):
                hook(ins.op, elapsed, nbytes)

    def _thread_init(self) -> None:
        _state.default_dtype = self._capture_default
        _state.grad_enabled = False

    # ------------------------------------------------------------------
    # Backward replay (train graphs)
    # ------------------------------------------------------------------
    def run_backward(self) -> None:
        run = self._bwd_run
        if run is None or _backward_hooks:
            self._run_backward_interp()
            return
        # Finalised program: gradients flow through a flat cell array with
        # precomputed per-parent sink entries — no dict hashing, and every
        # produced cell is consumed exactly once, so the array self-clears.
        cells = self._cells
        owned = self._owned_flags
        for ci in self._multi_cells:
            owned[ci] = 0
        cells[self._out_cell] = np.ones_like(self._out_box.data)
        for step in run:
            step()

    def _run_backward_interp(self) -> None:
        grads, owned = self._grads, self._owned
        grads.clear()
        owned.clear()
        grads[self._out_slot] = np.ones_like(self._out_box.data)
        if _backward_hooks:
            for bwd, node, out_slot, sink in self._bwd:
                g = grads.pop(out_slot, None)
                owned.discard(out_slot)
                if g is None:
                    continue
                t0 = _clock()
                bwd(node, g, sink)
                elapsed = _clock() - t0
                freed = node.saved_bytes
                node.saved = ()
                node.saved_bytes = 0
                for hook in tuple(_backward_hooks.values()):
                    hook(node.op, elapsed, freed)
        else:
            for bwd, node, out_slot, sink in self._bwd:
                g = grads.pop(out_slot, None)
                owned.discard(out_slot)
                if g is None:
                    continue
                bwd(node, g, sink)
                node.saved = ()
                node.saved_bytes = 0
        grads.clear()
        owned.clear()

    # ------------------------------------------------------------------
    # Finalisation: specialised runners + buffer pool
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        if self._runners is not None:
            return
        self._runners = [self._make_runner(ins) for ins in self._prog]
        if self._bwd_meta:
            self._finalize_backward()

    def _finalize_backward(self) -> None:
        """Compile the backward walk: flat grad cells + prebuilt sinks.

        The trace fixes which (step, parent) pairs contribute to every
        gradient and in what order, so the dict-based copy-on-write
        accumulator of the interpretive walk reduces to indexed cells with
        an ownership flag that only multi-contributor cells ever touch.
        """
        cell_of: Dict[int, int] = {}
        cells: List[Optional[np.ndarray]] = []
        counts: List[int] = []

        def cell(slot: int) -> int:
            ci = cell_of.get(slot)
            if ci is None:
                ci = cell_of[slot] = len(cells)
                cells.append(None)
                counts.append(0)
            return ci

        out_cell = cell(self._out_slot)
        per_step_entries = []
        for ins, pinfo in self._bwd_meta:
            entries = []
            for info in pinfo:
                if info is None:
                    entries.append(None)
                    continue
                slot, shape, dtype, param = info
                if param is not None:
                    entries.append((shape, dtype, param, -1))
                else:
                    ci = cell(slot)
                    counts[ci] += 1
                    entries.append((shape, dtype, None, ci))
            per_step_entries.append(tuple(entries))
        owned = bytearray(len(cells))

        def make_cell_sink(entries):
            def sink(index: int, g: np.ndarray) -> None:
                e = entries[index]
                if e is None:
                    return
                shape, dtype, param, ci = e
                if (type(g) is not np.ndarray or g.shape != shape
                        or g.dtype != dtype):
                    g = unbroadcast(np.asarray(g, dtype=dtype), shape)
                if param is not None:
                    param._accumulate(g)
                    return
                cur = cells[ci]
                if cur is None:
                    cells[ci] = g
                elif owned[ci]:
                    np.add(cur, g, out=cur)
                else:
                    # First accumulation copies: the stored gradient may be
                    # an array the producing op also handed elsewhere.
                    cells[ci] = cur + g
                    owned[ci] = 1
            return sink

        def make_step(bwd, node, ci, sink):
            def step() -> None:
                g = cells[ci]
                if g is None:
                    return
                cells[ci] = None
                bwd(node, g, sink)
                node.saved = ()
                node.saved_bytes = 0
            return step

        run = []
        for (ins, pinfo), entries in zip(self._bwd_meta, per_step_entries):
            run.append(make_step(ins.bwd, ins.ctx, cell(ins.out_slot),
                                 make_cell_sink(entries)))
        self._cells = cells
        self._owned_flags = owned
        self._multi_cells = [ci for ci, n in enumerate(counts) if n > 1]
        self._out_cell = out_cell
        self._bwd_run = run

    def _make_runner(self, ins: _Instr) -> Callable[[], None]:
        fn, ctx, out_box, kwargs, pb = (
            ins.fn, ins.ctx, ins.out_box, ins.kwargs, ins.pboxes)
        if ins.rng_keys:
            rng_keys = ins.rng_keys

            def run_rng():
                kw = dict(kwargs)
                live = _rng()
                for key in rng_keys:
                    kw[key] = live
                out_box.data = fn(ctx, *pb, **kw)

            return run_rng
        buf = self._plan.buffer_for(ins.index)
        if buf is not None:
            ufunc, arity, save_mode = UFUNC_OPS[ins.op]
            if arity == 2:
                b0, b1 = pb
                if save_mode == "ab":

                    def run():
                        a = b0.data
                        b = b1.data
                        ufunc(a, b, out=buf)
                        out_box.data = buf
                        ctx.save(a, b)
                else:

                    def run():
                        ufunc(b0.data, b1.data, out=buf)
                        out_box.data = buf
            else:
                (b0,) = pb
                if save_mode == "pow":
                    exponent = kwargs["exponent"]

                    def run():
                        a = b0.data
                        ufunc(a, exponent, out=buf)
                        out_box.data = buf
                        ctx.save(a, exponent)
                elif save_mode == "out":

                    def run():
                        ufunc(b0.data, out=buf)
                        out_box.data = buf
                        ctx.save(buf)
                elif save_mode == "src":

                    def run():
                        a = b0.data
                        ufunc(a, out=buf)
                        out_box.data = buf
                        ctx.save(a)
                else:

                    def run():
                        ufunc(b0.data, out=buf)
                        out_box.data = buf
            return run
        n = len(pb)
        if not kwargs:
            if n == 1:
                (b0,) = pb
                return lambda: out_box.__setattr__(
                    "data", fn(ctx, b0))
            if n == 2:
                b0, b1 = pb
                return lambda: out_box.__setattr__(
                    "data", fn(ctx, b0, b1))
            return lambda: out_box.__setattr__("data", fn(ctx, *pb))
        if n == 1:
            (b0,) = pb
            return lambda: out_box.__setattr__(
                "data", fn(ctx, b0, **kwargs))
        if n == 2:
            b0, b1 = pb
            return lambda: out_box.__setattr__(
                "data", fn(ctx, b0, b1, **kwargs))
        return lambda: out_box.__setattr__("data", fn(ctx, *pb, **kwargs))

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "instructions": len(self._prog),
            "fused_ops": self._fused_count,
            "ops_fused_away": self._ops_fused_away,
            "folded_instructions": self.folded_instructions,
            "folded_bytes": self.folded_bytes,
            "pooled_instructions": self._plan.pooled_instructions,
            "pool_buffers": self._plan.pool_buffers,
            "pool_bytes": self._plan.pool_bytes,
            "levels": max((ins.level for ins in self._prog), default=0),
            "parallel_waves": (sum(self._wave_parallel)
                               if self._wave_parallel else 0),
            "stateful": self.stateful,
            "workers": self.workers,
        }


# ---------------------------------------------------------------------------
# Compiled training step
# ---------------------------------------------------------------------------

class CompiledStep:
    """Capture/validate/replay wrapper around a training ``step_fn``.

    ``step_fn(batch) -> (loss, ...)`` is the trainer's step closure.  The
    first step for each trace key runs eagerly *while capturing*; the
    second validates the compiled replay bitwise against a redundant eager
    step (loss, every parameter gradient, and the RNG stream position);
    replays from the third step on run the finalised program.  Any
    unsupported construct or validation mismatch permanently disables the
    instance — every subsequent step runs plain eager code.
    """

    def __init__(self, model, step_fn: Callable, workers: int = 1,
                 max_graphs: int = 8, tag: str = ""):
        if not hasattr(model, "trace_signature"):
            raise CompileUnsupported(
                f"{type(model).__name__} does not expose trace_signature(); "
                "compiled mode needs it to key data-dependent control flow")
        self.model = model
        self.step_fn = step_fn
        self.workers = workers
        self.max_graphs = max_graphs
        # Trace-key namespace (the task name when fitting through the task
        # registry): two tasks may train the same model with different
        # step_fns over identically-shaped batches, and their captures
        # must never collide.
        self.tag = tag
        self._graphs: "OrderedDict[tuple, list]" = OrderedDict()
        # Content-hash -> trace signature.  trace_signature() replays the
        # normalisation + trend decomposition eagerly, which costs real
        # milliseconds; recurring batch contents (fixed loaders, epoch
        # revisits, steady-state benches) hit this cache instead.
        self._sig_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._params: Optional[tuple] = None
        self.disabled = False
        self.disabled_reason: Optional[str] = None
        self.captures = 0
        self.validations = 0
        self.replays = 0

    # -- eager fallback ------------------------------------------------
    def _eager(self, batch) -> float:
        self.model.zero_grad()
        loss = self.step_fn(batch)[0]
        loss.backward()
        return float(loss.data)

    def _disable(self, reason: str) -> None:
        self.disabled = True
        self.disabled_reason = reason
        self._graphs.clear()
        _emit_event("compile.fallback", {
            "reason": reason, "model": type(self.model).__name__,
            "mode": "train"})

    # -- keying --------------------------------------------------------
    def _signature(self, x: np.ndarray) -> tuple:
        digest = (x.shape, x.dtype.str,
                  hashlib.sha1(x.tobytes()).digest())
        sig = self._sig_cache.get(digest)
        if sig is None:
            sig = tuple(self.model.trace_signature(x))
            self._sig_cache[digest] = sig
            while len(self._sig_cache) > 64:
                self._sig_cache.popitem(last=False)
        else:
            self._sig_cache.move_to_end(digest)
        return sig

    def _key(self, arrays) -> tuple:
        return (
            self.tag,
            tuple((a.shape, a.dtype.str) for a in arrays),
            bool(getattr(self.model, "training", True)),
            np.dtype(_state.default_dtype).str,
            self._signature(arrays[0]),
        )

    # -- the step ------------------------------------------------------
    def step(self, batch) -> float:
        if self.disabled:
            return self._eager(batch)
        try:
            # Normalise the batch structure: forecasting yields (x, y)
            # tuples, imputation/anomaly yield one bare window array.  The
            # trace key and graph binding always see a tuple of arrays;
            # the step_fn sees the original structure (``payload``).
            bare = not isinstance(batch, (tuple, list))
            items = (batch,) if bare else batch
            default = np.dtype(_state.default_dtype)
            arrays = tuple(
                a if type(a) is np.ndarray and a.dtype == default
                else (as_array(a)
                      if np.issubdtype(np.asarray(a).dtype, np.floating)
                      else np.asarray(a))
                for a in items)
            payload = arrays[0] if bare else arrays
            key = self._key(arrays)
        except Exception as exc:  # trace keys must never break training
            self._disable(f"trace key failed: {exc!r}")
            return self._eager(batch)
        entry = self._graphs.get(key)
        if entry is None:
            return self._capture(key, arrays, payload)
        self._graphs.move_to_end(key)
        graph, validated = entry
        if not validated:
            return self._validate(key, entry, arrays, payload)
        # AOT-resolved zero_grad: ``Module.zero_grad`` re-walks the module
        # tree every call; the parameter set is fixed for a live trace.
        params = self._params
        if params is None:
            params = self._params = tuple(self.model.parameters())
        for p in params:
            p.grad = None
        loss_arr = graph.run_forward(arrays)
        graph.run_backward()
        self.replays += 1
        return float(loss_arr)

    # -- capture -------------------------------------------------------
    def _capture(self, key, arrays, payload) -> float:
        model = self.model
        state0 = _rng_state()
        model.zero_grad()
        tape = _CaptureTape()
        try:
            with _capturing(tape):
                loss = self.step_fn(payload)[0]
        except CompileUnsupported as exc:
            # The traced step may have consumed RNG draws before failing;
            # rewind and run the whole step eagerly so the trajectory is
            # exactly what an uncompiled run would produce.
            _restore_rng(state0)
            self._disable(str(exc))
            return self._eager(payload)
        try:
            if not isinstance(loss, Tensor) or not loss.requires_grad:
                raise CompileUnsupported("step loss is not a grad tensor")
            if loss.data.size != 1:
                raise CompileUnsupported("step loss is not a scalar")
            graph = CompiledGraph(tape, arrays, loss, mode="train",
                                  workers=self.workers)
            missing = [bi for bi, arr in enumerate(arrays)
                       if isinstance(arr, np.ndarray)
                       and bi not in graph.bound_batch]
            if missing:
                raise CompileUnsupported(
                    f"batch element(s) {missing} did not bind into the "
                    "captured graph; their values would be baked")
        except CompileUnsupported as exc:
            # The eager step already ran while capturing — finish it.
            loss.backward()
            self._disable(str(exc))
            return float(loss.data)
        loss.backward()
        self.captures += 1
        self._graphs[key] = [graph, False]
        while len(self._graphs) > self.max_graphs:
            self._graphs.popitem(last=False)
        _emit_event("compile.capture",
                    dict(graph.stats(), model=type(model).__name__))
        return float(loss.data)

    # -- bitwise validation against a redundant eager step -------------
    def _validate(self, key, entry, arrays, payload) -> float:
        model = self.model
        graph = entry[0]
        params = list(model.parameters())
        state0 = _rng_state()
        model.zero_grad()
        loss = self.step_fn(payload)[0]
        loss.backward()
        eager_loss = float(loss.data)
        eager_loss_bytes = loss.data.tobytes()
        eager_grads = [None if p.grad is None else p.grad.copy()
                       for p in params]
        state1 = _rng_state()
        _restore_rng(state0)
        model.zero_grad()
        ok = True
        try:
            out = graph.run_forward(arrays)
            graph.run_backward()
            ok = (out.tobytes() == eager_loss_bytes
                  and _rng_state() == state1)
            if ok:
                for p, g in zip(params, eager_grads):
                    pg = p.grad
                    if g is None or pg is None:
                        ok = g is None and pg is None
                    else:
                        ok = (pg.dtype == g.dtype and pg.shape == g.shape
                              and pg.tobytes() == g.tobytes())
                    if not ok:
                        break
        except Exception:
            ok = False
        if not ok:
            for p, g in zip(params, eager_grads):
                p.grad = g
            _restore_rng(state1)
            self._disable("compiled replay did not reproduce the eager "
                          "step bitwise")
            return eager_loss
        graph.finalize()
        entry[1] = True
        self.validations += 1
        _emit_event("compile.validated",
                    dict(graph.stats(), model=type(model).__name__))
        return eager_loss

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "graphs": len(self._graphs),
            "captures": self.captures,
            "validations": self.validations,
            "replays": self.replays,
            "disabled": self.disabled,
            "disabled_reason": self.disabled_reason,
        }


# ---------------------------------------------------------------------------
# Compiled inference forward (serving)
# ---------------------------------------------------------------------------

class CompiledForward:
    """Compiled ``no_grad`` forward for serving, keyed per input shape.

    Thread-safe (one replay at a time per instance — boxes and pooled
    buffers are not reentrant).  Serving hot-reload invalidation is
    structural: the registry builds a *new* ``CompiledForward`` per model
    entry, so swapping the entry atomically retires every compiled graph
    of the old weights.
    """

    def __init__(self, model, workers: int = 1, max_graphs: int = 8):
        if not hasattr(model, "trace_signature"):
            raise CompileUnsupported(
                f"{type(model).__name__} does not expose trace_signature()")
        self.model = model
        self.workers = workers
        self.max_graphs = max_graphs
        self._graphs: "OrderedDict[tuple, list]" = OrderedDict()
        # Content-hash -> trace signature (same rationale as CompiledStep:
        # trace_signature() runs the eager normalisation/decomposition
        # prefix, which would otherwise dominate small-batch replays).
        self._sig_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._lock = threading.Lock()
        self.disabled = False
        self.disabled_reason: Optional[str] = None
        self.captures = 0
        self.replays = 0

    def _eager(self, arr: np.ndarray) -> np.ndarray:
        with no_grad():
            return self.model(Tensor(arr)).data

    def _disable(self, reason: str) -> None:
        self.disabled = True
        self.disabled_reason = reason
        self._graphs.clear()
        _emit_event("compile.fallback", {
            "reason": reason, "model": type(self.model).__name__,
            "mode": "infer"})

    def forward(self, arr: np.ndarray) -> np.ndarray:
        # Mirror Tensor()'s coercion up front so the traced input leaf
        # identity-binds to this exact array.
        arr = as_array(np.asarray(arr))
        if self.disabled:
            return self._eager(arr)
        with self._lock:
            return self._forward_locked(arr)

    __call__ = forward

    def _signature(self, arr: np.ndarray) -> tuple:
        digest = (arr.shape, arr.dtype.str,
                  hashlib.sha1(arr.tobytes()).digest())
        sig = self._sig_cache.get(digest)
        if sig is None:
            sig = tuple(self.model.trace_signature(arr))
            self._sig_cache[digest] = sig
            while len(self._sig_cache) > 64:
                self._sig_cache.popitem(last=False)
        else:
            self._sig_cache.move_to_end(digest)
        return sig

    def _forward_locked(self, arr: np.ndarray) -> np.ndarray:
        try:
            key = (arr.shape, arr.dtype.str,
                   np.dtype(_state.default_dtype).str,
                   bool(getattr(self.model, "training", False)),
                   self._signature(arr))
        except Exception as exc:
            self._disable(f"trace key failed: {exc!r}")
            return self._eager(arr)
        entry = self._graphs.get(key)
        if entry is None:
            return self._capture(key, arr)
        self._graphs.move_to_end(key)
        graph, validated = entry
        if not validated:
            ref = self._eager(arr)
            ok = True
            try:
                rep = graph.run_forward((arr,))
                ok = (rep.dtype == ref.dtype and rep.shape == ref.shape
                      and rep.tobytes() == ref.tobytes())
            except Exception:
                ok = False
            if not ok:
                self._disable("compiled forward did not reproduce the "
                              "eager forward bitwise")
                return ref
            graph.finalize()
            entry[1] = True
            return ref
        self.replays += 1
        return graph.run_forward((arr,))

    def _capture(self, key, arr: np.ndarray) -> np.ndarray:
        tape = _CaptureTape()
        try:
            with no_grad(), _capturing(tape):
                out = self.model(Tensor(arr))
            graph = CompiledGraph(tape, (arr,), out, mode="infer",
                                  workers=self.workers)
            if graph.stateful:
                raise CompileUnsupported(
                    "inference graph consumes RNG state")
            if 0 not in graph.bound_batch:
                raise CompileUnsupported(
                    "input window did not bind into the captured graph")
        except CompileUnsupported as exc:
            self._disable(str(exc))
            return self._eager(arr)
        self.captures += 1
        self._graphs[key] = [graph, False]
        while len(self._graphs) > self.max_graphs:
            self._graphs.popitem(last=False)
        _emit_event("compile.capture",
                    dict(graph.stats(), model=type(self.model).__name__))
        return out.data

    def stats(self) -> Dict[str, Any]:
        return {
            "graphs": len(self._graphs),
            "captures": self.captures,
            "replays": self.replays,
            "disabled": self.disabled,
            "disabled_reason": self.disabled_reason,
        }


def make_compiled_forward(model, workers: int = 1) -> Optional[CompiledForward]:
    """Best-effort :class:`CompiledForward` factory (None if unsupported)."""
    try:
        return CompiledForward(model, workers=workers)
    except CompileUnsupported:
        return None
