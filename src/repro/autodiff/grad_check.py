"""Finite-difference gradient checking for the autodiff engine.

Used throughout the test suite to certify that every differentiable op used
by TS3Net and the baselines backpropagates correctly.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .graph import registered_ops
from .tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[index]``."""
    base = inputs[index].data
    grad = np.zeros_like(base)
    flat = base.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(fn(*inputs).sum().data)
        flat[i] = orig - eps
        minus = float(fn(*inputs).sum().data)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-4,
                    rtol: float = 1e-4) -> None:
    """Assert analytic gradients of ``sum(fn(*inputs))`` match finite differences.

    Raises ``AssertionError`` with a per-input report on mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs).sum()
    out.backward()
    for idx, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, idx, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            err = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {idx}: max abs error {err:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )


def check_registered_op(name: str, rng=None, eps: float = 1e-6,
                        atol: float = 1e-4, rtol: float = 1e-4) -> None:
    """Gradient-check one registry entry through its own ``sample``.

    Every ``@register_op`` class ships a ``sample(rng) -> (fn, inputs)``
    deterministic test case; ``tests/test_op_registry.py`` sweeps this over
    the whole registry so an op with a missing or wrong backward fails CI
    by construction.
    """
    spec = registered_ops()[name]
    if spec.sample is None:
        raise AssertionError(
            f"op {name!r} has no grad-check sample; every registered op "
            "must define sample(rng) -> (fn, inputs)")
    fn, inputs = spec.sample(rng if rng is not None else np.random.default_rng(0))
    check_gradients(fn, inputs, eps=eps, atol=atol, rtol=rtol)
