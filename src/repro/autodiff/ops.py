"""Differentiable functional operations built on :class:`repro.autodiff.Tensor`.

These are the ops that do not fit naturally as ``Tensor`` methods: joining
(concat/stack), padding, convolution (im2col), pooling, and the classic
neural-network nonlinearities.  Each one is a named entry in the op registry
(:mod:`repro.autodiff.graph`) — the public functions below are thin wrappers
around :func:`repro.autodiff.tensor.apply` — so they show up in profiles and
are swept by the registry-wide gradient checks.  Helpers like ``conv1d`` and
the losses are compositions of registered ops and carry no backward of their
own.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .graph import register_op
from .tensor import Tensor, apply

__all__ = [
    "concat", "stack", "pad", "relu", "gelu", "sigmoid", "softmax",
    "leaky_relu", "dropout", "instance_std", "where", "conv2d", "conv1d",
    "avg_pool1d",
    "avg_pool2d", "max_pool2d", "mse_loss", "mae_loss", "masked_mse_loss",
    "log_softmax", "cross_entropy_loss",
    "unfold2d", "fold2d", "window_view",
]


def _as_tensor(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


# ``np.einsum(..., optimize=True)`` recomputes the contraction path and
# re-validates it on every call — pure Python overhead that dominates small
# convolutions.  The contraction list depends only on (subscripts, operand
# shapes) and path search is deterministic, so caching it once and replaying
# numpy's own execution loop (the same ``bmm_einsum`` / ``c_einsum`` helpers
# ``np.einsum`` dispatches to) is bitwise identical to ``optimize=True``.
_EINSUM_PLANS: dict = {}

try:  # numpy internals; fall back to the public API if they move
    from numpy._core.einsumfunc import bmm_einsum as _bmm_einsum
    from numpy._core.multiarray import c_einsum as _c_einsum
except ImportError:  # pragma: no cover - depends on numpy version
    _bmm_einsum = None
    _c_einsum = None


def cached_einsum(subscripts: str, *operands: np.ndarray) -> np.ndarray:
    key = (subscripts, tuple(op.shape for op in operands))
    plan = _EINSUM_PLANS.get(key)
    if plan is None:
        if len(_EINSUM_PLANS) >= 256:  # unbounded shapes must not leak
            _EINSUM_PLANS.clear()
        if _bmm_einsum is not None:
            _, contractions = np.einsum_path(
                subscripts, *operands, optimize=True, einsum_call=True)
            plan = tuple(
                (c[0], next(x for x in c if isinstance(x, str)))
                for c in contractions)
        else:
            plan = np.einsum_path(subscripts, *operands, optimize=True)[0]
        _EINSUM_PLANS[key] = plan
    if not isinstance(plan, tuple):  # public-API fallback: a path list
        return np.einsum(subscripts, *operands, optimize=plan)
    ops = list(operands)
    for inds, estr in plan:
        tmp = [ops.pop(x) for x in inds]
        ops.append(_bmm_einsum(estr, *tmp) if len(tmp) == 2
                   else _c_einsum(estr, *tmp))
    return ops[0]


# ---------------------------------------------------------------------------
# Joining and padding
# ---------------------------------------------------------------------------

def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable ``np.concatenate``)."""
    tensors = [_as_tensor(t) for t in tensors]
    return apply("concat", *tensors, axis=axis)


@register_op("concat")
class _Concat:
    @staticmethod
    def forward(ctx, *tensors, axis):
        sizes = [t.data.shape[axis] for t in tensors]
        ctx.save(axis, np.cumsum([0] + sizes))
        return np.concatenate([t.data for t in tensors], axis=axis)

    @staticmethod
    def backward(node, grad, sink):
        axis, offsets = node.saved
        for i, (start, stop) in enumerate(zip(offsets[:-1], offsets[1:])):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            sink(i, grad[tuple(index)])

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a, b: concat([a, b], axis=1)), [a, b]


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [_as_tensor(t) for t in tensors]
    return apply("stack", *tensors, axis=axis)


@register_op("stack")
class _Stack:
    @staticmethod
    def forward(ctx, *tensors, axis):
        ctx.save(axis)
        return np.stack([t.data for t in tensors], axis=axis)

    @staticmethod
    def backward(node, grad, sink):
        (axis,) = node.saved
        pieces = np.moveaxis(grad, axis, 0)
        for i, piece in enumerate(pieces):
            sink(i, piece)

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        return (lambda a, b: stack([a, b], axis=1)), [a, b]


def _constant_pad(arr: np.ndarray, pad_width, value=0,
                  inner: Optional[tuple] = None) -> np.ndarray:
    """Constant-mode ``np.pad`` as allocate + interior copy.

    Bitwise identical to ``np.pad(..., mode="constant")`` (constant fill,
    then the source block verbatim) without np.pad's per-call Python
    argument normalisation.
    """
    if inner is None:
        inner = tuple(slice(p[0], p[0] + s)
                      for p, s in zip(pad_width, arr.shape))
    out_shape = tuple(s + p[0] + p[1] for s, p in zip(arr.shape, pad_width))
    if value == 0:
        out = np.zeros(out_shape, dtype=arr.dtype)
    else:
        out = np.full(out_shape, value, dtype=arr.dtype)
    out[inner] = arr
    return out


def pad(x: Tensor, pad_width: Sequence[Tuple[int, int]],
        mode: str = "constant", value: float = 0.0) -> Tensor:
    """Differentiable ``np.pad`` for constant / edge / reflect modes."""
    if mode not in ("constant", "edge", "reflect"):
        raise ValueError(f"unsupported pad mode: {mode}")
    return apply("pad", _as_tensor(x), pad_width=tuple(pad_width), mode=mode,
                 value=value)


@register_op("pad")
class _Pad:
    @staticmethod
    def forward(ctx, x, *, pad_width, mode, value):
        src_shape = x.data.shape
        inner = tuple(slice(p[0], p[0] + s) for p, s in zip(pad_width, src_shape))
        if mode == "constant" and len(pad_width) == x.data.ndim:
            out = _constant_pad(x.data, pad_width, value, inner)
        elif mode == "constant":
            out = np.pad(x.data, pad_width, mode="constant", constant_values=value)
        else:
            out = np.pad(x.data, pad_width, mode=mode)
        ctx.save(pad_width, mode, inner, src_shape)
        return out

    @staticmethod
    def backward(node, grad, sink):
        pad_width, mode, inner, src_shape = node.saved
        if mode == "constant":
            sink(0, grad[inner])
            return
        # For replicate/reflect padding the padded entries alias interior
        # entries; scatter their gradients back by accumulating into the
        # interior along each axis.
        g = grad.copy()
        if mode == "edge":
            for axis, (lo, hi) in enumerate(pad_width):
                if lo:
                    index = [slice(None)] * g.ndim
                    index[axis] = slice(0, lo)
                    edge = [slice(None)] * g.ndim
                    edge[axis] = slice(lo, lo + 1)
                    g[tuple(edge)] += g[tuple(index)].sum(axis=axis, keepdims=True)
                if hi:
                    index = [slice(None)] * g.ndim
                    index[axis] = slice(g.shape[axis] - hi, g.shape[axis])
                    edge = [slice(None)] * g.ndim
                    edge[axis] = slice(g.shape[axis] - hi - 1, g.shape[axis] - hi)
                    g[tuple(edge)] += g[tuple(index)].sum(axis=axis, keepdims=True)
            sink(0, g[inner])
            return
        # reflect
        for axis, (lo, hi) in enumerate(pad_width):
            if lo:
                for k in range(lo):
                    src_i = [slice(None)] * g.ndim
                    src_i[axis] = slice(k, k + 1)
                    dst_i = [slice(None)] * g.ndim
                    dst_i[axis] = slice(2 * lo - k, 2 * lo - k + 1)
                    g[tuple(dst_i)] += g[tuple(src_i)]
            if hi:
                end = g.shape[axis]
                for k in range(hi):
                    src_i = [slice(None)] * g.ndim
                    src_i[axis] = slice(end - 1 - k, end - k)
                    dst_i = [slice(None)] * g.ndim
                    pos = end - 2 * hi + k - 1 + 0  # mirror position
                    dst_i[axis] = slice(pos, pos + 1)
                    g[tuple(dst_i)] += g[tuple(src_i)]
        sink(0, g[inner])

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        return (lambda a: pad(a, ((2, 1), (0, 2)), mode="reflect")), [a]


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select: ``condition`` is a detached boolean array."""
    cond = np.asarray(condition, dtype=bool)
    return apply("where", _as_tensor(a), _as_tensor(b), cond=cond)


@register_op("where")
class _Where:
    @staticmethod
    def forward(ctx, a, b, *, cond):
        ctx.save(cond)
        return np.where(cond, a.data, b.data)

    @staticmethod
    def backward(node, grad, sink):
        (cond,) = node.saved
        sink(0, np.where(cond, grad, 0.0))
        sink(1, np.where(cond, 0.0, grad))

    @staticmethod
    def sample(rng):
        cond = rng.random((3, 4)) > 0.5
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a, b: where(cond, a, b)), [a, b]


# ---------------------------------------------------------------------------
# Nonlinearities
# ---------------------------------------------------------------------------

def relu(x: Tensor) -> Tensor:
    return apply("relu", _as_tensor(x))


@register_op("relu")
class _Relu:
    @staticmethod
    def forward(ctx, x):
        mask = x.data > 0
        ctx.save(mask)
        return x.data * mask

    @staticmethod
    def backward(node, grad, sink):
        (mask,) = node.saved
        sink(0, grad * mask)

    @staticmethod
    def sample(rng):
        data = rng.standard_normal((3, 4))
        a = Tensor(np.where(data >= 0, data + 0.5, data - 0.5), requires_grad=True)
        return relu, [a]


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    return apply("leaky_relu", _as_tensor(x), negative_slope=negative_slope)


@register_op("leaky_relu")
class _LeakyRelu:
    @staticmethod
    def forward(ctx, x, *, negative_slope):
        mask = x.data > 0
        ctx.save(mask, negative_slope)
        return np.where(mask, x.data, negative_slope * x.data)

    @staticmethod
    def backward(node, grad, sink):
        mask, negative_slope = node.saved
        sink(0, np.where(mask, grad, negative_slope * grad))

    @staticmethod
    def sample(rng):
        data = rng.standard_normal((3, 4))
        a = Tensor(np.where(data >= 0, data + 0.5, data - 0.5), requires_grad=True)
        return (lambda a: leaky_relu(a, 0.1)), [a]


_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def gelu(x: Tensor) -> Tensor:
    """GELU with the tanh approximation (the common production form)."""
    return apply("gelu", _as_tensor(x))


@register_op("gelu")
class _Gelu:
    @staticmethod
    def forward(ctx, x):
        u = _SQRT_2_OVER_PI * (x.data + 0.044715 * x.data ** 3)
        t = np.tanh(u)
        ctx.save(x.data, t)
        return 0.5 * x.data * (1.0 + t)

    @staticmethod
    def backward(node, grad, sink):
        src, t = node.saved
        du = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * src ** 2)
        local = 0.5 * (1.0 + t) + 0.5 * src * (1.0 - t ** 2) * du
        sink(0, grad * local)

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return gelu, [a]


def sigmoid(x: Tensor) -> Tensor:
    return apply("sigmoid", _as_tensor(x))


@register_op("sigmoid")
class _Sigmoid:
    @staticmethod
    def forward(ctx, x):
        out = 1.0 / (1.0 + np.exp(-x.data))
        ctx.save(out)
        return out

    @staticmethod
    def backward(node, grad, sink):
        (out,) = node.saved
        sink(0, grad * out * (1.0 - out))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return sigmoid, [a]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply("softmax", _as_tensor(x), axis=axis)


@register_op("softmax")
class _Softmax:
    @staticmethod
    def forward(ctx, x, *, axis):
        shifted = x.data - x.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=axis, keepdims=True)
        ctx.save(out, axis)
        return out

    @staticmethod
    def backward(node, grad, sink):
        out, axis = node.saved
        dot = (grad * out).sum(axis=axis, keepdims=True)
        sink(0, out * (grad - dot))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a: softmax(a, axis=-1)), [a]


def instance_std(x: Tensor, axis: int = 1, eps: float = 1e-5) -> Tensor:
    """Per-instance standard deviation ``sqrt(var(x, axis) + eps)``.

    The instance-normalisation statistic of the TimesNet protocol as a
    single tape node, so models can compute it *on-tape* (usually under
    ``no_grad()``) instead of baking a batch-dependent constant — which is
    what lets the graph compiler replay normalisation per batch.  The
    forward is byte-for-byte ``np.sqrt(np.var(x, axis, keepdims=True) +
    eps)``.
    """
    return apply("instance_std", _as_tensor(x), axis=axis, eps=eps)


@register_op("instance_std")
class _InstanceStd:
    @staticmethod
    def forward(ctx, x, *, axis, eps):
        out = np.sqrt(np.var(x.data, axis=axis, keepdims=True) + eps)
        ctx.save(x.data, out, axis)
        return out

    @staticmethod
    def backward(node, grad, sink):
        src, out, axis = node.saved
        # d std / d x_i = (x_i - mu) / (N * std); the mean's dependence on
        # x_i cancels inside var's gradient.
        mu = src.mean(axis=axis, keepdims=True)
        count = src.shape[axis]
        sink(0, grad * (src - mu) / (count * out))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 6, 2)), requires_grad=True)
        return (lambda a: instance_std(a, axis=1, eps=1e-5)), [a]


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    return apply("dropout", _as_tensor(x), p=p, rng=rng)


@register_op("dropout")
class _Dropout:
    @staticmethod
    def forward(ctx, x, *, p, rng):
        keep = 1.0 - p
        mask = ((rng.random(x.data.shape) < keep) / keep).astype(x.data.dtype,
                                                                 copy=False)
        ctx.save(mask)
        return x.data * mask

    @staticmethod
    def backward(node, grad, sink):
        (mask,) = node.saved
        sink(0, grad * mask)

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        # Re-seed per call so finite differencing sees the same mask.
        return (lambda a: dropout(a, 0.4, True, rng=np.random.default_rng(7))), [a]


# ---------------------------------------------------------------------------
# Convolution via im2col
# ---------------------------------------------------------------------------

def window_view(x: np.ndarray, kh: int, kw: int, stride: int = 1) -> np.ndarray:
    """Zero-copy sliding-window view: (N, C, H, W) -> (N, C, oh, ow, kh, kw)."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )


def unfold2d(x: np.ndarray, kh: int, kw: int, stride: int = 1) -> np.ndarray:
    """im2col: (N, C, H, W) -> (N, C*kh*kw, out_h*out_w) using stride tricks."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    windows = window_view(x, kh, kw, stride)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols)


def fold2d(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
           kh: int, kw: int, stride: int = 1) -> np.ndarray:
    """col2im: scatter-add the unfolded columns back to (N, C, H, W)."""
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            x[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += cols[:, :, i, j]
    return x


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: Union[int, Tuple[int, int]] = 0) -> Tensor:
    """2-D cross-correlation, NCHW layout, weight of shape (O, C, kh, kw)."""
    x = _as_tensor(x)
    weight = _as_tensor(weight)
    if isinstance(padding, int):
        padding = (padding, padding)
    ph, pw = padding
    if ph or pw:
        x = pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    if x.data.shape[1] != weight.data.shape[1]:
        raise ValueError(f"conv2d channel mismatch: input {x.data.shape[1]}, "
                         f"weight {weight.data.shape[1]}")
    if bias is None:
        return apply("conv2d", x, weight, stride=stride)
    return apply("conv2d", x, weight, bias, stride=stride)


@register_op("conv2d")
class _Conv2d:
    @staticmethod
    def forward(ctx, x, weight, bias=None, *, stride):
        n, c, h, w = x.data.shape
        o, c_in, kh, kw = weight.data.shape
        out_h = (h - kh) // stride + 1
        out_w = (w - kw) // stride + 1
        windows = window_view(x.data, kh, kw, stride)  # (N, C, oh, ow, kh, kw) view
        out = cached_einsum("nchwkl,ockl->nohw", windows, weight.data)
        if bias is not None:
            out = out + bias.data.reshape(1, o, 1, 1)
        ctx.save(windows, weight.data, (n, c, h, w), (o, kh, kw, out_h, out_w),
                 stride, bias is not None)
        return out

    @staticmethod
    def backward(node, grad, sink):
        windows, w_data, x_shape, w_geom, stride, has_bias = node.saved
        n, c, h, w = x_shape
        o, kh, kw, out_h, out_w = w_geom
        needs = node.needs
        if needs is None or needs[1]:
            sink(1, cached_einsum("nohw,nchwkl->ockl", grad, windows))
        if has_bias and (needs is None or needs[2]):
            sink(2, grad.sum(axis=(0, 2, 3)))
        if needs is not None and not needs[0]:
            return
        # Input gradient as a transposed convolution: dilate the output
        # gradient by the stride, pad by kernel-1, and correlate with the
        # spatially flipped kernel — one strided-view einsum, no Python
        # scatter loop and no materialised (N, C, oh, ow, kh, kw) buffer.
        if stride == 1:
            dilated = grad
        else:
            dilated = np.zeros((n, o, (out_h - 1) * stride + 1,
                                (out_w - 1) * stride + 1), dtype=grad.dtype)
            dilated[:, :, ::stride, ::stride] = grad
        padded = _constant_pad(dilated, ((0, 0), (0, 0), (kh - 1, kh - 1),
                                         (kw - 1, kw - 1)))
        flipped = w_data[:, :, ::-1, ::-1]
        grad_x = cached_einsum("nohwkl,ockl->nchw", window_view(padded, kh, kw),
                               flipped)
        if grad_x.shape[2:] != (h, w):
            # Rows/cols past the last window (when (h-kh) % stride != 0)
            # never reached the output, so their gradient is zero.
            full = np.zeros((n, c, h, w), dtype=grad.dtype)
            full[:, :, :grad_x.shape[2], :grad_x.shape[3]] = grad_x
            grad_x = full
        sink(0, grad_x)

    @staticmethod
    def sample(rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.3, requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        return (lambda x, w, b: conv2d(x, w, bias=b, stride=2, padding=1)), [x, w, b]


def conv1d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """1-D cross-correlation, NCL layout, weight of shape (O, C, k)."""
    x4 = x.unsqueeze(2)                                  # (N, C, 1, L)
    w4 = weight.unsqueeze(2)                             # (O, C, 1, k)
    out = conv2d(x4, w4, bias=bias, stride=stride, padding=(0, padding))
    return out.squeeze(2)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def avg_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None,
               padding: int = 0, pad_mode: str = "edge") -> Tensor:
    """Average pooling over the last axis of a (..., L) tensor.

    The paper's trend decomposition uses average pooling with replicate
    padding so the series length is preserved; ``pad_mode='edge'`` gives
    exactly that behaviour.
    """
    x = _as_tensor(x)
    stride = stride or kernel_size
    if padding:
        widths = [(0, 0)] * (x.data.ndim - 1) + [(padding, padding)]
        x = pad(x, widths, mode=pad_mode)
    lead = x.data.shape[:-1]
    length = x.data.shape[-1]
    out_len = (length - kernel_size) // stride + 1
    flat = x.reshape(int(np.prod(lead)) if lead else 1, 1, 1, length)
    # _coerce pins the kernel to x's dtype (Tensor() would re-coerce to the
    # ambient default dtype and silently promote float32 activations).
    w = x._coerce(np.full((1, 1, 1, kernel_size), 1.0 / kernel_size))
    out = conv2d(flat, w, stride=stride)
    return out.reshape(*lead, out_len)


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling on NCHW tensors with a square kernel."""
    x = _as_tensor(x)
    stride = stride or kernel_size
    n, c, h, w = x.data.shape
    weight = np.zeros((c, c, kernel_size, kernel_size), dtype=x.data.dtype)
    for ch in range(c):
        weight[ch, ch] = 1.0 / (kernel_size * kernel_size)
    return conv2d(x, x._coerce(weight), stride=stride)


def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling on NCHW tensors."""
    x = _as_tensor(x)
    stride = stride or kernel_size
    return apply("max_pool2d", x, kernel_size=kernel_size,
                 stride=stride)


@register_op("max_pool2d")
class _MaxPool2d:
    @staticmethod
    def forward(ctx, x, *, kernel_size, stride):
        n, c, h, w = x.data.shape
        kh = kw = kernel_size
        out_h = (h - kh) // stride + 1
        out_w = (w - kw) // stride + 1
        cols = unfold2d(x.data, kh, kw, stride).reshape(n, c, kh * kw, out_h * out_w)
        arg = cols.argmax(axis=2)                                    # (N, C, L)
        out = np.take_along_axis(cols, arg[:, :, None, :], axis=2)[:, :, 0, :]
        ctx.save(arg, (n, c, h, w), (kh, kw, out_h, out_w), stride)
        return out.reshape(n, c, out_h, out_w)

    @staticmethod
    def backward(node, grad, sink):
        arg, x_shape, geom, stride = node.saved
        n, c, h, w = x_shape
        kh, kw, out_h, out_w = geom
        g = grad.reshape(n, c, out_h * out_w)
        grad_cols = np.zeros((n, c, kh * kw, out_h * out_w), dtype=grad.dtype)
        np.put_along_axis(grad_cols, arg[:, :, None, :], g[:, :, None, :], axis=2)
        grad_cols = grad_cols.reshape(n, c * kh * kw, out_h * out_w)
        sink(0, fold2d(grad_cols, x_shape, kh, kw, stride))

    @staticmethod
    def sample(rng):
        x = Tensor(rng.standard_normal((2, 2, 4, 4)), requires_grad=True)
        return (lambda x: max_pool2d(x, 2)), [x]


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    return apply("log_softmax", _as_tensor(x), axis=axis)


@register_op("log_softmax")
class _LogSoftmax:
    @staticmethod
    def forward(ctx, x, *, axis):
        shifted = x.data - x.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_z
        ctx.save(np.exp(out), axis)
        return out

    @staticmethod
    def backward(node, grad, sink):
        soft, axis = node.saved
        sink(0, grad - soft * grad.sum(axis=axis, keepdims=True))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a: log_softmax(a, axis=-1)), [a]


def cross_entropy_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross entropy between (B, K) logits and (B,) integer labels."""
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"expected (B, K) logits, got shape {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(f"labels shape {labels.shape} does not match "
                         f"batch size {logits.shape[0]}")
    log_probs = log_softmax(logits, axis=-1)
    batch = np.arange(len(labels))
    picked = log_probs[batch, labels]
    return -picked.mean()


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error (the paper's training loss)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean absolute error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (pred - target.detach()).abs().mean()


def masked_mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray],
                    mask: np.ndarray) -> Tensor:
    """MSE restricted to positions where ``mask`` is True (imputation loss)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    mask = np.asarray(mask, dtype=bool)
    count = max(int(mask.sum()), 1)
    diff = (pred - target.detach()) * Tensor(mask.astype(pred.dtype))
    return (diff * diff).sum() / count
