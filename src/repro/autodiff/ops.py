"""Differentiable functional operations built on :class:`repro.autodiff.Tensor`.

These are the ops that do not fit naturally as ``Tensor`` methods: joining
(concat/stack), padding, convolution (im2col), pooling, and the classic
neural-network nonlinearities.  Every op returns a new tensor wired into the
autodiff tape; gradients are validated against finite differences in
``tests/test_autodiff.py``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "concat", "stack", "pad", "relu", "gelu", "sigmoid", "softmax",
    "leaky_relu", "dropout", "where", "conv2d", "conv1d", "avg_pool1d",
    "avg_pool2d", "max_pool2d", "mse_loss", "mae_loss", "masked_mse_loss",
    "log_softmax", "cross_entropy_loss",
    "unfold2d", "fold2d", "window_view",
]


def _as_tensor(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


# ---------------------------------------------------------------------------
# Joining and padding
# ---------------------------------------------------------------------------

def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable ``np.concatenate``)."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad, sink):
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            sink(t, grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad, sink):
        pieces = np.moveaxis(grad, axis, 0)
        for t, piece in zip(tensors, pieces):
            sink(t, piece)

    return Tensor._make(out_data, tuple(tensors), backward)


def pad(x: Tensor, pad_width: Sequence[Tuple[int, int]],
        mode: str = "constant", value: float = 0.0) -> Tensor:
    """Differentiable ``np.pad`` for constant / edge / reflect modes."""
    x = _as_tensor(x)
    if mode == "constant":
        out_data = np.pad(x.data, pad_width, mode="constant", constant_values=value)
    else:
        out_data = np.pad(x.data, pad_width, mode=mode)

    src_shape = x.data.shape
    inner = tuple(slice(p[0], p[0] + s) for p, s in zip(pad_width, src_shape))

    def backward(grad, sink):
        if mode == "constant":
            sink(x, grad[inner])
            return
        # For replicate/reflect padding the padded entries alias interior
        # entries; scatter their gradients back by accumulating into the
        # interior along each axis.
        g = grad.copy()
        if mode == "edge":
            for axis, (lo, hi) in enumerate(pad_width):
                if lo:
                    index = [slice(None)] * g.ndim
                    index[axis] = slice(0, lo)
                    edge = [slice(None)] * g.ndim
                    edge[axis] = slice(lo, lo + 1)
                    g[tuple(edge)] += g[tuple(index)].sum(axis=axis, keepdims=True)
                if hi:
                    index = [slice(None)] * g.ndim
                    index[axis] = slice(g.shape[axis] - hi, g.shape[axis])
                    edge = [slice(None)] * g.ndim
                    edge[axis] = slice(g.shape[axis] - hi - 1, g.shape[axis] - hi)
                    g[tuple(edge)] += g[tuple(index)].sum(axis=axis, keepdims=True)
            sink(x, g[inner])
            return
        if mode == "reflect":
            for axis, (lo, hi) in enumerate(pad_width):
                n = src_shape[axis]
                if lo:
                    for k in range(lo):
                        src_i = [slice(None)] * g.ndim
                        src_i[axis] = slice(k, k + 1)
                        dst_i = [slice(None)] * g.ndim
                        dst_i[axis] = slice(2 * lo - k, 2 * lo - k + 1)
                        g[tuple(dst_i)] += g[tuple(src_i)]
                if hi:
                    end = g.shape[axis]
                    for k in range(hi):
                        src_i = [slice(None)] * g.ndim
                        src_i[axis] = slice(end - 1 - k, end - k)
                        dst_i = [slice(None)] * g.ndim
                        pos = end - 2 * hi + k - 1 + 0  # mirror position
                        dst_i[axis] = slice(pos, pos + 1)
                        g[tuple(dst_i)] += g[tuple(src_i)]
            sink(x, g[inner])
            return
        raise ValueError(f"unsupported pad mode: {mode}")

    return Tensor._make(out_data, (x,), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select: ``condition`` is a detached boolean array."""
    a, b = _as_tensor(a), _as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad, sink):
        sink(a, np.where(cond, grad, 0.0))
        sink(b, np.where(cond, 0.0, grad))

    return Tensor._make(out_data, (a, b), backward)


# ---------------------------------------------------------------------------
# Nonlinearities
# ---------------------------------------------------------------------------

def relu(x: Tensor) -> Tensor:
    x = _as_tensor(x)
    mask = x.data > 0
    out_data = x.data * mask

    def backward(grad, sink):
        sink(x, grad * mask)

    return Tensor._make(out_data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    x = _as_tensor(x)
    mask = x.data > 0
    out_data = np.where(mask, x.data, negative_slope * x.data)

    def backward(grad, sink):
        sink(x, np.where(mask, grad, negative_slope * grad))

    return Tensor._make(out_data, (x,), backward)


_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def gelu(x: Tensor) -> Tensor:
    """GELU with the tanh approximation (the common production form)."""
    x = _as_tensor(x)
    u = _SQRT_2_OVER_PI * (x.data + 0.044715 * x.data ** 3)
    t = np.tanh(u)
    out_data = 0.5 * x.data * (1.0 + t)

    def backward(grad, sink):
        du = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x.data ** 2)
        local = 0.5 * (1.0 + t) + 0.5 * x.data * (1.0 - t ** 2) * du
        sink(x, grad * local)

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    x = _as_tensor(x)
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad, sink):
        sink(x, grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad, sink):
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        sink(x, out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    x = _as_tensor(x)
    rng = rng or np.random.default_rng()
    keep = 1.0 - p
    mask = ((rng.random(x.data.shape) < keep) / keep).astype(x.data.dtype,
                                                             copy=False)
    out_data = x.data * mask

    def backward(grad, sink):
        sink(x, grad * mask)

    return Tensor._make(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Convolution via im2col
# ---------------------------------------------------------------------------

def window_view(x: np.ndarray, kh: int, kw: int, stride: int = 1) -> np.ndarray:
    """Zero-copy sliding-window view: (N, C, H, W) -> (N, C, oh, ow, kh, kw)."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )


def unfold2d(x: np.ndarray, kh: int, kw: int, stride: int = 1) -> np.ndarray:
    """im2col: (N, C, H, W) -> (N, C*kh*kw, out_h*out_w) using stride tricks."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    windows = window_view(x, kh, kw, stride)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols)


def fold2d(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
           kh: int, kw: int, stride: int = 1) -> np.ndarray:
    """col2im: scatter-add the unfolded columns back to (N, C, H, W)."""
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            x[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += cols[:, :, i, j]
    return x


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: Union[int, Tuple[int, int]] = 0) -> Tensor:
    """2-D cross-correlation, NCHW layout, weight of shape (O, C, kh, kw)."""
    x = _as_tensor(x)
    weight = _as_tensor(weight)
    if isinstance(padding, int):
        padding = (padding, padding)
    ph, pw = padding
    if ph or pw:
        x = pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    n, c, h, w = x.data.shape
    o, c_in, kh, kw = weight.data.shape
    if c_in != c:
        raise ValueError(f"conv2d channel mismatch: input {c}, weight {c_in}")
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1

    windows = window_view(x.data, kh, kw, stride)      # (N, C, oh, ow, kh, kw) view
    out_data = np.einsum("nchwkl,ockl->nohw", windows, weight.data, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, o, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad, sink):
        grad_w = np.einsum("nohw,nchwkl->ockl", grad, windows, optimize=True)
        sink(weight, grad_w)
        if bias is not None:
            sink(bias, grad.sum(axis=(0, 2, 3)))
        # Input gradient as a transposed convolution: dilate the output
        # gradient by the stride, pad by kernel-1, and correlate with the
        # spatially flipped kernel — one strided-view einsum, no Python
        # scatter loop and no materialised (N, C, oh, ow, kh, kw) buffer.
        if stride == 1:
            dilated = grad
        else:
            dilated = np.zeros((n, o, (out_h - 1) * stride + 1,
                                (out_w - 1) * stride + 1), dtype=grad.dtype)
            dilated[:, :, ::stride, ::stride] = grad
        padded = np.pad(dilated, ((0, 0), (0, 0), (kh - 1, kh - 1),
                                  (kw - 1, kw - 1)))
        flipped = weight.data[:, :, ::-1, ::-1]
        grad_x = np.einsum("nohwkl,ockl->nchw", window_view(padded, kh, kw),
                           flipped, optimize=True)
        if grad_x.shape[2:] != (h, w):
            # Rows/cols past the last window (when (h-kh) % stride != 0)
            # never reached the output, so their gradient is zero.
            full = np.zeros((n, c, h, w), dtype=grad.dtype)
            full[:, :, :grad_x.shape[2], :grad_x.shape[3]] = grad_x
            grad_x = full
        sink(x, grad_x)

    return Tensor._make(out_data, parents, backward)


def conv1d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """1-D cross-correlation, NCL layout, weight of shape (O, C, k)."""
    x4 = x.unsqueeze(2)                                  # (N, C, 1, L)
    w4 = weight.unsqueeze(2)                             # (O, C, 1, k)
    out = conv2d(x4, w4, bias=bias, stride=stride, padding=(0, padding))
    return out.squeeze(2)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def avg_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None,
               padding: int = 0, pad_mode: str = "edge") -> Tensor:
    """Average pooling over the last axis of a (..., L) tensor.

    The paper's trend decomposition uses average pooling with replicate
    padding so the series length is preserved; ``pad_mode='edge'`` gives
    exactly that behaviour.
    """
    x = _as_tensor(x)
    stride = stride or kernel_size
    if padding:
        widths = [(0, 0)] * (x.data.ndim - 1) + [(padding, padding)]
        x = pad(x, widths, mode=pad_mode)
    lead = x.data.shape[:-1]
    length = x.data.shape[-1]
    out_len = (length - kernel_size) // stride + 1
    flat = x.reshape(int(np.prod(lead)) if lead else 1, 1, 1, length)
    # _coerce pins the kernel to x's dtype (Tensor() would re-coerce to the
    # ambient default dtype and silently promote float32 activations).
    w = x._coerce(np.full((1, 1, 1, kernel_size), 1.0 / kernel_size))
    out = conv2d(flat, w, stride=stride)
    return out.reshape(*lead, out_len)


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling on NCHW tensors with a square kernel."""
    x = _as_tensor(x)
    stride = stride or kernel_size
    n, c, h, w = x.data.shape
    weight = np.zeros((c, c, kernel_size, kernel_size), dtype=x.data.dtype)
    for ch in range(c):
        weight[ch, ch] = 1.0 / (kernel_size * kernel_size)
    return conv2d(x, x._coerce(weight), stride=stride)


def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling on NCHW tensors."""
    x = _as_tensor(x)
    stride = stride or kernel_size
    n, c, h, w = x.data.shape
    kh = kw = kernel_size
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    cols = unfold2d(x.data, kh, kw, stride).reshape(n, c, kh * kw, out_h * out_w)
    arg = cols.argmax(axis=2)                                    # (N, C, L)
    out_data = np.take_along_axis(cols, arg[:, :, None, :], axis=2)[:, :, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad, sink):
        g = grad.reshape(n, c, out_h * out_w)
        grad_cols = np.zeros((n, c, kh * kw, out_h * out_w), dtype=grad.dtype)
        np.put_along_axis(grad_cols, arg[:, :, None, :], g[:, :, None, :], axis=2)
        grad_cols = grad_cols.reshape(n, c * kh * kw, out_h * out_w)
        sink(x, fold2d(grad_cols, (n, c, h, w), kh, kw, stride))

    return Tensor._make(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad, sink):
        sink(x, grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def cross_entropy_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross entropy between (B, K) logits and (B,) integer labels."""
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"expected (B, K) logits, got shape {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(f"labels shape {labels.shape} does not match "
                         f"batch size {logits.shape[0]}")
    log_probs = log_softmax(logits, axis=-1)
    batch = np.arange(len(labels))
    picked = log_probs[batch, labels]
    return -picked.mean()


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error (the paper's training loss)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean absolute error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (pred - target.detach()).abs().mean()


def masked_mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray],
                    mask: np.ndarray) -> Tensor:
    """MSE restricted to positions where ``mask`` is True (imputation loss)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    mask = np.asarray(mask, dtype=bool)
    count = max(int(mask.sum()), 1)
    diff = (pred - target.detach()) * Tensor(mask.astype(pred.dtype))
    return (diff * diff).sum() / count
