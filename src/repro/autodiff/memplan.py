"""Ahead-of-time memory planning for compiled graph replay.

PR 3's eager engine *frees* saved activations after backward; this module
extends that into a plan computed once per trace: elementwise instructions
whose NumPy forward is a single ufunc are rewritten to write ``out=`` into
a preallocated buffer, so steady-state replays allocate ~zero new
activation arrays for those slots.

Two pooling regimes, chosen by the graph's mode:

* **training graphs** — every poolable instruction gets its *own*
  persistent buffer, reused across steps.  Buffers are never shared
  between slots within a step because backward reads saved forward values
  (``mul`` saves both operands, ``exp`` saves its output, ...) that must
  survive until that node's backward runs.
* **inference graphs** (``no_grad`` — nothing is saved) — buffers are
  additionally *shared between slots* via a liveness linear scan: a
  buffer is recycled once every consumer of its slot's alias group has
  executed.  Liveness is tracked at **level** granularity (the parallel
  scheduler's wavefronts), so a buffer is only freed when the whole level
  containing its last consumer has completed — correct under both serial
  and parallel dispatch.

View-producing ops (reshape/transpose/slice) alias their parent's base
buffer; alias groups are tracked jointly so a buffer is never recycled
while a view of it is still consumed.  Graph-output slots — and any slot
in an output's alias group — are never pooled: their arrays are handed to
callers (e.g. a serving row) and must not be overwritten by the next
replay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

# Op name -> (ufunc, arity, save_mode). ``save_mode`` emulates what the
# registered forward stashes for backward:
#   "none" — nothing saved (add/sub/neg save no arrays)
#   "ab"   — both operand arrays (mul/div)
#   "out"  — the output array (exp/sqrt/tanh)
#   "src"  — the input array (log/abs/sin/cos)
#   "pow"  — the input array plus the scalar exponent kwarg
UFUNC_OPS: Dict[str, Tuple[np.ufunc, int, str]] = {
    "add": (np.add, 2, "none"),
    "sub": (np.subtract, 2, "none"),
    "mul": (np.multiply, 2, "ab"),
    "div": (np.true_divide, 2, "ab"),
    "neg": (np.negative, 1, "none"),
    "exp": (np.exp, 1, "out"),
    "sqrt": (np.sqrt, 1, "out"),
    "tanh": (np.tanh, 1, "out"),
    "log": (np.log, 1, "src"),
    "abs": (np.abs, 1, "src"),
    "sin": (np.sin, 1, "src"),
    "cos": (np.cos, 1, "src"),
    "pow": (np.power, 1, "pow"),
}


def base_root(arr: np.ndarray) -> np.ndarray:
    """Follow ``.base`` chains to the owning array of a (possibly) view."""
    while isinstance(arr.base, np.ndarray):
        arr = arr.base
    return arr


class BufferPlan:
    """Slot -> persistent-buffer assignment from traced liveness intervals.

    ``assignments`` maps instruction index -> buffer id; ``realize()``
    materialises the pool lazily (first pooled replay) as exact
    ``(shape, dtype)`` ``np.empty`` arrays.
    """

    def __init__(self) -> None:
        self.assignments: Dict[int, int] = {}
        self._buffer_spec: Dict[int, Tuple[tuple, np.dtype]] = {}
        self._buffers: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def plan(self, instrs: List, outputs: frozenset, share: bool) -> None:
        """Compute assignments for ``instrs`` (see module docstring).

        Each instruction must expose ``index``, ``level``, ``op``,
        ``parent_slots``, ``out_slot``, ``stateful``, and the capture-time
        output array ``out_arr``.  ``share`` enables the cross-slot
        liveness scan (inference graphs only).
        """
        producer = {ins.out_slot: ins for ins in instrs}

        # Alias groups: union slots connected by view edges (an op whose
        # output is a view of a parent slot's base buffer).
        group_of: Dict[int, int] = {}

        def find(slot: int) -> int:
            root = slot
            while group_of.get(root, root) != root:
                root = group_of[root]
            group_of[slot] = root
            return root

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                group_of[ra] = rb

        slot_arr: Dict[int, np.ndarray] = {}
        for ins in instrs:
            slot_arr[ins.out_slot] = ins.out_arr
        alien_view = set()
        for ins in instrs:
            out = ins.out_arr
            if out.base is None:
                continue
            root = base_root(out)
            linked = False
            for pslot in ins.parent_slots:
                parr = slot_arr.get(pslot)
                if parr is not None and base_root(parr) is root:
                    union(ins.out_slot, pslot)
                    linked = True
                    break
            if not linked:
                # View of an array the trace does not own (e.g. a strided
                # window over an op-internal temporary): never pool it.
                alien_view.add(ins.out_slot)

        # Slots whose arrays escape the replay: graph outputs and anything
        # aliasing them.
        out_groups = {find(s) for s in outputs}
        escaping = {s for s in slot_arr if find(s) in out_groups}

        def poolable(ins) -> bool:
            # The C-contiguity check keeps pooled replay layout-identical to
            # eager execution: pool buffers are C-ordered ``np.empty``, so an
            # instruction whose eager output was differently strided must
            # keep allocating eagerly (downstream BLAS calls can pick
            # layout-dependent code paths with different FP summation order).
            return (ins.op in UFUNC_OPS
                    and not ins.stateful
                    and ins.out_arr.base is None
                    and ins.out_arr.flags.c_contiguous
                    and ins.out_slot not in escaping
                    and ins.out_slot not in alien_view)

        if not share:
            next_id = 0
            for ins in instrs:
                if poolable(ins):
                    self.assignments[ins.index] = next_id
                    self._buffer_spec[next_id] = (
                        ins.out_arr.shape, ins.out_arr.dtype)
                    next_id += 1
            return

        # Liveness at level granularity: a slot group dies after the level
        # of its last consumer completes (groups containing escaping slots
        # never die).
        last_level: Dict[int, int] = {}
        for ins in instrs:
            for pslot in ins.parent_slots:
                if pslot in slot_arr:
                    g = find(pslot)
                    last_level[g] = max(last_level.get(g, -1), ins.level)
            # An unconsumed produced slot still lives through its own level.
            g = find(ins.out_slot)
            last_level.setdefault(g, ins.level)
        for g in {find(s) for s in escaping}:
            last_level[g] = 1 << 60

        next_id = 0
        free: Dict[Tuple[tuple, np.dtype], List[int]] = {}
        expiry: Dict[int, List[Tuple[int, Tuple[tuple, np.dtype]]]] = {}
        current_level = None
        for ins in sorted(instrs, key=lambda i: (i.level, i.index)):
            if ins.level != current_level:
                # Entering a new level: recycle buffers whose alias group's
                # last consumer sits strictly below it.
                for lvl in list(expiry):
                    if lvl < ins.level:
                        for buf_id, spec in expiry.pop(lvl):
                            free.setdefault(spec, []).append(buf_id)
                current_level = ins.level
            if not poolable(ins):
                continue
            spec = (ins.out_arr.shape, ins.out_arr.dtype)
            avail = free.get(spec)
            if avail:
                buf_id = avail.pop()
            else:
                buf_id = next_id
                next_id += 1
                self._buffer_spec[buf_id] = spec
            self.assignments[ins.index] = buf_id
            death = last_level[find(ins.out_slot)]
            if death < (1 << 60):
                expiry.setdefault(death, []).append((buf_id, spec))

    # ------------------------------------------------------------------
    def buffer_for(self, index: int) -> Optional[np.ndarray]:
        """The persistent output buffer for instruction ``index`` (lazy)."""
        buf_id = self.assignments.get(index)
        if buf_id is None:
            return None
        buf = self._buffers.get(buf_id)
        if buf is None:
            shape, dtype = self._buffer_spec[buf_id]
            buf = self._buffers[buf_id] = np.empty(shape, dtype=dtype)
        return buf

    @property
    def pooled_instructions(self) -> int:
        return len(self.assignments)

    @property
    def pool_buffers(self) -> int:
        return len(self._buffer_spec)

    @property
    def pool_bytes(self) -> int:
        return sum(int(np.prod(shape)) * np.dtype(dtype).itemsize
                   for shape, dtype in self._buffer_spec.values())
